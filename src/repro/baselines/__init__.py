"""Baseline systems ChatIYP is compared against."""

from .pythia import PythiaBaseline
from .vector_only import VectorOnlyBaseline

__all__ = ["PythiaBaseline", "VectorOnlyBaseline"]
