"""Vector-only baseline: pure semantic retrieval, no symbolic translation.

The opposite corner from Pythia: every question is answered from the
nearest graph-node descriptions.  Robust — it always says *something*
related — but without executing queries it cannot produce the precise
values (counts, percentages, ranks) most IYP questions ask for.

Since the staged-pipeline refactor this baseline is no longer a bespoke
code path: it is the standard :class:`~repro.rag.RetrieverQueryEngine`
running under the :class:`~repro.rag.routing.VectorOnlyPolicy` route —
the same kernel, observers and synthesis the full system uses, minus the
symbolic stage.
"""

from __future__ import annotations

from typing import Optional

from ..core.chatiyp import ChatResponse
from ..core.config import ChatIYPConfig
from ..core.prompts import answer_prompt
from ..cypher.executor import CypherEngine
from ..embed.model import HashingEmbedding
from ..iyp.generator import IYPDataset
from ..iyp.loader import load_dataset
from ..llm.simulated import SimulatedLLM
from ..nlp.entities import Gazetteer
from ..rag.pipeline import RetrieverQueryEngine
from ..rag.routing import VectorOnlyPolicy
from ..rag.synthesizer import ResponseSynthesizer
from ..rag.vector_retriever import VectorContextRetriever

__all__ = ["VectorOnlyBaseline"]


class VectorOnlyBaseline:
    """Answers every question from vector-retrieved node descriptions."""

    def __init__(
        self,
        dataset: Optional[IYPDataset] = None,
        config: Optional[ChatIYPConfig] = None,
    ) -> None:
        self.config = config or ChatIYPConfig()
        self.dataset = dataset or load_dataset(
            self.config.dataset_size, self.config.dataset_seed
        )
        self.store = self.dataset.store
        self.engine = CypherEngine(self.store)  # for harness compatibility
        self.llm = SimulatedLLM(
            gazetteer=Gazetteer.from_dataset(self.dataset),
            seed=self.config.seed,
            embedding=HashingEmbedding(dim=self.config.embedding_dim),
        )
        self.retriever = VectorContextRetriever(
            self.store, top_k=self.config.vector_top_k
        )
        self.synthesizer = ResponseSynthesizer(self.llm, prompt_builder=answer_prompt)
        self.pipeline = RetrieverQueryEngine(
            text2cypher=None,
            vector=self.retriever,
            synthesizer=self.synthesizer,
            routing_policy=VectorOnlyPolicy(),
        )

    @property
    def name(self) -> str:
        return "vector-only-baseline"

    def ask(self, question: str) -> ChatResponse:
        """Retrieve similar node descriptions and synthesise from them."""
        question = (question or "").strip()
        if not question:
            return ChatResponse(
                question=question,
                answer="Please ask a question about Internet infrastructure.",
                cypher=None,
                retrieval_source="none",
                used_fallback=False,
            )
        response = self.pipeline.query(question)
        return ChatResponse(
            question=question,
            answer=response.answer,
            cypher=None,
            retrieval_source=response.retrieval_source,
            used_fallback=True,
            context_snippets=[item.node.text for item in response.context],
            result=None,
            diagnostics={"baseline": self.name, **response.diagnostics},
        )
