"""Pythia-style baseline: text-to-Cypher without the RAG safety net.

Pythia (Giakatos, Tashiro & Fontugne, LCN 2025 — the system CypherEval was
built for) translates questions straight to Cypher and executes them; there
is no semantic fallback and no re-ranking.  ChatIYP's §2 pitch is exactly
the robustness this baseline lacks, so the comparison quantifies the RAG
architecture's contribution.

Implemented as a configuration of the shared components (same backbone,
same graph, symbolic path only) so every difference in results is
attributable to the architecture, not to implementation drift.
"""

from __future__ import annotations

from typing import Optional

from ..core.chatiyp import ChatIYP
from ..core.config import ChatIYPConfig
from ..iyp.generator import IYPDataset

__all__ = ["PythiaBaseline"]


class PythiaBaseline(ChatIYP):
    """Symbolic-only question answering (no vector fallback, no reranker)."""

    def __init__(
        self,
        dataset: Optional[IYPDataset] = None,
        config: Optional[ChatIYPConfig] = None,
    ) -> None:
        config = config or ChatIYPConfig()
        pythia_config = ChatIYPConfig(
            **{
                **config.__dict__,
                "use_vector_fallback": False,
                "use_reranker": False,
                "use_decomposition": False,
            }
        )
        super().__init__(dataset=dataset, config=pythia_config)

    @property
    def name(self) -> str:
        return "pythia-baseline"
