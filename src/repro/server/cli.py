"""Interactive command-line chat with ChatIYP."""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, TextIO

from ..core.chatiyp import ChatIYP
from ..core.config import ChatIYPConfig
from ..core.transparency import render_response

__all__ = ["main", "chat_loop"]

_BANNER = """ChatIYP — natural-language access to the Internet Yellow Pages
Type a question (e.g. "What is the percentage of Japan's population in AS2497?").
Commands: :schema  :quit
"""


def chat_loop(
    chatiyp: ChatIYP,
    lines: Iterable[str],
    out: TextIO = sys.stdout,
    show_context: bool = False,
) -> int:
    """Drive the REPL over ``lines``; returns the number of answered questions."""
    answered = 0
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line in (":quit", ":q", "exit"):
            break
        if line == ":schema":
            print(chatiyp.schema, file=out)
            continue
        response = chatiyp.ask(line)
        print(render_response(response, show_context=show_context), file=out)
        print(file=out)
        answered += 1
    return answered


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="chatiyp", description="Chat with the IYP graph")
    parser.add_argument("--size", default="small", choices=("small", "medium", "large"))
    parser.add_argument("--seed", type=int, default=0, help="backbone LLM seed")
    parser.add_argument("--context", action="store_true", help="show retrieved context")
    parser.add_argument("--serve", action="store_true", help="run the HTTP server instead")
    parser.add_argument("--port", type=int, default=8080)
    hardening = parser.add_argument_group("serving hardening (with --serve)")
    hardening.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request time budget; blown budgets degrade gracefully",
    )
    hardening.add_argument(
        "--max-concurrency", type=int, default=8,
        help="concurrent /ask requests before queueing (0 disables admission control)",
    )
    hardening.add_argument(
        "--max-queue-depth", type=int, default=16,
        help="queued /ask requests before load shedding (503 + Retry-After)",
    )
    hardening.add_argument(
        "--queue-timeout-s", type=float, default=1.0,
        help="max seconds a request may wait for a slot before being shed",
    )
    hardening.add_argument(
        "--cache-size", type=int, default=256,
        help="answer-cache capacity (0 disables caching)",
    )
    hardening.add_argument(
        "--max-batch", type=int, default=16,
        help="maximum questions per /ask_batch request",
    )
    hardening.add_argument(
        "--no-coalesce", action="store_true",
        help="disable single-flight coalescing of concurrent duplicate questions",
    )
    hardening.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive symbolic execution failures before the circuit "
             "breaker opens (0 disables the breaker)",
    )
    hardening.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="activate a fault-injection plan (JSON, see benchmarks/plans/) "
             "for the lifetime of the process — staging/chaos use only; "
             "injector state is surfaced under /metrics",
    )
    args = parser.parse_args(argv)

    if args.fault_plan:
        from ..faults import FaultPlan, activate

        activate(FaultPlan.from_file(args.fault_plan))

    config = ChatIYPConfig(
        seed=args.seed,
        dataset_size=args.size,
        deadline_ms=args.deadline_ms,
        answer_cache_size=args.cache_size,
        breaker_failure_threshold=args.breaker_threshold if args.serve else 0,
        coalesce_inflight=not args.no_coalesce,
    )
    chatiyp = ChatIYP(config=config)
    if args.serve:
        from .app import serve

        serve(
            chatiyp,
            port=args.port,
            max_concurrency=args.max_concurrency,
            max_queue_depth=args.max_queue_depth,
            queue_timeout_s=args.queue_timeout_s,
            deadline_ms=args.deadline_ms,
            max_batch_size=args.max_batch,
        )
        return 0
    print(_BANNER)
    chat_loop(chatiyp, sys.stdin, show_context=args.context)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
