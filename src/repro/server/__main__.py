"""``python -m repro.server`` entry point."""

from .cli import main

raise SystemExit(main())
