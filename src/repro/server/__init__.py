"""HTTP API and CLI front-ends for ChatIYP."""

from .app import ChatIYPRequestHandler, make_server, serve, start_background
from .cli import chat_loop, main

__all__ = [
    "make_server",
    "serve",
    "start_background",
    "ChatIYPRequestHandler",
    "chat_loop",
    "main",
]
