"""JSON-over-HTTP API for ChatIYP (the paper's web application).

Stdlib-only HTTP server exposing:

* ``POST /ask`` — body ``{"question": "...", "deadline_ms": 500}`` →
  answer + Cypher + provenance (``deadline_ms`` optional, capped by the
  server default)
* ``POST /ask_batch`` — body ``{"questions": [...], "deadline_ms": 500}``
  → one result per question, in order.  Each list element is either a
  bare question string or ``{"question": "...", "deadline_ms": 250}``;
  per-item budgets override the batch-level default.  At most
  ``max_batch_size`` questions per request.  Results report partial
  failures individually (``{"ok": false, "error": ...}``) instead of
  failing the whole batch.
* ``POST /cypher`` — body ``{"query": "...", "params": {...}}`` → rows
  (read-only queries only; writes are rejected with 403)
* ``GET  /health`` — liveness and graph stats
* ``GET  /metrics`` — per-stage latency aggregates, routing/cache/shed
  counters from the pipeline's
  :class:`~repro.rag.observer.MetricsRegistry`, plus a ``serving`` section
  with live cache, circuit-breaker and admission-controller state
* ``GET  /schema`` — the graph schema text ChatIYP prompts with
* ``GET  /cookbook`` — the named IYP query cookbook

``POST /ask`` responses carry a ``diagnostics`` object with the routing
decision, the error-taxonomy class (when retrieval failed), per-stage
wall-clock timings recorded by the stage kernel, the graceful-degradation
markers (``degraded``) and whether the answer came from the cache.

Serving hardening: every ``/ask`` passes an
:class:`~repro.serving.AdmissionController` — at most ``max_concurrency``
requests run at once, a bounded queue absorbs bursts, and everything
beyond that is shed immediately with ``503`` + ``Retry-After``.  Bodies
over 64 KiB are refused with ``413``.

``/ask_batch`` shares the same admission slots rather than bypassing
them: a batch blocks for **one** slot like any ``/ask`` (shedding with
``503`` when none arrives), then *opportunistically* takes extra free
slots — never queued ones — to widen its fan-out.  Total concurrent
question executions across ``/ask`` and ``/ask_batch`` therefore never
exceed ``max_concurrency``, and a batch under load degrades to narrower
(eventually serial) execution instead of stealing capacity.

Start programmatically via :func:`make_server` (tests bind port 0), or from
a shell::

    python -m repro.server --port 8080 --size small
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..core.chatiyp import ChatIYP
from ..cypher import CypherError, CypherSyntaxError, is_read_only, render_value
from ..iyp.queries import COOKBOOK
from ..serving import AdmissionController

__all__ = ["make_server", "ChatIYPRequestHandler", "serve"]

_MAX_BODY = 64 * 1024


class _ChatIYPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for bursty clients.

    The stdlib default listen backlog (5) drops connections under
    concurrent load before admission control can shed them politely;
    a deeper backlog lets the controller answer 503 + Retry-After
    instead of resetting the TCP connection.
    """

    request_queue_size = 128
    daemon_threads = True


class ChatIYPRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the ChatIYP instance attached to the server."""

    server_version = "ChatIYP/1.0"

    @property
    def chatiyp(self) -> ChatIYP:
        return self.server.chatiyp  # type: ignore[attr-defined]

    # -- helpers ----------------------------------------------------------

    def _send_json(
        self, payload: dict, status: int = 200, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _metrics_increment(self, counter: str) -> None:
        metrics = getattr(self.chatiyp, "metrics", None)
        if metrics is not None:
            metrics.increment(counter)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/health":
            store = self.chatiyp.store
            self._send_json(
                {
                    "status": "ok",
                    "model": self.chatiyp.llm.model_name,
                    "nodes": store.node_count,
                    "relationships": store.relationship_count,
                }
            )
            return
        if self.path == "/metrics":
            metrics = getattr(self.chatiyp, "metrics", None)
            payload = (
                metrics.snapshot()
                if metrics is not None
                else {"stages": {}, "counters": {}}
            )
            serving = {}
            snapshot = getattr(self.chatiyp, "serving_snapshot", None)
            if callable(snapshot):
                serving.update(snapshot())
            admission = getattr(self.server, "admission", None)
            serving["admission"] = (
                admission.snapshot() if admission is not None else None
            )
            payload["serving"] = serving
            self._send_json(payload)
            return
        if self.path == "/schema":
            self._send_json({"schema": self.chatiyp.schema})
            return
        if self.path == "/cookbook":
            self._send_json(
                {
                    "queries": [
                        {
                            "name": query.name,
                            "description": query.description,
                            "parameters": list(query.parameters),
                            "cypher": query.cypher,
                        }
                        for query in COOKBOOK.values()
                    ]
                }
            )
            return
        self._send_json({"error": "not found"}, status=404)

    def _read_json_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length", 0))
        if length > _MAX_BODY:
            self._send_json(
                {"error": f"request body exceeds {_MAX_BODY} bytes"}, status=413
            )
            return None
        if length <= 0:
            self._send_json({"error": "bad request body"}, status=400)
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError:
            self._send_json({"error": "body must be valid JSON"}, status=400)
            return None
        if not isinstance(payload, dict):
            self._send_json({"error": "body must be a JSON object"}, status=400)
            return None
        return payload

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/ask":
            self._handle_ask()
            return
        if self.path == "/ask_batch":
            self._handle_ask_batch()
            return
        if self.path == "/cypher":
            self._handle_cypher()
            return
        self._send_json({"error": "not found"}, status=404)

    def _shed(self, retry_after_s: float) -> None:
        """Refuse the request with 503 + Retry-After (load shedding)."""
        self._metrics_increment("server.shed")
        self._send_json(
            {"error": "server overloaded; retry later"},
            status=503,
            headers={"Retry-After": max(1, round(retry_after_s))},
        )

    def _handle_ask(self) -> None:
        admission: Optional[AdmissionController] = getattr(
            self.server, "admission", None
        )
        if admission is not None and not admission.acquire():
            self._shed(admission.retry_after_s)
            return
        try:
            payload = self._read_json_body()
            if payload is None:
                return
            question = payload.get("question")
            if not isinstance(question, str) or not question.strip():
                self._send_json(
                    {"error": "'question' must be a non-empty string"}, status=400
                )
                return
            deadline_ms = payload.get("deadline_ms", getattr(self.server, "deadline_ms", None))
            if self._bad_budget(deadline_ms):
                self._send_json(
                    {"error": "'deadline_ms' must be a positive number"}, status=400
                )
                return
            body = self.chatiyp.ask(question, deadline_ms=deadline_ms).to_dict()
        finally:
            # Slot goes back before the success response is written: a
            # client acting on the reply immediately (the tests poll the
            # admission snapshot) must never observe it still held.
            if admission is not None:
                admission.release()
        self._send_json(body)

    @staticmethod
    def _bad_budget(value) -> bool:
        """True when ``value`` is not a usable ``deadline_ms`` (None is ok)."""
        return value is not None and (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or value <= 0
        )

    def _parse_batch_item(self, item, default_budget):
        """Normalize one batch element to ``(question, budget, error)``."""
        if isinstance(item, str):
            question, budget = item, default_budget
        elif isinstance(item, dict):
            question = item.get("question")
            budget = item.get("deadline_ms", default_budget)
        else:
            return None, None, "item must be a string or an object"
        if not isinstance(question, str) or not question.strip():
            return None, None, "'question' must be a non-empty string"
        if self._bad_budget(budget):
            return None, None, "'deadline_ms' must be a positive number"
        return question, budget, None

    def _handle_ask_batch(self) -> None:
        admission: Optional[AdmissionController] = getattr(
            self.server, "admission", None
        )
        # A batch is admitted like a single /ask: block for one slot (shed
        # with 503 when none arrives).  Extra parallelism is taken from
        # *free* slots only, after validation, so batches widen when the
        # server is idle and degrade to serial under load.
        if admission is not None and not admission.acquire():
            self._shed(admission.retry_after_s)
            return
        extra_slots = 0
        try:
            payload = self._read_json_body()
            if payload is None:
                return
            items = payload.get("questions")
            if not isinstance(items, list) or not items:
                self._send_json(
                    {"error": "'questions' must be a non-empty list"}, status=400
                )
                return
            max_batch = getattr(self.server, "max_batch_size", 16)
            if len(items) > max_batch:
                self._send_json(
                    {"error": f"batch exceeds {max_batch} questions"}, status=400
                )
                return
            default_budget = payload.get(
                "deadline_ms", getattr(self.server, "deadline_ms", None)
            )
            if self._bad_budget(default_budget):
                self._send_json(
                    {"error": "'deadline_ms' must be a positive number"}, status=400
                )
                return
            parsed = [self._parse_batch_item(item, default_budget) for item in items]
            runnable = [
                (index, question, budget)
                for index, (question, budget, error) in enumerate(parsed)
                if error is None
            ]
            workers = 1
            if runnable:
                if admission is not None:
                    target = min(len(runnable), admission.max_concurrency)
                    while 1 + extra_slots < target and admission.try_acquire():
                        extra_slots += 1
                    workers = 1 + extra_slots
                else:
                    workers = min(len(runnable), 8)
                outcomes = self.chatiyp.ask_batch(
                    [question for _, question, _ in runnable],
                    deadline_ms=[budget for _, _, budget in runnable],
                    workers=workers,
                )
            else:
                outcomes = []
            results: list[dict] = [
                {"ok": False, "error": error} for _, _, error in parsed
            ]
            for (index, _, _), outcome in zip(runnable, outcomes):
                if outcome.ok:
                    results[index] = {"ok": True, "response": outcome.value.to_dict()}
                else:
                    results[index] = {"ok": False, "error": str(outcome.error)}
            body = {"results": results, "count": len(results), "workers": workers}
        finally:
            # As in _handle_ask: return every slot before the response goes
            # out, so the client never races the handler for them.
            if admission is not None:
                for _ in range(1 + extra_slots):
                    admission.release()
        self._send_json(body)

    def _handle_cypher(self) -> None:
        payload = self._read_json_body()
        if payload is None:
            return
        query = payload.get("query")
        params = payload.get("params") or {}
        if not isinstance(query, str) or not query.strip():
            self._send_json({"error": "'query' must be a non-empty string"}, status=400)
            return
        if not isinstance(params, dict):
            self._send_json({"error": "'params' must be an object"}, status=400)
            return
        try:
            if not is_read_only(query):
                self._send_json(
                    {"error": "write queries are not allowed over the API"}, status=403
                )
                return
            result = self.chatiyp.run_cypher(query, **params)
        except CypherSyntaxError as exc:
            self._send_json({"error": f"syntax error: {exc}"}, status=400)
            return
        except CypherError as exc:
            self._send_json({"error": f"query failed: {exc}"}, status=400)
            return
        rows = [
            {key: render_value(value) for key, value in record.to_dict().items()}
            for record in result.records[:200]
        ]
        self._send_json({"keys": result.keys, "rows": rows, "row_count": len(result)})


def make_server(
    chatiyp: ChatIYP,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    *,
    max_concurrency: int = 8,
    max_queue_depth: int = 16,
    queue_timeout_s: float = 1.0,
    retry_after_s: float = 1.0,
    deadline_ms: Optional[float] = None,
    max_batch_size: int = 16,
) -> ThreadingHTTPServer:
    """Create (but do not start) the HTTP server bound to ``host:port``.

    ``max_concurrency``/``max_queue_depth``/``queue_timeout_s`` configure
    the admission controller on ``/ask`` and ``/ask_batch``
    (``max_concurrency=0`` disables admission control entirely); shed
    requests answer ``503`` with a ``Retry-After: retry_after_s`` header.
    ``deadline_ms`` is the default per-request budget applied when the
    client sends none; ``max_batch_size`` caps the questions one
    ``/ask_batch`` request may carry.
    """
    server = _ChatIYPServer((host, port), ChatIYPRequestHandler)
    server.chatiyp = chatiyp  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.deadline_ms = deadline_ms  # type: ignore[attr-defined]
    server.max_batch_size = max_batch_size  # type: ignore[attr-defined]
    server.admission = (  # type: ignore[attr-defined]
        AdmissionController(
            max_concurrency=max_concurrency,
            max_queue_depth=max_queue_depth,
            queue_timeout_s=queue_timeout_s,
            retry_after_s=retry_after_s,
        )
        if max_concurrency > 0
        else None
    )
    return server


def serve(
    chatiyp: ChatIYP, host: str = "127.0.0.1", port: int = 8080, **hardening
) -> None:
    """Run the server until interrupted (``hardening`` → :func:`make_server`)."""
    server = make_server(chatiyp, host, port, verbose=True, **hardening)
    print(f"ChatIYP listening on http://{host}:{server.server_address[1]}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()


def start_background(
    chatiyp: ChatIYP, host: str = "127.0.0.1", **hardening
) -> tuple[ThreadingHTTPServer, int]:
    """Start on an ephemeral port in a daemon thread; returns (server, port)."""
    server = make_server(chatiyp, host, 0, **hardening)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, server.server_address[1]
