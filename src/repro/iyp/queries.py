"""Canned IYP Cypher queries — the cookbook the real IYP documentation ships.

Each entry is a named, parameterised query over the IYP schema, usable
directly against the engine and doubling as executable documentation of
the schema (the test suite runs every one of them).

Example::

    from repro.cypher import CypherEngine
    from repro.iyp import load_dataset
    from repro.iyp.queries import COOKBOOK, run_cookbook_query

    dataset = load_dataset("small")
    result = run_cookbook_query(CypherEngine(dataset.store), "as_overview", asn=2497)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..cypher.executor import CypherEngine
from ..cypher.result import ResultSet

__all__ = ["CookbookQuery", "COOKBOOK", "run_cookbook_query", "cookbook_names"]


@dataclass(frozen=True)
class CookbookQuery:
    """A documented, parameterised IYP query."""

    name: str
    description: str
    cypher: str
    parameters: tuple[str, ...] = ()


COOKBOOK: dict[str, CookbookQuery] = {
    query.name: query
    for query in [
        CookbookQuery(
            name="as_overview",
            description="Name, country, organization and tags of an AS.",
            cypher=(
                "MATCH (a:AS {asn: $asn}) "
                "OPTIONAL MATCH (a)-[:COUNTRY]->(c:Country) "
                "OPTIONAL MATCH (a)-[:MANAGED_BY]->(o:Organization) "
                "RETURN a.asn AS asn, a.name AS name, c.name AS country, "
                "o.name AS organization"
            ),
            parameters=("asn",),
        ),
        CookbookQuery(
            name="as_prefixes",
            description="Prefixes originated by an AS.",
            cypher=(
                "MATCH (:AS {asn: $asn})-[:ORIGINATE]->(p:Prefix) "
                "RETURN p.prefix AS prefix, p.af AS af ORDER BY prefix"
            ),
            parameters=("asn",),
        ),
        CookbookQuery(
            name="prefix_origin",
            description="Which AS originates a given prefix.",
            cypher=(
                "MATCH (a:AS)-[:ORIGINATE]->(:Prefix {prefix: $prefix}) "
                "RETURN a.asn AS asn, a.name AS name"
            ),
            parameters=("prefix",),
        ),
        CookbookQuery(
            name="country_eyeball_ranking",
            description="ASes serving a country's population, largest first "
                        "(the APNIC eyeball view).",
            cypher=(
                "MATCH (a:AS)-[p:POPULATION]->(:Country {country_code: $cc}) "
                "RETURN a.asn AS asn, a.name AS name, p.percent AS percent "
                "ORDER BY percent DESC"
            ),
            parameters=("cc",),
        ),
        CookbookQuery(
            name="as_neighbourhood",
            description="Peers, providers and customers of an AS with the "
                        "CAIDA relationship annotation.",
            cypher=(
                "MATCH (a:AS {asn: $asn})-[r:PEERS_WITH]-(b:AS) "
                "RETURN b.asn AS asn, b.name AS name, r.rel AS rel, "
                "CASE WHEN r.rel = 0 THEN 'peer' "
                "WHEN startNode(r) = a THEN 'customer' ELSE 'provider' END AS role "
                "ORDER BY asn"
            ),
            parameters=("asn",),
        ),
        CookbookQuery(
            name="as_dependencies",
            description="IHR AS-hegemony dependencies of an AS.",
            cypher=(
                "MATCH (:AS {asn: $asn})-[d:DEPENDS_ON]->(t:AS) "
                "RETURN t.asn AS asn, t.name AS name, d.hege AS hegemony "
                "ORDER BY hegemony DESC"
            ),
            parameters=("asn",),
        ),
        CookbookQuery(
            name="ixp_members",
            description="Member ASes of an IXP.",
            cypher=(
                "MATCH (a:AS)-[:MEMBER_OF]->(:IXP {name: $ixp}) "
                "RETURN a.asn AS asn, a.name AS name ORDER BY asn"
            ),
            parameters=("ixp",),
        ),
        CookbookQuery(
            name="country_ixps_with_members",
            description="IXPs of a country with their member counts.",
            cypher=(
                "MATCH (i:IXP)-[:COUNTRY]->(:Country {country_code: $cc}) "
                "OPTIONAL MATCH (a:AS)-[:MEMBER_OF]->(i) "
                "RETURN i.name AS ixp, count(a) AS members ORDER BY members DESC"
            ),
            parameters=("cc",),
        ),
        CookbookQuery(
            name="domain_resolution_chain",
            description="Domain → IP → prefix → origin AS resolution chain.",
            cypher=(
                "MATCH (d:DomainName {name: $domain})-[:RESOLVES_TO]->(i:IP) "
                "OPTIONAL MATCH (i)-[:PART_OF]->(p:Prefix)<-[:ORIGINATE]-(a:AS) "
                "RETURN i.ip AS ip, p.prefix AS prefix, a.asn AS origin_asn "
                "ORDER BY ip"
            ),
            parameters=("domain",),
        ),
        CookbookQuery(
            name="top_ranked_ases",
            description="The best-ranked ASes in CAIDA ASRank.",
            cypher=(
                "MATCH (a:AS)-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) "
                "WHERE r.rank <= $top "
                "RETURN r.rank AS rank, a.asn AS asn, a.name AS name ORDER BY rank"
            ),
            parameters=("top",),
        ),
        CookbookQuery(
            name="tag_members",
            description="ASes categorized with a given tag.",
            cypher=(
                "MATCH (a:AS)-[:CATEGORIZED]->(:Tag {label: $tag}) "
                "RETURN a.asn AS asn, a.name AS name ORDER BY asn"
            ),
            parameters=("tag",),
        ),
        CookbookQuery(
            name="as_transit_path",
            description="A shortest AS-level route between two networks "
                        "following PEERS_WITH edges.",
            cypher=(
                "MATCH (a:AS {asn: $asn1}), (b:AS {asn: $asn2}) "
                "MATCH p = shortestPath((a)-[:PEERS_WITH*..8]-(b)) "
                "RETURN [n IN nodes(p) | n.asn] AS path, length(p) AS hops"
            ),
            parameters=("asn1", "asn2"),
        ),
        CookbookQuery(
            name="org_footprint",
            description="Everything an organization operates: ASes and their "
                        "prefix counts.",
            cypher=(
                "MATCH (a:AS)-[:MANAGED_BY]->(:Organization {name: $org}) "
                "OPTIONAL MATCH (a)-[:ORIGINATE]->(p:Prefix) "
                "RETURN a.asn AS asn, a.name AS name, count(p) AS prefixes "
                "ORDER BY prefixes DESC"
            ),
            parameters=("org",),
        ),
        CookbookQuery(
            name="country_probe_coverage",
            description="Atlas probe coverage per AS in a country.",
            cypher=(
                "MATCH (pr:AtlasProbe)-[:LOCATED_IN]->(a:AS)"
                "-[:COUNTRY]->(:Country {country_code: $cc}) "
                "RETURN a.asn AS asn, count(pr) AS probes ORDER BY probes DESC"
            ),
            parameters=("cc",),
        ),
    ]
}


def cookbook_names() -> list[str]:
    """All cookbook query names, sorted."""
    return sorted(COOKBOOK)


def run_cookbook_query(engine: CypherEngine, name: str, **params: Any) -> ResultSet:
    """Execute cookbook query ``name`` with ``params`` on ``engine``.

    Raises:
        KeyError: unknown query name.
        ValueError: missing parameters.
    """
    query = COOKBOOK[name]
    missing = [p for p in query.parameters if p not in params]
    if missing:
        raise ValueError(f"cookbook query {name!r} needs parameters: {missing}")
    return engine.run(query.cypher, **params)
