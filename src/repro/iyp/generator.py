"""Synthetic IYP graph generator.

Builds a seeded, deterministic Internet Yellow Pages knowledge graph with
realistic structure:

* AS sizes follow a power law; large ASes originate more prefixes, peer
  more, and appear at better ranks.
* A transit hierarchy (full-mesh tier-1 core, customer-provider edges) is
  generated for ``PEERS_WITH`` / ``DEPENDS_ON``.
* APNIC-style eyeball population shares per country (``POPULATION
  {percent}``), anchored so the paper's §1 example — Japan's population in
  AS2497 — resolves to a stable value.

The generator substitutes the public IYP dumps the paper queries; see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..graph.model import Node
from ..graph.store import GraphStore
from .names import (
    COUNTRIES,
    DOMAIN_TLDS,
    DOMAIN_WORDS,
    FACILITY_CITIES,
    IXP_NAMES,
    ORG_SUFFIXES,
    RANKING_NAMES,
    TAG_LABELS,
    WELL_KNOWN_ASES,
)
from .schema import NodeLabel, RelType

__all__ = ["IYPConfig", "IYPDataset", "generate_iyp", "AS2497_JP_PERCENT"]

# The §1 anchor: Japan's population share served by AS2497 (IIJ).
AS2497_JP_PERCENT = 5.3


@dataclass
class IYPConfig:
    """Size and seed knobs for the synthetic IYP graph."""

    seed: int = 42
    n_ases: int = 400
    n_prefixes: int = 1200
    n_ips: int = 800
    n_domains: int = 250
    n_hostnames: int = 150
    n_organizations: int = 120
    n_probes: int = 80
    n_tier1: int = 8
    population_ases_per_country: int = 6

    @classmethod
    def small(cls, seed: int = 42) -> "IYPConfig":
        """A few hundred nodes — fast unit-test graphs."""
        return cls(
            seed=seed, n_ases=80, n_prefixes=150, n_ips=100, n_domains=40,
            n_hostnames=25, n_organizations=30, n_probes=15, n_tier1=5,
            population_ases_per_country=4,
        )

    @classmethod
    def medium(cls, seed: int = 42) -> "IYPConfig":
        """The default evaluation graph (thousands of nodes)."""
        return cls(seed=seed)

    @classmethod
    def large(cls, seed: int = 42) -> "IYPConfig":
        """Benchmark-scale graph (tens of thousands of nodes)."""
        return cls(
            seed=seed, n_ases=2000, n_prefixes=8000, n_ips=6000,
            n_domains=1500, n_hostnames=900, n_organizations=600,
            n_probes=400, n_tier1=12, population_ases_per_country=8,
        )


@dataclass
class IYPDataset:
    """A generated graph plus entity handles for question templating."""

    store: GraphStore
    config: IYPConfig
    as_nodes: dict[int, Node] = field(default_factory=dict)
    as_names: dict[int, str] = field(default_factory=dict)
    as_country: dict[int, str] = field(default_factory=dict)
    as_size: dict[int, float] = field(default_factory=dict)
    country_nodes: dict[str, Node] = field(default_factory=dict)
    country_names: dict[str, str] = field(default_factory=dict)
    ixp_nodes: dict[str, Node] = field(default_factory=dict)
    org_nodes: dict[str, Node] = field(default_factory=dict)
    prefix_nodes: dict[str, Node] = field(default_factory=dict)
    prefix_origin: dict[str, int] = field(default_factory=dict)
    domain_nodes: dict[str, Node] = field(default_factory=dict)
    tag_nodes: dict[str, Node] = field(default_factory=dict)
    ranking_nodes: dict[str, Node] = field(default_factory=dict)
    population_share: dict[tuple[int, str], float] = field(default_factory=dict)

    @property
    def asns(self) -> list[int]:
        return sorted(self.as_nodes)

    @property
    def country_codes(self) -> list[str]:
        return sorted(self.country_nodes)

    @property
    def prefixes(self) -> list[str]:
        return sorted(self.prefix_nodes)

    @property
    def domains(self) -> list[str]:
        return sorted(self.domain_nodes)

    @property
    def tags(self) -> list[str]:
        return sorted(self.tag_nodes)

    @property
    def ixps(self) -> list[str]:
        return sorted(self.ixp_nodes)


def generate_iyp(config: Optional[IYPConfig] = None) -> IYPDataset:
    """Generate a complete synthetic IYP graph.

    Deterministic in ``config.seed``: the same configuration always yields
    byte-identical graphs.
    """
    config = config or IYPConfig()
    rng = random.Random(config.seed)
    store = GraphStore()
    dataset = IYPDataset(store=store, config=config)

    _build_countries(dataset)
    _build_tags(dataset)
    _build_rankings(dataset)
    _build_ases(dataset, rng)
    _build_organizations(dataset, rng)
    _build_facilities_and_ixps(dataset, rng)
    _build_topology(dataset, rng)
    _build_prefixes_and_ips(dataset, rng)
    _build_domains(dataset, rng)
    _build_population(dataset, rng)
    _build_ranks(dataset, rng)
    _build_probes(dataset, rng)
    _build_indexes(dataset)
    return dataset


# ---------------------------------------------------------------------------
# Build steps
# ---------------------------------------------------------------------------

def _build_countries(dataset: IYPDataset) -> None:
    for code, name, population_millions in COUNTRIES:
        node = dataset.store.create_node(
            [NodeLabel.COUNTRY],
            {
                "country_code": code,
                "name": name,
                "population": int(population_millions * 1_000_000),
            },
        )
        dataset.country_nodes[code] = node
        dataset.country_names[code] = name


def _build_tags(dataset: IYPDataset) -> None:
    for label in TAG_LABELS:
        dataset.tag_nodes[label] = dataset.store.create_node(
            [NodeLabel.TAG], {"label": label}
        )


def _build_rankings(dataset: IYPDataset) -> None:
    for name in RANKING_NAMES:
        dataset.ranking_nodes[name] = dataset.store.create_node(
            [NodeLabel.RANKING], {"name": name}
        )


def _pareto_size(rng: random.Random) -> float:
    """Power-law AS 'size' weight (degree/prefix propensity)."""
    return min(rng.paretovariate(1.2), 500.0)


def _build_ases(dataset: IYPDataset, rng: random.Random) -> None:
    store = dataset.store
    country_codes = [code for code, _, _ in COUNTRIES]

    def add_as(asn: int, name: str, country_code: str, size: float) -> None:
        node = store.create_node([NodeLabel.AS], {"asn": asn, "name": name})
        dataset.as_nodes[asn] = node
        dataset.as_names[asn] = name
        dataset.as_country[asn] = country_code
        dataset.as_size[asn] = size
        name_node = store.create_node([NodeLabel.NAME], {"name": name})
        store.create_relationship(node.node_id, RelType.NAME, name_node.node_id)
        store.create_relationship(
            node.node_id, RelType.COUNTRY, dataset.country_nodes[country_code].node_id
        )

    for asn, name, country_code in WELL_KNOWN_ASES[: dataset.config.n_ases]:
        # Well-known networks are the big ones; give them heavy sizes.
        add_as(asn, name, country_code, 40.0 + 200.0 * rng.random())

    synthetic_needed = max(0, dataset.config.n_ases - len(WELL_KNOWN_ASES))
    used_asns = set(dataset.as_nodes)
    for _ in range(synthetic_needed):
        asn = rng.randint(1000, 400000)
        while asn in used_asns:
            asn = rng.randint(1000, 400000)
        used_asns.add(asn)
        country_code = rng.choice(country_codes)
        word = rng.choice(DOMAIN_WORDS).capitalize()
        suffix = rng.choice(ORG_SUFFIXES)
        add_as(asn, f"{word} {suffix} AS{asn}", country_code, _pareto_size(rng))

    # Tag ASes: biggest get transit/CDN tags, many get eyeball/enterprise.
    ranked = sorted(dataset.as_size, key=dataset.as_size.get, reverse=True)
    for position, asn in enumerate(ranked):
        node = dataset.as_nodes[asn]
        if position < dataset.config.n_tier1 * 2:
            tag = "Transit Provider"
        elif dataset.as_names[asn].split()[0] in (
            "GOOGLE", "CLOUDFLARENET", "AKAMAI-ASN1", "FASTLY", "AMAZON-02",
            "MICROSOFT-CORP", "FACEBOOK", "NETFLIX",
        ):
            tag = "Content Delivery Network"
        elif rng.random() < 0.45:
            tag = "Eyeball"
        elif rng.random() < 0.4:
            tag = "Enterprise"
        else:
            tag = rng.choice(TAG_LABELS)
        dataset.store.create_relationship(
            node.node_id, RelType.CATEGORIZED, dataset.tag_nodes[tag].node_id
        )
        if rng.random() < 0.25:
            extra = rng.choice(TAG_LABELS)
            if extra != tag:
                dataset.store.create_relationship(
                    node.node_id, RelType.CATEGORIZED, dataset.tag_nodes[extra].node_id
                )


def _build_organizations(dataset: IYPDataset, rng: random.Random) -> None:
    store = dataset.store
    orgs: list[Node] = []
    for i in range(dataset.config.n_organizations):
        word = rng.choice(DOMAIN_WORDS).capitalize()
        suffix = rng.choice(ORG_SUFFIXES)
        name = f"{word} {suffix}"
        if name in dataset.org_nodes:
            name = f"{name} {i}"
        country_code = rng.choice(list(dataset.country_nodes))
        node = store.create_node([NodeLabel.ORGANIZATION], {"name": name})
        dataset.org_nodes[name] = node
        orgs.append(node)
        store.create_relationship(
            node.node_id, RelType.COUNTRY, dataset.country_nodes[country_code].node_id
        )
        name_node = store.create_node([NodeLabel.NAME], {"name": name})
        store.create_relationship(node.node_id, RelType.NAME, name_node.node_id)
    # Every AS is managed by some organization.
    for asn, as_node in dataset.as_nodes.items():
        org = rng.choice(orgs)
        store.create_relationship(as_node.node_id, RelType.MANAGED_BY, org.node_id)
        if rng.random() < 0.5:
            url = store.create_node(
                [NodeLabel.URL],
                {"url": f"https://as{asn}.example.net"},
            )
            store.create_relationship(as_node.node_id, RelType.WEBSITE, url.node_id)


def _build_facilities_and_ixps(dataset: IYPDataset, rng: random.Random) -> None:
    store = dataset.store
    facilities: dict[str, Node] = {}
    for city, country_code in FACILITY_CITIES:
        if country_code not in dataset.country_nodes:
            continue
        node = store.create_node(
            [NodeLabel.FACILITY], {"name": f"{city} Data Center"}
        )
        facilities[city] = node
        store.create_relationship(
            node.node_id, RelType.COUNTRY, dataset.country_nodes[country_code].node_id
        )
    org_list = list(dataset.org_nodes.values())
    for name, country_code in IXP_NAMES:
        if country_code not in dataset.country_nodes:
            continue
        node = store.create_node([NodeLabel.IXP], {"name": name})
        dataset.ixp_nodes[name] = node
        store.create_relationship(
            node.node_id, RelType.COUNTRY, dataset.country_nodes[country_code].node_id
        )
        if org_list:
            store.create_relationship(
                node.node_id, RelType.MANAGED_BY, rng.choice(org_list).node_id
            )
        same_country = [
            facility
            for (city, cc2), facility in zip(FACILITY_CITIES, facilities.values())
            if cc2 == country_code
        ]
        if same_country:
            store.create_relationship(
                node.node_id, RelType.LOCATED_IN, rng.choice(same_country).node_id
            )
    # IXP membership: probability grows with AS size.
    ixp_list = list(dataset.ixp_nodes.values())
    if not ixp_list:
        return
    max_size = max(dataset.as_size.values())
    for asn, as_node in dataset.as_nodes.items():
        share = dataset.as_size[asn] / max_size
        memberships = rng.sample(
            ixp_list, k=min(len(ixp_list), 1 + int(share * 8))
        ) if rng.random() < 0.25 + 0.7 * share else []
        for ixp in memberships:
            store.create_relationship(as_node.node_id, RelType.MEMBER_OF, ixp.node_id)


def _build_topology(dataset: IYPDataset, rng: random.Random) -> None:
    """CAIDA-style AS relationships plus IHR-style AS dependencies."""
    store = dataset.store
    ranked = sorted(dataset.as_size, key=dataset.as_size.get, reverse=True)
    tier1 = ranked[: dataset.config.n_tier1]
    # Full-mesh peering among the tier-1 clique (rel = 0).
    for i, left in enumerate(tier1):
        for right in tier1[i + 1 :]:
            store.create_relationship(
                dataset.as_nodes[left].node_id,
                RelType.PEERS_WITH,
                dataset.as_nodes[right].node_id,
                {"rel": 0},
            )
    # Everyone else picks 1-3 providers among larger networks (rel = -1,
    # provider -> customer, CAIDA convention).
    providers: dict[int, list[int]] = {asn: [] for asn in ranked}
    for position, asn in enumerate(ranked[dataset.config.n_tier1 :], start=dataset.config.n_tier1):
        candidates = ranked[: position]
        count = min(len(candidates), rng.randint(1, 3))
        weights = [dataset.as_size[c] for c in candidates]
        chosen: set[int] = set()
        for _ in range(count):
            pick = rng.choices(candidates, weights=weights, k=1)[0]
            chosen.add(pick)
        for provider in chosen:
            providers[asn].append(provider)
            store.create_relationship(
                dataset.as_nodes[provider].node_id,
                RelType.PEERS_WITH,
                dataset.as_nodes[asn].node_id,
                {"rel": -1},
            )
    # Some lateral peering (rel = 0) between mid-size networks.
    mid = ranked[dataset.config.n_tier1 : dataset.config.n_tier1 + len(ranked) // 3]
    for asn in mid:
        if rng.random() < 0.5 and len(mid) > 1:
            peer = rng.choice(mid)
            if peer != asn:
                store.create_relationship(
                    dataset.as_nodes[asn].node_id,
                    RelType.PEERS_WITH,
                    dataset.as_nodes[peer].node_id,
                    {"rel": 0},
                )
    # DEPENDS_ON: customers depend on their providers (high hegemony) and
    # transitively on tier-1s (lower hegemony).
    for asn in ranked:
        for provider in providers[asn]:
            store.create_relationship(
                dataset.as_nodes[asn].node_id,
                RelType.DEPENDS_ON,
                dataset.as_nodes[provider].node_id,
                {"hege": round(0.3 + 0.7 * rng.random(), 3)},
            )
        if asn not in tier1:
            for t1 in rng.sample(tier1, k=min(2, len(tier1))):
                store.create_relationship(
                    dataset.as_nodes[asn].node_id,
                    RelType.DEPENDS_ON,
                    dataset.as_nodes[t1].node_id,
                    {"hege": round(0.05 + 0.3 * rng.random(), 3)},
                )


def _build_prefixes_and_ips(dataset: IYPDataset, rng: random.Random) -> None:
    store = dataset.store
    asns = list(dataset.as_nodes)
    weights = [dataset.as_size[asn] for asn in asns]
    used: set[str] = set()
    prefix_list: list[str] = []
    for index in range(dataset.config.n_prefixes):
        asn = rng.choices(asns, weights=weights, k=1)[0]
        # Roughly one prefix in six is IPv6, mirroring current table shares.
        if index % 6 == 5:
            prefix = _random_v6_prefix(rng, used)
            address_family = 6
        else:
            prefix = _random_prefix(rng, used)
            address_family = 4
        node = store.create_node(
            [NodeLabel.PREFIX], {"prefix": prefix, "af": address_family}
        )
        dataset.prefix_nodes[prefix] = node
        dataset.prefix_origin[prefix] = asn
        if address_family == 4:
            prefix_list.append(prefix)
        store.create_relationship(
            dataset.as_nodes[asn].node_id, RelType.ORIGINATE, node.node_id
        )
        country_code = dataset.as_country[asn]
        if rng.random() < 0.9:
            store.create_relationship(
                node.node_id, RelType.COUNTRY, dataset.country_nodes[country_code].node_id
            )
        if rng.random() < 0.2:
            tag = rng.choice(list(dataset.tag_nodes))
            store.create_relationship(
                node.node_id, RelType.CATEGORIZED, dataset.tag_nodes[tag].node_id
            )
    # IPs inside random IPv4 prefixes (v6 prefixes stay address-free).
    for _ in range(dataset.config.n_ips):
        prefix = rng.choice(prefix_list)
        base = prefix.split("/")[0].rsplit(".", 1)[0]
        ip = f"{base}.{rng.randint(1, 254)}"
        node = store.create_node([NodeLabel.IP], {"ip": ip, "af": 4})
        store.create_relationship(
            node.node_id, RelType.PART_OF, dataset.prefix_nodes[prefix].node_id
        )


def _random_v6_prefix(rng: random.Random, used: set[str]) -> str:
    while True:
        # Global unicast 2000::/3 space, documentation-style grouping.
        first = rng.choice(["2001", "2400", "2600", "2a00", "2c00"])
        second = f"{rng.randint(0, 0xFFFF):x}"
        length = rng.choice([32, 32, 48])
        if length == 32:
            prefix = f"{first}:{second}::/32"
        else:
            third = f"{rng.randint(0, 0xFFFF):x}"
            prefix = f"{first}:{second}:{third}::/48"
        if prefix not in used:
            used.add(prefix)
            return prefix


def _random_prefix(rng: random.Random, used: set[str]) -> str:
    while True:
        octet1 = rng.randint(1, 223)
        if octet1 in (10, 127, 169, 172, 192):
            continue
        length = rng.choice([16, 20, 22, 24, 24, 24])
        if length == 16:
            prefix = f"{octet1}.{rng.randint(0, 255)}.0.0/16"
        elif length in (20, 22):
            prefix = f"{octet1}.{rng.randint(0, 255)}.{rng.randint(0, 15) * 16}.0/{length}"
        else:
            prefix = f"{octet1}.{rng.randint(0, 255)}.{rng.randint(0, 255)}.0/24"
        if prefix not in used:
            used.add(prefix)
            return prefix


def _build_domains(dataset: IYPDataset, rng: random.Random) -> None:
    store = dataset.store
    ip_nodes = list(store.nodes_by_label(NodeLabel.IP))
    tranco = dataset.ranking_nodes.get("Tranco Top 1M")
    umbrella = dataset.ranking_nodes.get("Cisco Umbrella Top 1M")
    used: set[str] = set()
    rank = 0
    for _ in range(dataset.config.n_domains):
        name = _random_domain(rng, used)
        node = store.create_node([NodeLabel.DOMAIN_NAME], {"name": name})
        dataset.domain_nodes[name] = node
        rank += rng.randint(1, 40)
        if tranco is not None:
            store.create_relationship(
                node.node_id, RelType.RANK, tranco.node_id, {"rank": rank}
            )
        if umbrella is not None and rng.random() < 0.5:
            store.create_relationship(
                node.node_id, RelType.RANK, umbrella.node_id,
                {"rank": rank + rng.randint(-rank // 2 or 1, 200)},
            )
        for ip in rng.sample(ip_nodes, k=min(len(ip_nodes), rng.randint(1, 3))):
            store.create_relationship(node.node_id, RelType.RESOLVES_TO, ip.node_id)
    domains = list(dataset.domain_nodes)
    for _ in range(dataset.config.n_hostnames):
        domain = rng.choice(domains)
        host = rng.choice(["www", "mail", "api", "cdn", "ns1", "blog", "shop"])
        hostname = f"{host}.{domain}"
        node = store.create_node([NodeLabel.HOST_NAME], {"name": hostname})
        store.create_relationship(
            node.node_id, RelType.PART_OF, dataset.domain_nodes[domain].node_id
        )


def _random_domain(rng: random.Random, used: set[str]) -> str:
    while True:
        first = rng.choice(DOMAIN_WORDS)
        second = rng.choice(DOMAIN_WORDS)
        tld = rng.choice(DOMAIN_TLDS)
        name = f"{first}{second}.{tld}" if first != second else f"{first}.{tld}"
        if name not in used:
            used.add(name)
            return name


def _build_population(dataset: IYPDataset, rng: random.Random) -> None:
    """APNIC-style per-country eyeball population shares."""
    store = dataset.store
    by_country: dict[str, list[int]] = {}
    for asn, country_code in dataset.as_country.items():
        by_country.setdefault(country_code, []).append(asn)
    for country_code, asns in by_country.items():
        country_node = dataset.country_nodes[country_code]
        chosen = sorted(
            asns, key=lambda a: dataset.as_size[a], reverse=True
        )[: dataset.config.population_ases_per_country]
        raw = [dataset.as_size[a] ** 0.8 for a in chosen]
        total_weight = sum(raw) or 1.0
        budget = 55.0 + 35.0 * rng.random()  # top ASes cover 55-90 %
        for asn, weight in zip(chosen, raw):
            percent = round(budget * weight / total_weight, 1)
            if asn == 2497 and country_code == "JP":
                continue  # anchored below
            if percent <= 0:
                continue
            dataset.population_share[(asn, country_code)] = percent
            store.create_relationship(
                dataset.as_nodes[asn].node_id,
                RelType.POPULATION,
                country_node.node_id,
                {"percent": percent},
            )
    # Anchor the paper's example: AS2497 serves a stable share of Japan.
    if 2497 in dataset.as_nodes and "JP" in dataset.country_nodes:
        dataset.population_share[(2497, "JP")] = AS2497_JP_PERCENT
        store.create_relationship(
            dataset.as_nodes[2497].node_id,
            RelType.POPULATION,
            dataset.country_nodes["JP"].node_id,
            {"percent": AS2497_JP_PERCENT},
        )


def _build_ranks(dataset: IYPDataset, rng: random.Random) -> None:
    store = dataset.store
    asrank = dataset.ranking_nodes.get("CAIDA ASRank")
    hegemony = dataset.ranking_nodes.get("IHR AS Hegemony")
    ranked = sorted(dataset.as_size, key=dataset.as_size.get, reverse=True)
    for position, asn in enumerate(ranked, start=1):
        if asrank is not None:
            store.create_relationship(
                dataset.as_nodes[asn].node_id, RelType.RANK, asrank.node_id,
                {"rank": position},
            )
        if hegemony is not None and position <= len(ranked) // 4:
            store.create_relationship(
                dataset.as_nodes[asn].node_id, RelType.RANK, hegemony.node_id,
                {"rank": position + rng.randint(0, 5)},
            )
    # Per-country IHR rankings for JP and US.
    for country_code in ("JP", "US"):
        ranking = dataset.ranking_nodes.get(f"IHR country ranking of ASes ({country_code})")
        if ranking is None:
            continue
        local = [asn for asn in ranked if dataset.as_country[asn] == country_code]
        for position, asn in enumerate(local, start=1):
            store.create_relationship(
                dataset.as_nodes[asn].node_id, RelType.RANK, ranking.node_id,
                {"rank": position},
            )


def _build_probes(dataset: IYPDataset, rng: random.Random) -> None:
    store = dataset.store
    asns = list(dataset.as_nodes)
    weights = [dataset.as_size[asn] for asn in asns]
    for probe_id in range(1, dataset.config.n_probes + 1):
        asn = rng.choices(asns, weights=weights, k=1)[0]
        node = store.create_node(
            [NodeLabel.ATLAS_PROBE], {"id": 6000 + probe_id, "status_name": "Connected"}
        )
        store.create_relationship(
            node.node_id, RelType.LOCATED_IN, dataset.as_nodes[asn].node_id
        )
        store.create_relationship(
            node.node_id,
            RelType.COUNTRY,
            dataset.country_nodes[dataset.as_country[asn]].node_id,
        )


def _build_indexes(dataset: IYPDataset) -> None:
    store = dataset.store
    store.create_property_index(NodeLabel.AS, "asn")
    store.create_property_index(NodeLabel.COUNTRY, "country_code")
    store.create_property_index(NodeLabel.PREFIX, "prefix")
    store.create_property_index(NodeLabel.DOMAIN_NAME, "name")
    store.create_property_index(NodeLabel.HOST_NAME, "name")
    store.create_property_index(NodeLabel.IXP, "name")
    store.create_property_index(NodeLabel.TAG, "label")
    store.create_property_index(NodeLabel.RANKING, "name")
    store.create_property_index(NodeLabel.ORGANIZATION, "name")
    store.create_property_index(NodeLabel.IP, "ip")
    # Ordered indexes for range / prefix / ORDER BY ... LIMIT access paths
    # over the properties CypherEval's ranking and technical questions
    # filter and sort on.
    store.create_sorted_index(NodeLabel.AS, "asn")
    store.create_sorted_index(NodeLabel.AS, "name")
    store.create_sorted_index(NodeLabel.PREFIX, "prefix")
    store.create_sorted_index(NodeLabel.DOMAIN_NAME, "name")
