"""Convenience entry points for building IYP graphs by preset size."""

from __future__ import annotations

from functools import lru_cache

from .generator import IYPConfig, IYPDataset, generate_iyp

__all__ = ["load_dataset", "PRESETS"]

PRESETS = ("small", "medium", "large")


@lru_cache(maxsize=8)
def load_dataset(size: str = "medium", seed: int = 42) -> IYPDataset:
    """Build (and cache) a synthetic IYP dataset.

    Args:
        size: one of ``"small"`` (unit tests), ``"medium"`` (evaluation) or
            ``"large"`` (benchmarks).
        seed: RNG seed; identical (size, seed) pairs return the same cached
            object, so treat the result's store as read-only or build your
            own via :func:`~repro.iyp.generator.generate_iyp`.
    """
    if size not in PRESETS:
        raise ValueError(f"unknown preset {size!r}; expected one of {PRESETS}")
    factory = getattr(IYPConfig, size)
    return generate_iyp(factory(seed=seed))
