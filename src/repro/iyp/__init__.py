"""Synthetic Internet Yellow Pages dataset (schema, names, generator)."""

from .generator import AS2497_JP_PERCENT, IYPConfig, IYPDataset, generate_iyp
from .loader import PRESETS, load_dataset
from .schema import EDGE_PATTERNS, NodeLabel, RelType, schema_summary

__all__ = [
    "IYPConfig",
    "IYPDataset",
    "generate_iyp",
    "load_dataset",
    "PRESETS",
    "NodeLabel",
    "RelType",
    "EDGE_PATTERNS",
    "schema_summary",
    "AS2497_JP_PERCENT",
]
