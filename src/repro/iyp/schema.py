"""IYP schema constants: node labels and relationship types.

Follows the published Internet Yellow Pages model (Fontugne et al., IMC
2024): infrastructure entities are nodes, facts from the measurement
datasets become relationships, and provenance-ish properties (``percent``,
``rank``, ``hege``, ``rel``) live on the edges.
"""

from __future__ import annotations

__all__ = ["NodeLabel", "RelType", "EDGE_PATTERNS", "schema_summary"]


class NodeLabel:
    """Node labels used by the synthetic IYP graph."""

    AS = "AS"
    PREFIX = "Prefix"
    IP = "IP"
    DOMAIN_NAME = "DomainName"
    HOST_NAME = "HostName"
    COUNTRY = "Country"
    IXP = "IXP"
    ORGANIZATION = "Organization"
    FACILITY = "Facility"
    TAG = "Tag"
    RANKING = "Ranking"
    NAME = "Name"
    ATLAS_PROBE = "AtlasProbe"
    URL = "URL"

    ALL = (
        AS, PREFIX, IP, DOMAIN_NAME, HOST_NAME, COUNTRY, IXP, ORGANIZATION,
        FACILITY, TAG, RANKING, NAME, ATLAS_PROBE, URL,
    )


class RelType:
    """Relationship types used by the synthetic IYP graph."""

    NAME = "NAME"
    COUNTRY = "COUNTRY"
    ORIGINATE = "ORIGINATE"
    DEPENDS_ON = "DEPENDS_ON"
    PEERS_WITH = "PEERS_WITH"
    MEMBER_OF = "MEMBER_OF"
    RANK = "RANK"
    POPULATION = "POPULATION"
    CATEGORIZED = "CATEGORIZED"
    MANAGED_BY = "MANAGED_BY"
    WEBSITE = "WEBSITE"
    LOCATED_IN = "LOCATED_IN"
    PART_OF = "PART_OF"
    RESOLVES_TO = "RESOLVES_TO"

    ALL = (
        NAME, COUNTRY, ORIGINATE, DEPENDS_ON, PEERS_WITH, MEMBER_OF, RANK,
        POPULATION, CATEGORIZED, MANAGED_BY, WEBSITE, LOCATED_IN, PART_OF,
        RESOLVES_TO,
    )


# (start label, relationship type, end label, edge property keys)
EDGE_PATTERNS: list[tuple[str, str, str, tuple[str, ...]]] = [
    (NodeLabel.AS, RelType.NAME, NodeLabel.NAME, ()),
    (NodeLabel.AS, RelType.COUNTRY, NodeLabel.COUNTRY, ()),
    (NodeLabel.AS, RelType.ORIGINATE, NodeLabel.PREFIX, ()),
    (NodeLabel.AS, RelType.DEPENDS_ON, NodeLabel.AS, ("hege",)),
    (NodeLabel.AS, RelType.PEERS_WITH, NodeLabel.AS, ("rel",)),
    (NodeLabel.AS, RelType.MEMBER_OF, NodeLabel.IXP, ()),
    (NodeLabel.AS, RelType.RANK, NodeLabel.RANKING, ("rank",)),
    (NodeLabel.AS, RelType.POPULATION, NodeLabel.COUNTRY, ("percent",)),
    (NodeLabel.AS, RelType.CATEGORIZED, NodeLabel.TAG, ()),
    (NodeLabel.AS, RelType.MANAGED_BY, NodeLabel.ORGANIZATION, ()),
    (NodeLabel.AS, RelType.WEBSITE, NodeLabel.URL, ()),
    (NodeLabel.ORGANIZATION, RelType.COUNTRY, NodeLabel.COUNTRY, ()),
    (NodeLabel.ORGANIZATION, RelType.NAME, NodeLabel.NAME, ()),
    (NodeLabel.IXP, RelType.COUNTRY, NodeLabel.COUNTRY, ()),
    (NodeLabel.IXP, RelType.MANAGED_BY, NodeLabel.ORGANIZATION, ()),
    (NodeLabel.IXP, RelType.LOCATED_IN, NodeLabel.FACILITY, ()),
    (NodeLabel.FACILITY, RelType.COUNTRY, NodeLabel.COUNTRY, ()),
    (NodeLabel.PREFIX, RelType.COUNTRY, NodeLabel.COUNTRY, ()),
    (NodeLabel.PREFIX, RelType.CATEGORIZED, NodeLabel.TAG, ()),
    (NodeLabel.IP, RelType.PART_OF, NodeLabel.PREFIX, ()),
    (NodeLabel.DOMAIN_NAME, RelType.RESOLVES_TO, NodeLabel.IP, ()),
    (NodeLabel.HOST_NAME, RelType.PART_OF, NodeLabel.DOMAIN_NAME, ()),
    (NodeLabel.DOMAIN_NAME, RelType.RANK, NodeLabel.RANKING, ("rank",)),
    (NodeLabel.ATLAS_PROBE, RelType.COUNTRY, NodeLabel.COUNTRY, ()),
    (NodeLabel.ATLAS_PROBE, RelType.LOCATED_IN, NodeLabel.AS, ()),
]


def schema_summary() -> str:
    """One-line-per-pattern textual schema (for docs and prompts)."""
    lines = []
    for start, rel_type, end, props in EDGE_PATTERNS:
        suffix = " {" + ", ".join(props) + "}" if props else ""
        lines.append(f"(:{start})-[:{rel_type}{suffix}]->(:{end})")
    return "\n".join(lines)
