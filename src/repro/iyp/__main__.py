"""``python -m repro.iyp`` — generate and export a synthetic IYP dump.

Examples::

    python -m repro.iyp --size small --out dumps/small
    python -m repro.iyp --size medium --seed 7 --out dumps/medium --stats
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..graph.csv_io import export_to_directory
from ..graph.schema import introspect_schema
from .generator import IYPConfig, generate_iyp


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.iyp",
        description="Generate a synthetic Internet Yellow Pages graph and "
                    "export it as CSV dumps",
    )
    parser.add_argument("--size", default="small", choices=("small", "medium", "large"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path, required=True, help="output directory")
    parser.add_argument("--stats", action="store_true", help="print the schema summary")
    args = parser.parse_args(argv)

    config = getattr(IYPConfig, args.size)(seed=args.seed)
    dataset = generate_iyp(config)
    nodes_path, rels_path = export_to_directory(dataset.store, args.out)
    print(f"Generated {dataset.store.node_count} nodes / "
          f"{dataset.store.relationship_count} relationships (seed={args.seed})")
    print(f"Wrote {nodes_path}")
    print(f"Wrote {rels_path}")
    if args.stats:
        print()
        print(introspect_schema(dataset.store).describe())
    return 0


if __name__ == "__main__":
    sys.exit(main())
