"""Cost-based planner for MATCH clauses.

Given a MATCH clause and :class:`~repro.graph.store.GraphStatistics`, the
planner chooses, per pattern part:

* the cheapest **anchor** access path — a bound variable beats an indexed
  property lookup, which beats a filtered label scan, which beats a bare
  label scan, which beats an all-nodes scan; ties break on estimated rows;
* the **traversal direction** (anchor left or right end), replacing the
  executor's old shape-only heuristic with cardinality estimates;
* **predicate pushdown**: top-level ``WHERE`` equality / ``IN`` conjuncts
  over literals or parameters become indexed anchor lookups and early
  per-hop bind-time filters.  The full WHERE expression is still evaluated
  on every matched row, so pushdown can only *narrow* candidate sets —
  planned execution is semantics-preserving by construction.

Plans are plain frozen dataclasses; the executor consumes them, ``EXPLAIN``
renders them, and ``profile()`` compares their estimates against actual
row counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..graph.store import GraphStatistics
from . import ast_nodes as ast

__all__ = [
    "AnchorPlan",
    "PartPlan",
    "MatchPlan",
    "PushedFilter",
    "plan_match",
    "plan_query",
    "extract_pushdown",
]

# Pushable value expressions are row-independent: literals and parameters.
_PUSHABLE = (ast.Literal, ast.Parameter)


@dataclass(frozen=True)
class PushedFilter:
    """One WHERE conjunct pushed to bind time.

    ``kind`` is ``"eq"`` (``var.key = expr``), ``"in"`` (``var.key IN
    list``), ``"range"`` (one comparison bound ``var.key OP expr`` with
    ``OP`` in ``< <= > >=``, the operator recorded in ``ops``) or
    ``"prefix"`` (``var.key STARTS WITH expr``).  ``values`` holds one
    expression for equality/range/prefix, or every list element for ``IN``.
    All expressions are literals or parameters, so they evaluate without a
    row environment.
    """

    key: str
    kind: str  # "eq" | "in" | "range" | "prefix"
    values: tuple[ast.Expr, ...]
    ops: tuple[str, ...] = ()  # range only: comparison op per value


@dataclass(frozen=True)
class AnchorPlan:
    """Chosen access path for the anchor end of a pattern part.

    ``kind`` is one of:

    * ``"bound"`` — the anchor variable is already bound upstream;
    * ``"property"`` — exact-match lookup ``nodes_by_property(label, key, v)``
      (served by the property index when ``indexed``, else a filtered
      label scan inside the store);
    * ``"property-in"`` — the same lookup fanned out over an ``IN`` list;
    * ``"label"`` — label scan;
    * ``"all"`` — all-nodes scan.
    """

    kind: str
    variable: Optional[str] = None
    label: Optional[str] = None
    key: Optional[str] = None
    values: tuple[ast.Expr, ...] = ()
    ops: tuple[str, ...] = ()  # range only: comparison op per value
    indexed: bool = False
    est_rows: float = 1.0
    est_examined: float = 1.0

    def describe(self) -> str:
        """Access-path text used by EXPLAIN (stable, test-asserted)."""
        if self.kind == "bound":
            return f"BoundVariable({self.variable})"
        if self.kind == "property":
            via = "index" if self.indexed else "label-scan"
            return f"PropertyLookup(:{self.label}.{self.key}) [{via}]"
        if self.kind == "property-in":
            via = "index" if self.indexed else "label-scan"
            return (
                f"PropertyLookup(:{self.label}.{self.key}"
                f" IN {len(self.values)} values) [{via}]"
            )
        if self.kind == "range":
            bounds = " AND ".join(
                f"{op} {_expr_text(value)}" for op, value in zip(self.ops, self.values)
            )
            return f"RangeLookup(:{self.label}.{self.key} {bounds}) [sorted-index]"
        if self.kind == "prefix":
            return (
                f"PrefixLookup(:{self.label}.{self.key}"
                f" STARTS WITH {_expr_text(self.values[0])}) [sorted-index]"
            )
        if self.kind == "label":
            return f"LabelScan(:{self.label})"
        return "AllNodesScan"

    def physical_operator(self) -> tuple[str, str]:
        """The ``(name, detail)`` pair the physical AnchorScan operator
        displays for this access path (PROFILE / ``cypher_profile``)."""
        if self.kind == "bound":
            return "BoundAnchor", self.variable or ""
        if self.kind == "property":
            return "HashLookup", f":{self.label}.{self.key}"
        if self.kind == "property-in":
            return "HashLookup", f":{self.label}.{self.key} IN {len(self.values)} values"
        if self.kind == "range":
            return "RangeLookup", f":{self.label}.{self.key}"
        if self.kind == "prefix":
            return "PrefixLookup", f":{self.label}.{self.key}"
        if self.kind == "label":
            return "LabelScan", f":{self.label}"
        return "AllNodesScan", ""


def _expr_text(expr: ast.Expr) -> str:
    """Render a pushable (literal/parameter) expression for EXPLAIN."""
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.Parameter):
        return f"${expr.name}"
    return "..."


@dataclass(frozen=True)
class PartPlan:
    """Plan for one comma-separated pattern part of a MATCH."""

    reverse: bool
    anchor: AnchorPlan
    est_rows: float = 1.0
    # Whether execution must maintain the used-relationship set for Cypher's
    # rel-uniqueness; False when the part's hop types are provably disjoint.
    needs_used: bool = True
    # Whether the part's hops should run over the CSR snapshot's adjacency
    # arrays.  Deliberately NOT a cost input: CSR scales the constant factor
    # of both traversal directions equally, so letting it discount hop costs
    # could flip the direction choice — and with it row order — between
    # csr-on and csr-off runs.  Recording availability on the plan keeps
    # lowering and EXPLAIN informed while direction stays identical.
    use_csr: bool = False

    @property
    def direction(self) -> str:
        return "right-to-left" if self.reverse else "left-to-right"


@dataclass(frozen=True)
class MatchPlan:
    """Plan for one MATCH clause: per-part plans plus pushed filters."""

    parts: tuple[PartPlan, ...]
    filters: dict[str, tuple[PushedFilter, ...]] = field(default_factory=dict)
    stats_version: int = -1

    @property
    def est_rows(self) -> float:
        total = 1.0
        for part in self.parts:
            total *= max(part.est_rows, 0.0)
        return total


# ---------------------------------------------------------------------------
# Predicate extraction
# ---------------------------------------------------------------------------

def extract_pushdown(where: Optional[ast.Expr]) -> dict[str, tuple[PushedFilter, ...]]:
    """Collect pushable WHERE conjuncts: equality, ``IN``, comparisons, prefix.

    Only *top-level AND* conjuncts qualify (anything under OR/XOR/NOT must
    stay in the residual WHERE), and only with literal or parameter
    values.  Chained comparisons (``1 < a.asn <= 5``) contribute one range
    filter per qualifying adjacent pair.  Returns ``variable -> filters``.
    """
    if where is None:
        return {}
    collected: dict[str, list[PushedFilter]] = {}
    for conjunct in _conjuncts(where):
        for variable, filt in _pushable_filters(conjunct):
            collected.setdefault(variable, []).append(filt)
    return {variable: tuple(filters) for variable, filters in collected.items()}


def _conjuncts(expr: ast.Expr) -> Iterable[ast.Expr]:
    if isinstance(expr, ast.BooleanOp) and expr.op == "AND":
        for operand in expr.operands:
            yield from _conjuncts(operand)
    else:
        yield expr


#: Mirror image of each pushable comparison operator (for ``value OP var.key``).
_FLIPPED_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _pushable_filters(expr: ast.Expr) -> Iterable[tuple[str, PushedFilter]]:
    if isinstance(expr, ast.Comparison):
        # Each adjacent (left OP right) pair of a (possibly chained)
        # comparison is its own conjunct: pushing any qualifying pair only
        # narrows candidates, the full chain still runs in the residual
        # WHERE.
        for op, left, right in zip(expr.ops, expr.operands, expr.operands[1:]):
            if op == "=":
                for subject, value in ((left, right), (right, left)):
                    target = _property_of_variable(subject)
                    if target is not None and isinstance(value, _PUSHABLE):
                        variable, key = target
                        yield variable, PushedFilter(key=key, kind="eq", values=(value,))
                        break
            elif op in _FLIPPED_OP:
                for subject, value, subject_op in (
                    (left, right, op),
                    (right, left, _FLIPPED_OP[op]),
                ):
                    target = _property_of_variable(subject)
                    if target is not None and isinstance(value, _PUSHABLE):
                        variable, key = target
                        yield variable, PushedFilter(
                            key=key, kind="range", values=(value,), ops=(subject_op,)
                        )
                        break
        return
    if isinstance(expr, ast.StringPredicate) and expr.op == "STARTS":
        target = _property_of_variable(expr.left)
        if target is not None and isinstance(expr.right, _PUSHABLE):
            variable, key = target
            yield variable, PushedFilter(key=key, kind="prefix", values=(expr.right,))
        return
    if isinstance(expr, ast.InList):
        target = _property_of_variable(expr.value)
        if target is None:
            return
        variable, key = target
        if isinstance(expr.container, ast.ListLiteral) and all(
            isinstance(item, _PUSHABLE) for item in expr.container.items
        ):
            yield variable, PushedFilter(key=key, kind="in", values=expr.container.items)
        elif isinstance(expr.container, ast.Parameter):
            yield variable, PushedFilter(key=key, kind="in", values=(expr.container,))


def _property_of_variable(expr: ast.Expr) -> Optional[tuple[str, str]]:
    if isinstance(expr, ast.PropertyAccess) and isinstance(expr.subject, ast.Variable):
        return expr.subject.name, expr.key
    return None


# ---------------------------------------------------------------------------
# Anchor selection
# ---------------------------------------------------------------------------

def _scan_label(node: ast.NodePattern, stats: GraphStatistics) -> Optional[str]:
    """The cheapest label to scan for ``node`` (smallest cardinality)."""
    if not node.labels:
        return None
    return min(node.labels, key=lambda label: (stats.label_count(label), label))


def _candidate_lookups(
    node: ast.NodePattern,
    filters: dict[str, tuple[PushedFilter, ...]],
) -> list[tuple[str, str, tuple[ast.Expr, ...]]]:
    """Exact-match lookup candidates ``(kind, key, values)`` for ``node``.

    Inline pattern properties with pushable value expressions come first,
    then WHERE filters pushed onto the node's variable.
    """
    lookups: list[tuple[str, str, tuple[ast.Expr, ...]]] = []
    for key, expr in node.properties:
        if isinstance(expr, _PUSHABLE):
            lookups.append(("property", key, (expr,)))
    if node.variable is not None:
        for filt in filters.get(node.variable, ()):
            if filt.kind == "eq":
                lookups.append(("property", filt.key, filt.values))
            elif filt.kind == "in" and all(
                isinstance(value, ast.Literal) for value in filt.values
            ):
                # IN over literal lists fans out into index probes; IN over a
                # parameter stays a bind-time filter (size unknown at plan time).
                lookups.append(("property-in", filt.key, filt.values))
    return lookups


#: Assumed fraction of a label surviving one / two pushed range bounds.
_RANGE_SELECTIVITY = {1: 0.4, 2: 0.15}
#: Assumed fraction of a label surviving a pushed STARTS WITH prefix.
_PREFIX_SELECTIVITY = 0.05


def _candidate_ordered_lookups(
    node: ast.NodePattern,
    stats: GraphStatistics,
    filters: dict[str, tuple[PushedFilter, ...]],
) -> list[AnchorPlan]:
    """Sorted-index anchor candidates (range / prefix scans) for ``node``.

    Range filters on the same key merge into at most one lower and one
    upper bound (extra bounds stay bind-time filters); a candidate is only
    produced when some label of the node has a sorted index on the key —
    without one, a range scan degenerates to the label scan it would have
    to beat.
    """
    if node.variable is None:
        return []
    candidates: list[AnchorPlan] = []
    bounds: dict[str, dict[str, tuple[ast.Expr, str]]] = {}
    prefixes: dict[str, ast.Expr] = {}
    for filt in filters.get(node.variable, ()):
        if filt.kind == "range":
            op = filt.ops[0]
            side = "lower" if op in (">", ">=") else "upper"
            bounds.setdefault(filt.key, {}).setdefault(side, (filt.values[0], op))
        elif filt.kind == "prefix":
            prefixes.setdefault(filt.key, filt.values[0])
    for key, sides in bounds.items():
        label = next(
            (lbl for lbl in node.labels if stats.has_sorted_index(lbl, key)), None
        )
        if label is None:
            continue
        ordered = [sides[side] for side in ("lower", "upper") if side in sides]
        est = max(1.0, stats.label_count(label) * _RANGE_SELECTIVITY[len(ordered)])
        candidates.append(
            AnchorPlan(
                kind="range",
                variable=node.variable,
                label=label,
                key=key,
                values=tuple(value for value, _ in ordered),
                ops=tuple(op for _, op in ordered),
                indexed=True,
                est_rows=est,
                est_examined=est,
            )
        )
    for key, value in prefixes.items():
        label = next(
            (lbl for lbl in node.labels if stats.has_sorted_index(lbl, key)), None
        )
        if label is None:
            continue
        est = max(1.0, stats.label_count(label) * _PREFIX_SELECTIVITY)
        candidates.append(
            AnchorPlan(
                kind="prefix",
                variable=node.variable,
                label=label,
                key=key,
                values=(value,),
                indexed=True,
                est_rows=est,
                est_examined=est,
            )
        )
    return candidates


def plan_anchor(
    node: ast.NodePattern,
    stats: GraphStatistics,
    bound: frozenset[str],
    filters: dict[str, tuple[PushedFilter, ...]] | None = None,
) -> AnchorPlan:
    """Choose the cheapest access path for ``node`` as a part anchor."""
    filters = filters or {}
    if node.variable is not None and node.variable in bound:
        return AnchorPlan(
            kind="bound", variable=node.variable, est_rows=1.0, est_examined=0.0
        )

    label = _scan_label(node, stats)
    label_rows = float(stats.label_count(label)) if label else float(stats.node_count)
    lookups = _candidate_lookups(node, filters)

    best: Optional[AnchorPlan] = None
    if label is not None:
        for kind, key, values in lookups:
            indexed_label = next(
                (lbl for lbl in node.labels if stats.has_index(lbl, key)), None
            )
            use_label = indexed_label or label
            indexed = indexed_label is not None
            per_probe = stats.lookup_estimate(use_label, key) if indexed else max(
                1.0, label_rows / 10.0
            )
            probes = len(values) if kind == "property-in" else 1
            est_rows = per_probe * probes
            est_examined = est_rows if indexed else label_rows
            candidate = AnchorPlan(
                kind=kind,
                variable=node.variable,
                label=use_label,
                key=key,
                values=values,
                indexed=indexed,
                est_rows=est_rows,
                est_examined=est_examined,
            )
            if best is None or _cost(candidate) < _cost(best):
                best = candidate
        for candidate in _candidate_ordered_lookups(node, stats, filters):
            if best is None or _cost(candidate) < _cost(best):
                best = candidate
    if best is not None:
        return best
    if label is not None:
        # No exact-match lookup available: plain label scan (inline
        # properties with non-pushable values are verified at bind time).
        est = max(1.0, label_rows / 10.0) if node.properties else label_rows
        return AnchorPlan(
            kind="label",
            variable=node.variable,
            label=label,
            est_rows=est,
            est_examined=label_rows,
        )
    total = float(stats.node_count)
    est = max(1.0, total / 10.0) if node.properties else total
    return AnchorPlan(
        kind="all", variable=node.variable, est_rows=est, est_examined=total
    )


def _cost(anchor: AnchorPlan) -> tuple[float, float, int]:
    """Comparable cost: output rows first, then rows examined, then tier."""
    tier = {
        "bound": 0,
        "property": 1,
        "property-in": 1,
        "range": 2,
        "prefix": 2,
        "label": 3,
        "all": 4,
    }
    return (anchor.est_rows, anchor.est_examined, tier[anchor.kind])


# ---------------------------------------------------------------------------
# Part / clause planning
# ---------------------------------------------------------------------------

def _hop_edges(
    rel: ast.RelPattern,
    from_label: Optional[str],
    direction: str,
    stats: GraphStatistics,
) -> tuple[float, float]:
    """``(edges_per_row, type_total)`` for one hop leaving a ``from_label`` node.

    ``edges_per_row`` is the average number of edges enumerated per source
    row — the per-(type, direction, endpoint-label) statistics make this
    asymmetric: e.g. ``COUNTRY`` edges *leave* each AS about once but
    *arrive* at the 50 Country nodes from every labelled source, so the
    reverse hop touches far more edges per anchor row.
    """
    types = rel.types or tuple(stats.rel_type_counts)
    sides = ("out", "in") if direction == "both" else (direction,)
    type_total = float(sum(stats.rel_type_count(t) for t in types)) or 1.0
    if from_label is None:
        from_rows = float(max(stats.node_count, 1))
        touched = type_total * (2.0 if direction == "both" else 1.0)
    else:
        from_rows = float(max(stats.label_count(from_label), 1))
        touched = float(
            sum(stats.endpoint_count(t, side, from_label) for t in types for side in sides)
        )
    return touched / from_rows, type_total


def _node_narrowing(
    node: ast.NodePattern, filters: dict[str, tuple[PushedFilter, ...]]
) -> float:
    """Selectivity factor for inline props / pushed filters on a hop target."""
    has_filter = bool(node.properties) or bool(
        node.variable and filters.get(node.variable)
    )
    return 0.1 if has_filter else 1.0


def _walk_estimate(
    part: ast.PatternPart,
    anchor: AnchorPlan,
    reverse: bool,
    stats: GraphStatistics,
    filters: dict[str, tuple[PushedFilter, ...]],
) -> tuple[float, float]:
    """``(cost, rows)`` of executing ``part`` anchored at one end.

    Cost counts work actually done by the executor: anchor rows examined,
    plus every edge enumerated (and bind-checked) at every hop.  Rows track
    the estimated surviving bindings after each hop's label/filter checks.
    """
    nodes = list(part.nodes)
    rels = list(part.relationships)
    if reverse:
        nodes.reverse()
        rels.reverse()
    flip = {"out": "in", "in": "out", "both": "both"}
    rows = anchor.est_rows
    cost = anchor.est_examined + anchor.est_rows
    for index, rel in enumerate(rels):
        direction = flip[rel.direction] if reverse else rel.direction
        from_label = _scan_label(nodes[index], stats)
        to_node = nodes[index + 1]
        to_label = _scan_label(to_node, stats)
        edges_per_row, type_total = _hop_edges(rel, from_label, direction, stats)
        if rel.var_length:
            hops = max(rel.max_hops or rel.min_hops or 1, 1)
            if edges_per_row > 1.0:
                edges_per_row = edges_per_row**hops
        edges = rows * edges_per_row
        cost += edges
        if to_label is not None:
            opposite = flip[direction]
            if direction == "both":
                matching = sum(
                    stats.endpoint_count(t, side, to_label)
                    for t in (rel.types or tuple(stats.rel_type_counts))
                    for side in ("out", "in")
                ) / 2.0
            else:
                matching = float(
                    sum(
                        stats.endpoint_count(t, opposite, to_label)
                        for t in (rel.types or tuple(stats.rel_type_counts))
                    )
                )
            rows = edges * min(matching / type_total, 1.0)
        else:
            rows = edges
        rows *= _node_narrowing(to_node, filters)
    return cost, rows


def needs_used_tracking(part: ast.PatternPart) -> bool:
    """Whether matching ``part`` must maintain the used-relationship set.

    Cypher's relationship-uniqueness only bites when two hops of the part
    could bind the same relationship: a single hop, or hops whose declared
    type sets are pairwise disjoint, can never produce duplicates, so the
    executor can skip the per-step used-set unions.
    """
    rels = part.relationships
    if len(rels) <= 1:
        return False
    if not all(rel.types for rel in rels):
        return True
    all_types = [t for rel in rels for t in rel.types]
    return len(all_types) != len(set(all_types))


def csr_part_eligible(part: ast.PatternPart) -> bool:
    """Whether ``part``'s hops can run over CSR adjacency arrays.

    CSR expansion keeps only rel *ids* in flight, so a hop that binds a
    relationship variable or checks relationship properties (both need
    materialised ``Relationship`` objects with row-dependent semantics)
    stays on the dict path, as do shortest-path parts and parts binding a
    whole path variable.
    """
    if part.shortest is not None or part.path_variable is not None:
        return False
    return all(
        rel.variable is None and not rel.properties for rel in part.relationships
    )


def plan_part(
    part: ast.PatternPart,
    stats: GraphStatistics,
    bound: frozenset[str],
    filters: dict[str, tuple[PushedFilter, ...]],
    csr: bool = False,
) -> PartPlan:
    """Plan one pattern part: pick anchor end, direction, access path.

    Direction is chosen by total estimated work (anchor rows examined plus
    edges enumerated over every hop), not just anchor cardinality — a tiny
    anchor can still lose if expanding from it touches many more edges.
    ``csr`` marks whether the engine may traverse a CSR snapshot; it is
    recorded on eligible parts but never enters the cost comparison (see
    :class:`PartPlan.use_csr`).
    """
    nodes = part.nodes
    first, last = nodes[0], nodes[-1]
    needs_used = needs_used_tracking(part)
    use_csr = csr and csr_part_eligible(part)
    forward = plan_anchor(first, stats, bound, filters)
    forward_cost, forward_rows = _walk_estimate(part, forward, False, stats, filters)
    if part.shortest is not None or len(part.elements) == 1:
        return PartPlan(
            reverse=False, anchor=forward, est_rows=forward_rows,
            needs_used=needs_used, use_csr=use_csr,
        )
    backward = plan_anchor(last, stats, bound, filters)
    backward_cost, backward_rows = _walk_estimate(part, backward, True, stats, filters)
    reverse = (backward_cost, *_cost(backward)) < (forward_cost, *_cost(forward))
    if reverse:
        return PartPlan(
            reverse=True, anchor=backward, est_rows=backward_rows,
            needs_used=needs_used, use_csr=use_csr,
        )
    return PartPlan(
        reverse=False, anchor=forward, est_rows=forward_rows,
        needs_used=needs_used, use_csr=use_csr,
    )


def plan_match(
    clause: ast.MatchClause,
    stats: GraphStatistics,
    bound: frozenset[str] = frozenset(),
    csr: bool = False,
) -> MatchPlan:
    """Plan a whole MATCH clause against ``stats``.

    ``bound`` names variables guaranteed bound by earlier clauses; pattern
    parts see variables introduced by preceding parts of the same clause.
    """
    filters = extract_pushdown(clause.where)
    parts: list[PartPlan] = []
    visible = set(bound)
    for part in clause.pattern.parts:
        parts.append(plan_part(part, stats, frozenset(visible), filters, csr))
        for element in part.elements:
            if element.variable:
                visible.add(element.variable)
        if part.path_variable:
            visible.add(part.path_variable)
    return MatchPlan(
        parts=tuple(parts), filters=filters, stats_version=stats.version
    )


def plan_query(
    tree: Union[ast.SingleQuery, ast.UnionQuery],
    stats: GraphStatistics,
    csr: bool = False,
) -> dict[int, MatchPlan]:
    """Plan every MATCH clause of ``tree``; returns ``id(clause) -> plan``.

    Tracks which variables each clause binds so later MATCHes anchor on
    already-bound variables.  The mapping is keyed by clause identity; the
    caller must keep ``tree`` alive for as long as it keeps the plans.
    """
    plans: dict[int, MatchPlan] = {}
    queries = tree.queries if isinstance(tree, ast.UnionQuery) else (tree,)
    for single in queries:
        bound: set[str] = set()
        for clause in single.clauses:
            if isinstance(clause, ast.MatchClause):
                plans[id(clause)] = plan_match(clause, stats, frozenset(bound), csr)
                for part in clause.pattern.parts:
                    for element in part.elements:
                        if element.variable:
                            bound.add(element.variable)
                    if part.path_variable:
                        bound.add(part.path_variable)
            elif isinstance(clause, ast.UnwindClause):
                bound.add(clause.variable)
            elif isinstance(clause, (ast.WithClause, ast.ReturnClause)):
                if clause.star:
                    # WITH * keeps everything in scope; nothing to remove.
                    bound.update(item.output_name() for item in clause.items)
                else:
                    bound = {item.output_name() for item in clause.items}
            elif isinstance(clause, (ast.CreateClause,)):
                for part in clause.pattern.parts:
                    for element in part.elements:
                        if element.variable:
                            bound.add(element.variable)
            elif isinstance(clause, ast.MergeClause):
                for element in clause.part.elements:
                    if element.variable:
                        bound.add(element.variable)
    return plans
