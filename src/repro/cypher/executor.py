"""Query executor: evaluates a parsed Cypher AST against a GraphStore.

The engine lowers each query into a tree of pull-based physical operators
(:mod:`repro.cypher.operators`): MATCH clauses are planned by
:mod:`repro.cypher.planner` against live graph statistics — the planner
picks the cheapest anchor access path per pattern part, decides traversal
direction, and pushes WHERE equality/IN predicates down into indexed
lookups and bind-time filters — and each planned part becomes an explicit
``AnchorScan → Expand* → Match`` operator chain.  The tree executes
Volcano-style (``open()/next()/close()``), so a downstream LIMIT/top-k
stops pulling and the whole upstream pipeline terminates early; only
blocking operators (Sort, Aggregate, ``RETURN *``, write barriers)
materialise rows.  Plans (and parsed ASTs) are cached in a bounded LRU
keyed by query text; ``planner=False`` is the escape hatch that falls
back to the naive shape-only heuristics (via a row-at-a-time ``Match``
fallback operator, so results stay bit-identical to planned execution).

Entry points: :class:`CypherEngine` — ``engine.run(query, **params)``
for the classic API, ``engine.execute(query, params, deadline=...,
row_budget=..., profile=...)`` for deadline-aware, budgeted, profiled
execution, and ``engine.profile(query, **params)`` for the per-operator
``PROFILE`` tree (rows produced + wall-time per operator).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Union

from ..faults import fault_point
from ..graph.model import Node, Path, Relationship
from ..graph.store import GraphStore
from . import ast_nodes as ast
from . import operators as ops
from .compile import ExpressionCompiler, binary_operation, compare_once
from .errors import CypherRuntimeError, CypherSyntaxError, CypherTypeError
from .functions import (
    call_aggregate,
    call_scalar,
    is_aggregate_function,
    percentile,
)
from .operators import (
    RuntimeState,
    _contains_aggregate,
    _Descending,
    _freeze,
    _same_rel_binding,
    profile_tree,
    render_profile,
)
from .parser import parse
from .planner import AnchorPlan, MatchPlan, PartPlan, PushedFilter, plan_query
from .result import Record, ResultSet
from .values import cypher_compare, cypher_equals, is_truthy, sort_key

__all__ = ["CypherEngine", "execute"]

Row = dict[str, Any]
Filters = dict[str, tuple[PushedFilter, ...]]


def execute(store: GraphStore, query: str, **params: Any) -> ResultSet:
    """One-shot convenience wrapper around :class:`CypherEngine`."""
    return CypherEngine(store).run(query, **params)


class _LRUCache(OrderedDict):
    """Bounded mapping with least-recently-used eviction.

    A thin :class:`OrderedDict` wrapper: hits move to the back, inserts
    evict from the front once ``capacity`` is exceeded.  Sustained mixed
    workloads stay warm instead of thrashing on a clear-everything reset.
    """

    def __init__(self, capacity: int = 1024) -> None:
        super().__init__()
        self.capacity = capacity

    def get(self, key: Any, default: Any = None) -> Any:
        if key not in self:
            return default
        self.move_to_end(key)
        return super().__getitem__(key)

    def __setitem__(self, key: Any, value: Any) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.capacity:
            self.popitem(last=False)


@dataclass
class _PlanEntry:
    """Cached plans for one query text, valid for one statistics version.

    Holds the tree so the ``id(clause)`` plan keys can never dangle.
    """

    tree: ast.Query
    stats_version: int
    plans: dict[int, MatchPlan] = field(default_factory=dict)
    #: compiled single-node point-lookup fast path (None = shape ineligible)
    fastpath: Any = None
    fastpath_ready: bool = False


@dataclass
class _FastPath:
    """A fully-anchored ``MATCH ... RETURN ...`` compiled to closures.

    Cached on the :class:`_PlanEntry`, so repeated executions of the same
    query text skip operator-tree construction entirely and run a flat
    bind → WHERE → project loop.  Only eligible shapes whose per-row
    pipeline is exactly that sequence — optionally followed by DISTINCT
    and/or aggregation, which reuse the operator layer's ``_freeze`` and
    ``_project_grouped`` verbatim — are built (no ORDER BY, ``RETURN *``,
    OPTIONAL or multi-part patterns), so output — including error order —
    matches the operator tree row for row.
    """

    elements: list
    anchor: AnchorPlan
    filters: Optional[Filters]
    maintain_used: bool
    where_fn: Any
    item_fns: tuple
    keys: list[str]
    skip_expr: Optional[ast.Expr]
    limit_expr: Optional[ast.Expr]
    # Single-element specialization: the checks _bind_node would repeat per
    # candidate, pre-split so the hot loop only runs the ones the anchor's
    # access path doesn't already guarantee.
    variable: Optional[str] = None
    check_labels: tuple = ()
    prop_fns: tuple = ()
    var_filters: Any = None
    #: RETURN DISTINCT — dedup projected values exactly like ops.Distinct
    distinct: bool = False
    #: aggregated RETURN: (items, grouping_indices, grouping_fns) for
    #: ops._project_grouped; None for plain projections
    aggregate: Optional[tuple] = None
    #: ungrouped single-aggregate specialization: (name, arg_fn, distinct)
    #: with arg_fn None for count(*) — streams straight into call_aggregate
    simple_aggregate: Optional[tuple] = None
    #: hops may traverse the CSR snapshot (planner's PartPlan.use_csr)
    use_csr: bool = False
    #: lazily-built ops.CSRChain, reused while the snapshot stays live
    csr_chain: Any = None


class CypherEngine:
    """Executes Cypher text against one :class:`GraphStore`.

    The engine caches parsed ASTs and their match plans keyed by query
    text (bounded LRUs), so repeated execution of generated queries (the
    RAG hot path) skips both the parser and the planner.  ``planner=False``
    disables cost-based planning entirely — the escape hatch used to
    verify planned execution is semantics-preserving.
    """

    def __init__(
        self,
        store: GraphStore,
        max_var_length: int = 32,
        planner: bool = True,
        cache_size: int = 1024,
        row_budget: Optional[int] = None,
        compile_expressions: bool = True,
        csr_snapshot: bool = True,
    ) -> None:
        self.store = store
        self.max_var_length = max_var_length
        self.planner = planner
        #: default intermediate-row budget for every execution (None = off)
        self.row_budget = row_budget
        #: expression compiler shared across executions (None = interpret)
        self.compiler = ExpressionCompiler() if compile_expressions else None
        #: traverse read-only queries over the store's CSR snapshot
        self.csr = csr_snapshot
        self._fastpath_hits = 0
        self._fused_operators = 0
        self._csr_expand_operators = 0
        self._csr_part_scans = 0
        self._ast_cache: _LRUCache = _LRUCache(cache_size)
        self._plan_cache: _LRUCache = _LRUCache(cache_size)
        # id(clause) -> (clause, items, keys, aggregated, grouping_indices);
        # holding the clause reference keeps its id stable for the cache key
        self._projection_meta: dict[int, tuple] = {}

    def compile_metrics(self) -> dict[str, int]:
        """Expression-compilation counters for the metrics registry."""
        metrics = (
            self.compiler.metrics()
            if self.compiler is not None
            else {"compile.compiled": 0, "compile.cache_hits": 0, "compile.fallbacks": 0}
        )
        metrics["compile.fastpath_hits"] = self._fastpath_hits
        metrics["compile.fused_operators"] = self._fused_operators
        return metrics

    def csr_metrics(self) -> dict[str, int]:
        """CSR snapshot counters (store build/hit/invalidation + engine use)."""
        metrics = self.store.csr_metrics()
        metrics["csr.expand_operators"] = self._csr_expand_operators
        metrics["csr.part_scans"] = self._csr_part_scans
        return metrics

    def run(self, query: str, **params: Any) -> ResultSet:
        """Parse and plan (both cached) then execute ``query``."""
        return self.execute(query, params)

    def execute(
        self,
        query: str,
        params: dict[str, Any] | None = None,
        *,
        deadline: Any = None,
        row_budget: Optional[int] = None,
        profile: bool = False,
    ) -> ResultSet:
        """Execute ``query`` with the full runtime surface.

        ``deadline`` is an expiring-clock object with an ``expired``
        property (the serving layer's ``Deadline``), checked cooperatively
        between operator ``next()`` calls; an overrun raises
        :class:`~repro.cypher.errors.CypherDeadlineExceeded`.
        ``row_budget`` bounds total intermediate rows across all operators
        (falling back to the engine default), raising
        :class:`~repro.cypher.errors.ResourceExhausted` beyond it.  With
        ``profile=True`` the result carries the executed operator tree
        (rows + wall-time per operator) on ``result.profile``.
        """
        # Fault-injection site: latency spikes sleep here; injected engine
        # errors raise InjectedCypherError (a CypherRuntimeError), so they
        # travel the organic failure path through the symbolic retriever,
        # the error taxonomy and the circuit breaker.
        fault_point("graph.execute")
        tree = self._ast_cache.get(query)
        if tree is None:
            tree = parse(query)
            self._ast_cache[query] = tree
        entry = self._entry_for(query, tree)
        plans = entry.plans if entry is not None else None
        budget = row_budget if row_budget is not None else self.row_budget
        if (
            entry is not None
            and self.compiler is not None
            and not profile
            and deadline is None
            and budget is None
        ):
            # Fully-anchored point lookups skip operator-tree construction
            # entirely; the shape check is cached on the plan entry.
            if not entry.fastpath_ready:
                entry.fastpath = self._build_fastpath(tree, entry.plans)
                entry.fastpath_ready = True
            if entry.fastpath is not None:
                return self._run_fastpath(entry.fastpath, params or {})
        result, root = self._execute(
            tree,
            params or {},
            plans,
            deadline=deadline,
            row_budget=budget,
            profiled=profile,
        )
        if profile:
            result.profile = profile_tree(root)
        return result

    def run_ast(self, tree: ast.Query, params: dict[str, Any] | None = None) -> ResultSet:
        """Execute an already-parsed query (plans computed, not cached)."""
        plans = (
            plan_query(tree, self.store.statistics(), csr=self.csr)
            if self.planner
            else None
        )
        result, _ = self._execute(tree, params or {}, plans)
        return result

    def _plans_for(self, query: str, tree: ast.Query) -> Optional[dict[int, MatchPlan]]:
        """Cached match plans for ``query``, replanned when the graph changed."""
        entry = self._entry_for(query, tree)
        return entry.plans if entry is not None else None

    def _entry_for(self, query: str, tree: ast.Query) -> Optional[_PlanEntry]:
        """The cached plan entry for ``query``, replanned when the graph changed."""
        if not self.planner:
            return None
        version = self.store.stats_version
        entry: Optional[_PlanEntry] = self._plan_cache.get(query)
        if entry is None or entry.tree is not tree or entry.stats_version != version:
            entry = _PlanEntry(
                tree=tree,
                stats_version=version,
                plans=plan_query(tree, self.store.statistics(), csr=self.csr),
            )
            self._plan_cache[query] = entry
        return entry

    def _execute(
        self,
        tree: ast.Query,
        params: dict[str, Any],
        plans: Optional[dict[int, MatchPlan]],
        *,
        deadline: Any = None,
        row_budget: Optional[int] = None,
        profiled: bool = False,
    ) -> tuple[ResultSet, ops.PhysicalOperator]:
        """Lower ``tree`` into a physical operator tree and drain it.

        Returns the result plus the executed tree root (its counters feed
        ``PROFILE`` rendering and the ``cypher_profile`` diagnostics).
        """
        context = _ExecutionContext(
            self.store, params, self.max_var_length, plans, self._projection_meta,
            self.compiler, csr=self.csr and not _tree_has_writes(tree),
        )
        state = RuntimeState(deadline=deadline, budget=row_budget, profiled=profiled)
        state.check_deadline()
        root = self._lower_query(tree, context, state)
        root.open()
        try:
            rows: list[list[Any]] = []
            while (values := root.next()) is not None:
                rows.append(values)
            keys = root.keys or []
        finally:
            root.close()
        # Adopt-without-copy: each values list is single-owner and the keys
        # list is shared read-only across every record of the result.
        records = [Record.of(keys, values) for values in rows]
        return ResultSet(keys, records, **context.counters()), root

    def profile(self, query: str, **params: Any) -> tuple[ResultSet, str]:
        """Execute ``query`` and report the physical operator tree.

        Returns the normal result plus a text rendering of the executed
        tree: one line per operator with its planner cardinality estimate
        (when planned), the rows it actually produced, and its inclusive
        wall-clock time — so both cardinality misestimates and hot
        operators are visible at a glance.
        """
        tree = self._ast_cache.get(query)
        if tree is None:
            tree = parse(query)
            self._ast_cache[query] = tree
        plans = self._plans_for(query, tree)
        result, root = self._execute(tree, params or {}, plans, profiled=True)
        result.profile = profile_tree(root)
        return result, render_profile(root)

    def explain(self, query: str) -> str:
        """Describe how ``query`` would execute (clause pipeline + plans).

        With the planner on, each MATCH pattern part shows the chosen
        anchor, its access path (index lookup, label scan, ...), the
        estimated row count and the expansion direction, plus any WHERE
        predicates pushed down to bind time.
        """
        tree = parse(query)
        plans = (
            plan_query(tree, self.store.statistics(), csr=self.csr)
            if self.planner
            else None
        )
        queries = tree.queries if isinstance(tree, ast.UnionQuery) else (tree,)
        lines = []
        for qindex, single in enumerate(queries):
            if len(queries) > 1:
                lines.append(f"UNION branch {qindex + 1}:")
            pending_filter = False
            for clause in single.clauses:
                clause_lines = self._explain_clause(clause, plans)
                if (
                    pending_filter
                    and isinstance(clause, ast.ProjectionClause)
                    and not clause.star
                    and not any(_contains_aggregate(i.expression) for i in clause.items)
                ):
                    # The compiled WHERE filter and this projection execute
                    # as one FusedFilterProject operator.
                    clause_lines[-1] += " [fused]"
                pending_filter = (
                    self.compiler is not None
                    and isinstance(clause, ast.MatchClause)
                    and not clause.optional
                    and clause.where is not None
                )
                lines.extend(clause_lines)
        return "\n".join(lines)

    def _explain_clause(
        self, clause: ast.Clause, plans: Optional[dict[int, MatchPlan]] = None
    ) -> list[str]:
        name = type(clause).__name__.replace("Clause", "")
        if isinstance(clause, ast.MatchClause):
            prefix = "OptionalMatch" if clause.optional else "Match"
            plan = plans.get(id(clause)) if plans is not None else None
            lines = []
            for index, part in enumerate(clause.pattern.parts):
                part_plan = plan.parts[index] if plan is not None else None
                lines.append(f"{prefix} {self._explain_part(part, part_plan)}")
            if plan is not None and plan.filters:
                for variable in sorted(plan.filters):
                    for filt in plan.filters[variable]:
                        if filt.kind == "eq":
                            op = "="
                        elif filt.kind == "in":
                            op = "IN"
                        elif filt.kind == "range":
                            op = filt.ops[0]
                        else:
                            op = "STARTS WITH"
                        lines.append(f"  Pushdown {variable}.{filt.key} {op} ...")
            if clause.where is not None:
                marker = " [compiled]" if self.compiler is not None else ""
                lines.append(f"  Filter (WHERE){marker}")
            return lines
        if isinstance(clause, ast.ProjectionClause):
            detail = []
            if clause.distinct:
                detail.append("distinct")
            if any(_contains_aggregate(i.expression) for i in clause.items):
                detail.append("aggregate+group")
            if clause.order_by:
                detail.append(f"sort({len(clause.order_by)} keys)")
            if clause.skip is not None:
                detail.append("skip")
            if clause.limit is not None:
                detail.append("limit")
            suffix = f" [{', '.join(detail)}]" if detail else ""
            return [f"{name} {len(clause.items)} items{suffix}"]
        return [name]

    def _explain_part(self, part: ast.PatternPart, plan: Optional[PartPlan] = None) -> str:
        nodes = part.nodes
        if part.shortest is not None:
            kind = "shortestPath" if part.shortest == "single" else "allShortestPaths"
            return f"{kind} BFS between {self._node_text(nodes[0])} and {self._node_text(nodes[-1])}"
        first, last = nodes[0], nodes[-1]
        if plan is not None:
            anchor_node = last if plan.reverse else first
            csr = " [csr]" if plan.use_csr and part.hop_count else ""
            return (
                f"pattern({len(nodes)} nodes, {part.hop_count} hops) "
                f"anchor={self._node_text(anchor_node)} via {plan.anchor.describe()} "
                f"est≈{plan.anchor.est_rows:.0f}, expand {plan.direction} "
                f"est≈{plan.est_rows:.0f} rows{csr}"
            )
        empty_row: Row = {}
        reverse = len(part.elements) > 1 and (
            _node_selectivity(last, empty_row) > _node_selectivity(first, empty_row)
        )
        anchor = last if reverse else first
        direction = "right-to-left" if reverse else "left-to-right"
        access = "AllNodesScan"
        if anchor.labels and anchor.properties:
            key = anchor.properties[0][0]
            access = f"PropertyLookup(:{anchor.labels[0]}.{key})"
        elif anchor.labels:
            access = f"LabelScan(:{anchor.labels[0]})"
        hops = part.hop_count
        return (
            f"pattern({len(nodes)} nodes, {hops} hops) anchor={self._node_text(anchor)} "
            f"via {access}, expand {direction}"
        )

    @staticmethod
    def _node_text(node: ast.NodePattern) -> str:
        label = f":{node.labels[0]}" if node.labels else ""
        variable = node.variable or ""
        return f"({variable}{label})"

    # ------------------------------------------------------------------

    # -- Lowering: AST + plans -> physical operator tree -----------------

    def _lower_query(
        self, tree: ast.Query, context: "_ExecutionContext", state: RuntimeState
    ) -> ops.PhysicalOperator:
        if isinstance(tree, ast.UnionQuery):
            branches = [
                self._lower_single(query, context, state) for query in tree.queries
            ]
            return ops.UnionAppend(state, branches, tree.union_all)
        return self._lower_single(tree, context, state)

    def _lower_single(
        self, tree: ast.SingleQuery, context: "_ExecutionContext", state: RuntimeState
    ) -> ops.ProduceResults:
        fused = self._lower_index_ordered(tree, context, state)
        if fused is not None:
            return fused
        op: ops.PhysicalOperator = ops.Init(state)
        clauses = tree.clauses
        for index, clause in enumerate(clauses):
            if isinstance(clause, ast.MatchClause):
                op = self._lower_match(op, clause, context, state)
            elif isinstance(clause, ast.UnwindClause):
                op = ops.Unwind(state, op, context, clause)
            elif isinstance(clause, ast.WithClause):
                op, projection = self._lower_projection(op, clause, context, state)
                op = ops.AsRows(state, op, projection)
                if clause.where is not None:
                    op = ops.Filter(state, op, context, clause.where, pairs_in=False)
            elif isinstance(clause, ast.ReturnClause):
                if index != len(clauses) - 1:
                    raise CypherSyntaxError("RETURN must be the final clause")
                op, projection = self._lower_projection(op, clause, context, state)
                return ops.ProduceResults(state, op, projection)
            elif isinstance(clause, ast.CreateClause):
                op = ops.Create(state, op, context, clause)
            elif isinstance(clause, ast.MergeClause):
                op = ops.Merge(state, op, context, clause)
            elif isinstance(clause, ast.SetClause):
                op = ops.SetProperties(state, op, context, clause)
            elif isinstance(clause, ast.DeleteClause):
                op = ops.Delete(state, op, context, clause)
            elif isinstance(clause, ast.RemoveClause):
                op = ops.Remove(state, op, context, clause)
            else:  # pragma: no cover - parser cannot produce others
                raise CypherRuntimeError(f"unsupported clause {clause!r}")
        return ops.ProduceResults(state, op, None)

    def _lower_match(
        self,
        child: ops.PhysicalOperator,
        clause: ast.MatchClause,
        context: "_ExecutionContext",
        state: RuntimeState,
    ) -> ops.PhysicalOperator:
        plan = context.plans.get(id(clause)) if context.plans is not None else None
        if not clause.optional:
            op = self._lower_parts(child, clause.pattern, plan, context, state)
            if clause.where is not None:
                op = ops.Filter(state, op, context, clause.where, pairs_in=False)
            return op
        # OPTIONAL MATCH: the pattern (and its WHERE) runs as a sub-pipeline
        # re-opened once per upstream row, padding with nulls on no match.
        source = ops.RowSource(state)
        sub = self._lower_parts(source, clause.pattern, plan, context, state)
        if clause.where is not None:
            sub = ops.Filter(state, sub, context, clause.where, pairs_in=False)
        return ops.OptionalMatch(
            state, child, sub, source, _pattern_variables(clause.pattern)
        )

    def _lower_parts(
        self,
        child: ops.PhysicalOperator,
        pattern: ast.Pattern,
        plan: Optional[MatchPlan],
        context: "_ExecutionContext",
        state: RuntimeState,
    ) -> ops.PhysicalOperator:
        """Chain the pattern's parts: each consumes the previous part's
        ``(row, used)`` pairs (cartesian product with relationship
        uniqueness threaded through); the last part emits plain rows."""
        parts = pattern.parts
        multi = len(parts) > 1
        op = child
        for index, part in enumerate(parts):
            from_rows = index == 0
            emit_row = index == len(parts) - 1
            part_plan = plan.parts[index] if plan is not None else None
            filters = plan.filters if plan is not None else None
            if part.shortest is not None:
                kind = "shortestPath" if part.shortest == "single" else "allShortestPaths"
                op = ops.ShortestPath(
                    state, op, context, part, filters,
                    from_rows=from_rows, emit_row=emit_row, detail=kind,
                )
            elif part_plan is None:
                # Unplanned: traversal direction is a per-row decision, so
                # defer to the heuristic row-at-a-time matcher.
                op = ops.PartMatch(
                    state, op, context, part,
                    from_rows=from_rows, update_used=multi, emit_row=emit_row,
                    detail=f"{len(part.nodes)} nodes, {part.hop_count} hops",
                )
            else:
                op = self._lower_planned_part(
                    op, part, part_plan, filters, context, state,
                    from_rows=from_rows, emit_row=emit_row, update_used=multi,
                )
        return op

    def _lower_planned_part(
        self,
        child: ops.PhysicalOperator,
        part: ast.PatternPart,
        part_plan: PartPlan,
        filters: Optional[Filters],
        context: "_ExecutionContext",
        state: RuntimeState,
        *,
        from_rows: bool,
        emit_row: bool,
        update_used: bool,
    ) -> ops.PhysicalOperator:
        """One planned pattern part as an ``AnchorScan → Expand* → Match`` chain.

        When the planner marked the part CSR-eligible and a fresh snapshot
        is available, hops traverse the snapshot's adjacency arrays.  Two
        shapes exist: unobserved executions (no PROFILE, deadline or row
        budget watching individual operators) fuse the whole part — anchor,
        every hop, emit — into one :class:`~repro.cypher.operators.CSRPartScan`,
        eliminating per-hop operator dispatch; observed executions keep the
        per-hop chain with ``[csr]``-marked Expand operators so PROFILE
        still shows one line per hop.  Both produce rows in exactly the
        order of the dict-adjacency chain.
        """
        elements = list(part.elements)
        if part_plan.reverse:
            elements = _reverse_elements(elements)
        first = elements[0]
        assert isinstance(first, ast.NodePattern)
        anchor = part_plan.anchor
        track_path = part.path_variable is not None
        maintain_used = update_used or part_plan.needs_used
        snapshot = context.csr_snapshot() if part_plan.use_csr else None
        if snapshot is not None and len(elements) > 1:
            if not state.profiled and state.budget is None and state.deadline is None:
                scan = ops.CSRPartScan(
                    state, child, context, part, part_plan, elements, filters,
                    snapshot, from_rows=from_rows, emit_row=emit_row,
                    maintain_used=maintain_used,
                    detail=f"{len(part.nodes)} nodes, {part.hop_count} hops",
                )
                scan.estimate = part_plan.est_rows
                self._csr_part_scans += 1
                return scan
        name, detail = anchor.physical_operator()
        op: ops.PhysicalOperator = ops.AnchorScan(
            state, child, context, first, anchor, filters,
            track_path, from_rows, name, detail,
        )
        op.estimate = anchor.est_rows
        for index in range(1, len(elements), 2):
            rel_pattern = elements[index]
            node_pattern = elements[index + 1]
            assert isinstance(rel_pattern, ast.RelPattern)
            assert isinstance(node_pattern, ast.NodePattern)
            types = "|".join(rel_pattern.types) if rel_pattern.types else ""
            arrow = {"out": "->", "in": "<-", "both": "--"}[rel_pattern.direction]
            hop_detail = f"[:{types}]{arrow}" if types else arrow
            if snapshot is not None:
                # Planner eligibility (use_csr) already guarantees every hop
                # binds no rel variable and checks no rel properties.
                expand_cls = (
                    ops.CSRVarLengthExpand
                    if rel_pattern.var_length
                    else ops.CSRExpand
                )
                op = expand_cls(
                    state, op, context, rel_pattern, node_pattern, filters,
                    maintain_used, snapshot, detail=hop_detail,
                )
                self._csr_expand_operators += 1
            else:
                expand_cls = (
                    ops.VarLengthExpand if rel_pattern.var_length else ops.Expand
                )
                op = expand_cls(
                    state, op, context, rel_pattern, node_pattern, filters,
                    maintain_used, detail=hop_detail,
                )
        emit = ops.PartEmit(
            state, op, part, part_plan.reverse, emit_row,
            detail=f"{len(part.nodes)} nodes, {part.hop_count} hops",
        )
        emit.estimate = part_plan.est_rows
        return emit

    def _lower_projection(
        self,
        child: ops.PhysicalOperator,
        clause: ast.ProjectionClause,
        context: "_ExecutionContext",
        state: RuntimeState,
    ) -> tuple[ops.PhysicalOperator, ops.PhysicalOperator]:
        """Lower WITH/RETURN into project → distinct → sort → skip → limit.

        Returns the pipeline top plus the projection operator itself —
        downstream operators (Sort, AsRows, ProduceResults) read its
        items/keys lazily, since ``RETURN *`` only resolves its scope when
        the projection opens.
        """
        aggregated_items = any(
            _contains_aggregate(item.expression) for item in clause.items
        )
        projection: ops.PhysicalOperator
        if clause.star:
            if aggregated_items:
                projection = ops.Aggregate(state, child, context, clause, meta=None)
            else:
                projection = ops.StarProject(state, child, context, clause)
        else:
            # Projection metadata only depends on the clause, not the rows;
            # cache it per clause so repeated runs of a cached AST skip the
            # re-derivation (``RETURN *`` is row-scoped and never cached).
            meta = context._projection_meta.get(id(clause))
            if meta is None:
                items, keys, aggregated, grouping = ops.derive_projection(clause, [])
                if len(context._projection_meta) > 4096:
                    context._projection_meta.clear()
                context._projection_meta[id(clause)] = (
                    clause, items, keys, aggregated, grouping,
                )
            else:
                _, items, keys, aggregated, grouping = meta
            if aggregated:
                projection = ops.Aggregate(
                    state, child, context, clause,
                    meta=(items, keys, aggregated, grouping),
                )
            else:
                # Fuse an adjacent chain of compiled Filters into the
                # projection: one callable per row instead of one operator
                # wrapper (budget charge, deadline stride, timer) apiece.
                fused_child = child
                predicate_fns: list = []
                while (
                    isinstance(fused_child, ops.Filter)
                    and fused_child.predicate_fn is not None
                    and not fused_child.pairs_in
                ):
                    predicate_fns.append(fused_child.predicate_fn)
                    fused_child = fused_child.children[0]
                if predicate_fns:
                    predicate_fns.reverse()  # innermost filter evaluates first
                    item_fns = tuple(context.compile(item.expression) for item in items)
                    projection = ops.FusedFilterProject(
                        state, fused_child, context, items, keys,
                        tuple(predicate_fns), item_fns,
                    )
                    self._fused_operators += 1
                else:
                    projection = ops.Project(state, child, context, items, keys)
        op: ops.PhysicalOperator = projection
        if clause.distinct:
            op = ops.Distinct(state, (op,))
        start = 0
        if clause.skip is not None:
            start = context._bounded_int(clause.skip, "SKIP")
        end: Optional[int] = None
        if clause.limit is not None:
            end = start + context._bounded_int(clause.limit, "LIMIT")
        if clause.order_by:
            op = ops.Sort(state, op, context, clause.order_by, projection, top=end)
        if start:
            op = ops.Skip(state, op, start)
        if end is not None:
            op = ops.Limit(state, op, end - start)
        return op, projection

    def _lower_index_ordered(
        self, tree: ast.SingleQuery, context: "_ExecutionContext", state: RuntimeState
    ) -> Optional[ops.ProduceResults]:
        """Fused top-k pipeline for ``MATCH (n:L) ... RETURN ... ORDER BY n.key LIMIT k``.

        When a single-node MATCH feeds straight into an ordered, limited
        RETURN and a sorted index covers the ORDER BY key, rows stream in
        index order through an :class:`~repro.cypher.operators.IndexOrderedScan`
        that stops as soon as the top ``SKIP + LIMIT`` rows (plus their
        whole tie group on the primary key, which the canonical tie-break
        may still reorder) are out — skipping both the full label scan and
        the full sort.  The scanned prefix then flows through the ordinary
        projection pipeline, so output is row-for-row identical to the
        unfused plan.
        """
        if context.plans is None or len(tree.clauses) != 2:
            return None
        match, ret = tree.clauses
        if not isinstance(match, ast.MatchClause) or not isinstance(ret, ast.ReturnClause):
            return None
        if match.optional or len(match.pattern.parts) != 1:
            return None
        part = match.pattern.parts[0]
        if part.shortest is not None or part.path_variable is not None:
            return None
        if len(part.elements) != 1:
            return None
        node_pattern = part.elements[0]
        assert isinstance(node_pattern, ast.NodePattern)
        variable = node_pattern.variable
        if variable is None:
            return None
        if ret.star or ret.distinct or ret.limit is None or len(ret.order_by) != 1:
            return None
        order_item = ret.order_by[0]
        order_expr = order_item.expression
        if not (
            isinstance(order_expr, ast.PropertyAccess)
            and isinstance(order_expr.subject, ast.Variable)
            and order_expr.subject.name == variable
        ):
            return None
        if any(_contains_aggregate(item.expression) for item in ret.items):
            return None
        plan = context.plans.get(id(match))
        if plan is None:
            return None
        anchor = plan.parts[0].anchor
        descending = order_item.descending
        if anchor.kind == "label":
            stream = self.store.nodes_in_order(
                anchor.label, order_expr.key, descending
            )
            if stream is None:
                return None
        elif anchor.kind in ("range", "prefix") and anchor.key == order_expr.key:
            # Range/prefix scans already stream in key order (ascending);
            # nodes with a null/unorderable key can never pass the pushed
            # conjunct the anchor came from, so there is no null band.
            stream = self._anchor_stream(node_pattern, anchor, context)
            if stream is None:
                return None
            if descending:
                materialised = list(stream)
                materialised.reverse()
                stream = iter(materialised)
        else:
            return None

        needed = self._fused_row_budget(ret, context)
        direction = " DESC" if descending else ""
        scan = ops.IndexOrderedScan(
            state, context, stream, node_pattern, plan.filters, match.where,
            order_expr, descending, needed,
            detail=f"{anchor.describe()} ORDER BY {variable}.{order_expr.key}{direction}",
        )
        scan.estimate = plan.parts[0].est_rows
        op, projection = self._lower_projection(scan, ret, context, state)
        return ops.ProduceResults(state, op, projection)

    def _anchor_stream(
        self,
        node_pattern: ast.NodePattern,
        anchor: AnchorPlan,
        context: "_ExecutionContext",
    ) -> Optional[Iterator[Node]]:
        """The range/prefix anchor's key-ordered node stream (None = no index)."""
        if anchor.kind == "range":
            bounds = context._range_bounds(anchor, {})
            if bounds is None:
                return None
            return self.store.nodes_in_range(anchor.label, anchor.key, **bounds)
        prefix = context.evaluator.evaluate(anchor.values[0], {})
        if not isinstance(prefix, str):
            return None
        return self.store.nodes_by_prefix(anchor.label, anchor.key, prefix)

    @staticmethod
    def _fused_row_budget(ret: ast.ReturnClause, context: "_ExecutionContext") -> int:
        """SKIP + LIMIT row count the fused scan must fully tie-resolve."""
        needed = context._bounded_int(ret.limit, "LIMIT")
        if ret.skip is not None:
            needed += context._bounded_int(ret.skip, "SKIP")
        return needed

    # -- point-lookup fast path -------------------------------------------

    def _build_fastpath(
        self, tree: ast.Query, plans: dict[int, MatchPlan]
    ) -> Optional[_FastPath]:
        """Compile an eligible ``MATCH ... RETURN ...`` into a :class:`_FastPath`.

        Returns None whenever any part of the query needs operator
        machinery beyond a flat bind → WHERE → project loop.
        """
        if not isinstance(tree, ast.SingleQuery) or len(tree.clauses) != 2:
            return None
        match, ret = tree.clauses
        if not isinstance(match, ast.MatchClause) or not isinstance(ret, ast.ReturnClause):
            return None
        if match.optional or len(match.pattern.parts) != 1:
            return None
        part = match.pattern.parts[0]
        if part.shortest is not None or part.path_variable is not None:
            return None
        if ret.star or ret.order_by:
            return None
        meta = self._projection_meta.get(id(ret))
        if meta is None:
            items, keys, aggregated, grouping = ops.derive_projection(ret, [])
            if len(self._projection_meta) > 4096:
                self._projection_meta.clear()
            self._projection_meta[id(ret)] = (ret, items, keys, aggregated, grouping)
        else:
            _, items, keys, aggregated, grouping = meta
        plan = plans.get(id(match))
        if plan is None:
            return None
        part_plan = plan.parts[0]
        if part_plan.anchor.kind == "bound":
            return None
        elements = list(part.elements)
        if part_plan.reverse:
            elements = _reverse_elements(elements)
        compiler = self.compiler
        aggregate = None
        simple_aggregate = None
        if aggregated:
            # Mirror ops.Aggregate._open: grouping keys run compiled only
            # when every one of them compiles.
            fns = [compiler.compile(items[i].expression) for i in grouping]
            grouping_fns = tuple(fns) if grouping and all(f is not None for f in fns) else None
            aggregate = (items, grouping, grouping_fns)
            if not grouping and len(items) == 1:
                # One group, one aggregate: stream the compiled argument
                # straight into call_aggregate — same values, same dedup,
                # same reducer as evaluate_aggregate, minus the per-row
                # grouping machinery.
                expr = items[0].expression
                if isinstance(expr, ast.CountStar):
                    simple_aggregate = ("count", None, False)
                elif (
                    isinstance(expr, ast.FunctionCall)
                    and is_aggregate_function(expr.name)
                    and expr.name.lower() not in ("percentilecont", "percentiledisc")
                    and len(expr.args) == 1
                ):
                    arg_fn = compiler.compile(expr.args[0])
                    if arg_fn is not None:
                        simple_aggregate = (expr.name, arg_fn, expr.distinct)
        anchor = part_plan.anchor
        first = elements[0]
        variable = None
        check_labels: tuple = ()
        prop_fns: tuple = ()
        var_filters = None
        if len(elements) == 1:
            variable = first.variable
            # Every anchor access path except "all" yields nodes already
            # scoped to anchor.label; only the other labels need rechecking
            # per candidate.
            guaranteed = {anchor.label} if anchor.kind != "all" else set()
            check_labels = tuple(
                label for label in first.labels if label not in guaranteed
            )
            if first.properties:
                prop_fns = compiler.pattern_props(first)
            if plan.filters and variable is not None:
                var_filters = plan.filters.get(variable)
        return _FastPath(
            elements=elements,
            anchor=anchor,
            filters=plan.filters,
            maintain_used=part_plan.needs_used,
            where_fn=compiler.compile(match.where) if match.where is not None else None,
            item_fns=(
                ()
                if aggregated
                else tuple(compiler.compile(item.expression) for item in items)
            ),
            keys=keys,
            skip_expr=ret.skip,
            limit_expr=ret.limit,
            variable=variable,
            check_labels=check_labels,
            prop_fns=prop_fns,
            var_filters=var_filters,
            distinct=ret.distinct,
            aggregate=aggregate,
            simple_aggregate=simple_aggregate,
            use_csr=part_plan.use_csr and len(elements) > 1,
        )

    def _run_fastpath(self, fp: _FastPath, params: dict[str, Any]) -> ResultSet:
        """Run a compiled :class:`_FastPath`: flat bind → WHERE → project.

        Mirrors the operator pipeline's evaluation order exactly: SKIP and
        LIMIT evaluate before any matching (as the lowering does), the
        projection still runs for skipped rows (the ``Skip`` operator
        discards post-projection entries), and ``LIMIT 0`` pulls nothing
        upstream.
        """
        ctx = _ExecutionContext(
            self.store, params, self.max_var_length, None, self._projection_meta,
            self.compiler, csr=self.csr,
        )
        skip = ctx._bounded_int(fp.skip_expr, "SKIP") if fp.skip_expr is not None else 0
        limit = (
            ctx._bounded_int(fp.limit_expr, "LIMIT")
            if fp.limit_expr is not None
            else None
        )
        self._fastpath_hits += 1
        keys = fp.keys
        if limit == 0:
            return ResultSet(keys, [], **ctx.counters())
        needed = None if limit is None else skip + limit
        if fp.distinct or fp.aggregate is not None:
            return self._run_fastpath_grouped(fp, ctx, keys, skip, needed)
        where_fn = fp.where_fn
        item_fns = fp.item_fns
        first = fp.elements[0]
        values_rows: list[list[Any]] = []
        empty: Row = {}
        if len(fp.elements) == 1:
            # Inlined _bind_node: the anchor access path already guarantees
            # its own label, and pattern properties only see params here (the
            # row is empty), so their values are evaluated once — lazily, on
            # the first candidate, so an empty access path raises exactly
            # where the generic path would (never).
            var = fp.variable
            check_labels = fp.check_labels
            prop_fns = fp.prop_fns
            var_filters = fp.var_filters
            wanted: Optional[list] = None
            for node in ctx._node_candidates(first, empty, fp.anchor):
                if check_labels:
                    matched = True
                    for label in check_labels:
                        if label not in node.labels:
                            matched = False
                            break
                    if not matched:
                        continue
                if prop_fns:
                    if wanted is None:
                        wanted = [(key, fn(ctx, empty)) for key, fn in prop_fns]
                    properties = node.properties
                    matched = True
                    for key, want in wanted:
                        if cypher_equals(properties.get(key), want) is not True:
                            matched = False
                            break
                    if not matched:
                        continue
                if var_filters is not None and not ctx._passes_filters(
                    node.properties, var_filters
                ):
                    continue
                row = {var: node} if var is not None else empty
                if where_fn is not None and is_truthy(where_fn(ctx, row)) is not True:
                    continue
                values_rows.append([fn(ctx, row) for fn in item_fns])
                if needed is not None and len(values_rows) >= needed:
                    break
        elif (chain := self._fastpath_chain(fp, ctx)) is not None:
            ordinal_of = chain.ordinal_of
            done = False
            for start in ctx._node_candidates(first, empty, fp.anchor):
                start_row = ctx._bind_node(first, start, empty, fp.filters)
                if start_row is None:
                    continue
                ordinal = ordinal_of.get(start.node_id)
                if ordinal is None:  # pragma: no cover - fresh snapshot covers all ids
                    continue
                for row in chain.descend(0, start_row, frozenset(), ordinal, True):
                    if where_fn is not None and is_truthy(where_fn(ctx, row)) is not True:
                        continue
                    values_rows.append([fn(ctx, row) for fn in item_fns])
                    if needed is not None and len(values_rows) >= needed:
                        done = True
                        break
                if done:
                    break
        else:
            buffer: list = []
            done = False
            for start in ctx._node_candidates(first, empty, fp.anchor):
                start_row = ctx._bind_node(first, start, empty, fp.filters)
                if start_row is None:
                    continue
                buffer.clear()
                ctx._match_chain(
                    fp.elements, 1, start_row, frozenset(), start, None, None,
                    fp.filters, fp.maintain_used, buffer,
                )
                for row, _used in buffer:
                    if where_fn is not None and is_truthy(where_fn(ctx, row)) is not True:
                        continue
                    values_rows.append([fn(ctx, row) for fn in item_fns])
                    if needed is not None and len(values_rows) >= needed:
                        done = True
                        break
                if done:
                    break
        records = [Record.of(keys, values) for values in values_rows[skip:]]
        return ResultSet(keys, records, **ctx.counters())

    def _fastpath_chain(self, fp: _FastPath, ctx: "_ExecutionContext"):
        """The fast path's :class:`~repro.cypher.operators.CSRChain`, or None.

        None routes the caller to the dict-adjacency chain (CSR disabled,
        the part isn't CSR-eligible, or the snapshot failed to build).  A
        built chain is cached on the fast path while its snapshot stays
        live, but only reused as-is when every hop is a simple bind —
        hops that bind through the context (pattern properties, pushed
        filters) read this run's parameters, so those rebuild per run
        rather than mutate a chain another thread may be traversing.
        """
        if not fp.use_csr:
            return None
        snapshot = ctx.csr_snapshot()
        if snapshot is None:
            return None
        chain = fp.csr_chain
        if (
            chain is not None
            and chain.snapshot is snapshot
            and (chain.ctx is ctx or all(hop[4] for hop in chain.hops))
        ):
            return chain
        chain = ops.CSRChain(ctx, snapshot, fp.elements, fp.filters, fp.maintain_used)
        fp.csr_chain = chain
        return chain

    def _fastpath_match(self, fp: _FastPath, ctx: "_ExecutionContext") -> Iterator[Row]:
        """Matched (bind → WHERE) rows of the fast path's single part.

        The row source for the DISTINCT/aggregated tail: identical checks
        to the flat projection loops, yielding the bound rows instead of
        projecting them.
        """
        where_fn = fp.where_fn
        first = fp.elements[0]
        empty: Row = {}
        if len(fp.elements) == 1:
            var = fp.variable
            check_labels = fp.check_labels
            prop_fns = fp.prop_fns
            var_filters = fp.var_filters
            wanted: Optional[list] = None
            for node in ctx._node_candidates(first, empty, fp.anchor):
                if check_labels:
                    matched = True
                    for label in check_labels:
                        if label not in node.labels:
                            matched = False
                            break
                    if not matched:
                        continue
                if prop_fns:
                    if wanted is None:
                        wanted = [(key, fn(ctx, empty)) for key, fn in prop_fns]
                    properties = node.properties
                    matched = True
                    for key, want in wanted:
                        if cypher_equals(properties.get(key), want) is not True:
                            matched = False
                            break
                    if not matched:
                        continue
                if var_filters is not None and not ctx._passes_filters(
                    node.properties, var_filters
                ):
                    continue
                row = {var: node} if var is not None else empty
                if where_fn is not None and is_truthy(where_fn(ctx, row)) is not True:
                    continue
                yield row
            return
        chain = self._fastpath_chain(fp, ctx)
        if chain is not None:
            ordinal_of = chain.ordinal_of
            for start in ctx._node_candidates(first, empty, fp.anchor):
                start_row = ctx._bind_node(first, start, empty, fp.filters)
                if start_row is None:
                    continue
                ordinal = ordinal_of.get(start.node_id)
                if ordinal is None:  # pragma: no cover - fresh snapshot covers all ids
                    continue
                for row in chain.descend(0, start_row, frozenset(), ordinal, True):
                    if where_fn is not None and is_truthy(where_fn(ctx, row)) is not True:
                        continue
                    yield row
            return
        buffer: list = []
        for start in ctx._node_candidates(first, empty, fp.anchor):
            start_row = ctx._bind_node(first, start, empty, fp.filters)
            if start_row is None:
                continue
            buffer.clear()
            ctx._match_chain(
                fp.elements, 1, start_row, frozenset(), start, None, None,
                fp.filters, fp.maintain_used, buffer,
            )
            for row, _used in buffer:
                if where_fn is not None and is_truthy(where_fn(ctx, row)) is not True:
                    continue
                yield row

    def _run_fastpath_grouped(
        self,
        fp: _FastPath,
        ctx: "_ExecutionContext",
        keys: list[str],
        skip: int,
        needed: Optional[int],
    ) -> ResultSet:
        """DISTINCT / aggregated tail of the compiled fast path.

        Matching runs the same flat bind → WHERE loop; the projection tail
        reuses the operator layer's machinery verbatim — ``_freeze`` for
        DISTINCT identity, ``_project_grouped`` for grouping and aggregate
        evaluation — so output is row-identical to Distinct/Aggregate.
        """
        if fp.aggregate is None:
            # RETURN DISTINCT: streaming dedup with the Limit-driven early
            # exit counting distinct rows, exactly as Limit pulls through
            # Distinct in the operator pipeline.
            item_fns = fp.item_fns
            seen: set = set()
            values_rows: list[list[Any]] = []
            for row in self._fastpath_match(fp, ctx):
                values = [fn(ctx, row) for fn in item_fns]
                frozen = _freeze(values)
                if frozen in seen:
                    continue
                seen.add(frozen)
                values_rows.append(values)
                if needed is not None and len(values_rows) >= needed:
                    break
        elif fp.simple_aggregate is not None:
            name, arg_fn, agg_distinct = fp.simple_aggregate
            if arg_fn is None:
                # count(*): row count, mirroring evaluate_aggregate's
                # CountStar branch (len of the single group).
                total = 0
                for _row in self._fastpath_match(fp, ctx):
                    total += 1
                values_rows = [[total]]
            else:
                agg_values = [
                    arg_fn(ctx, row) for row in self._fastpath_match(fp, ctx)
                ]
                values_rows = [[call_aggregate(name, agg_values, distinct=agg_distinct)]]
            if needed is not None:
                values_rows = values_rows[:needed]
        else:
            items, grouping_indices, grouping_fns = fp.aggregate
            rows = list(self._fastpath_match(fp, ctx))
            produced = ops._project_grouped(
                ctx, rows, items, grouping_indices, grouping_fns
            )
            values_rows = [values for values, _group in produced]
            if fp.distinct:
                seen = set()
                deduped: list[list[Any]] = []
                for values in values_rows:
                    frozen = _freeze(values)
                    if frozen in seen:
                        continue
                    seen.add(frozen)
                    deduped.append(values)
                values_rows = deduped
            if needed is not None:
                values_rows = values_rows[:needed]
        records = [Record.of(keys, values) for values in values_rows[skip:]]
        return ResultSet(keys, records, **ctx.counters())


# ---------------------------------------------------------------------------
# Execution context: clause operators
# ---------------------------------------------------------------------------

class _ExecutionContext:
    """Holds the store, parameters, plans and write counters for one run."""

    def __init__(
        self,
        store: GraphStore,
        params: dict[str, Any],
        max_var_length: int,
        plans: Optional[dict[int, MatchPlan]] = None,
        projection_meta: Optional[dict[int, tuple]] = None,
        compiler: Optional[ExpressionCompiler] = None,
        csr: bool = False,
    ):
        self.store = store
        self.params = params
        self.max_var_length = max_var_length
        self.plans = plans
        self.compiler = compiler
        #: whether this (read-only) execution may traverse the CSR snapshot
        self.csr = csr
        self._csr_snapshot_ready = False
        self._csr_snapshot_cached: Any = None
        self.evaluator = _Evaluator(self)
        # id(part) -> whether the part needs used-relationship tracking
        self._part_unique: dict[int, bool] = {}
        # id(expr) -> value for pushed-filter expressions; those are
        # Literal/Parameter only, so their value is fixed per execution
        self._filter_values: dict[int, Any] = {}
        # engine-shared projection metadata cache (see CypherEngine)
        self._projection_meta = projection_meta if projection_meta is not None else {}
        self.nodes_created = 0
        self.relationships_created = 0
        self.properties_set = 0
        self.nodes_deleted = 0
        self.relationships_deleted = 0

    def compile(self, expr: Optional[ast.Expr]):
        """Compile ``expr`` to a closure (None when compilation is off)."""
        if self.compiler is None or expr is None:
            return None
        return self.compiler.compile(expr)

    def csr_snapshot(self):
        """The store's CSR snapshot, or None (disabled / build failed).

        Resolved at most once per execution: lowering may consult it for
        several pattern parts, and a failed build must not be retried
        per part.
        """
        if not self.csr:
            return None
        if not self._csr_snapshot_ready:
            self._csr_snapshot_cached = self.store.csr_snapshot()
            self._csr_snapshot_ready = True
        return self._csr_snapshot_cached

    def _filter_value(self, expr: ast.Expr) -> Any:
        """Memoised evaluation of a pushed filter's row-independent value."""
        cache = self._filter_values
        key = id(expr)
        if key in cache:
            return cache[key]
        value = self.evaluator.evaluate(expr, {})
        cache[key] = value
        return value

    def counters(self) -> dict[str, int]:
        return {
            "nodes_created": self.nodes_created,
            "relationships_created": self.relationships_created,
            "properties_set": self.properties_set,
            "nodes_deleted": self.nodes_deleted,
            "relationships_deleted": self.relationships_deleted,
        }

    # -- MATCH ----------------------------------------------------------
    # (Clause-level MATCH runs as physical operators — see the lowering in
    # CypherEngine; the part/chain matchers below are shared by those
    # operators, pattern-predicate evaluation and MERGE.)

    def match_pattern(
        self, pattern: ast.Pattern, row: Row, plan: Optional[MatchPlan] = None
    ) -> Iterable[Row]:
        """Match all parts of ``pattern`` (cartesian, rel-unique) from ``row``."""
        filters = plan.filters if plan is not None else None
        if len(pattern.parts) == 1:
            # Single-part fast path: no cross-part rel-uniqueness to enforce,
            # so the used-set only matters within the part itself.
            part_plan = plan.parts[0] if plan is not None else None
            return [
                matched
                for matched, _ in self._match_part(
                    pattern.parts[0], row, frozenset(), part_plan, filters,
                    update_used=False,
                )
            ]

        def match_parts(index: int, current: Row, used: frozenset[int]) -> Iterator[Row]:
            if index == len(pattern.parts):
                yield current
                return
            part_plan = plan.parts[index] if plan is not None else None
            for matched, used_after in self._match_part(
                pattern.parts[index], current, used, part_plan, filters
            ):
                yield from match_parts(index + 1, matched, used_after)

        return match_parts(0, row, frozenset())

    def _part_needs_used(self, part: ast.PatternPart) -> bool:
        """Whether matching ``part`` must maintain the used-relationship set.

        Cypher's relationship-uniqueness only bites when two hops could bind
        the same relationship: with a single hop, or hops whose declared
        type sets are pairwise disjoint, duplicates are impossible and the
        per-step frozenset unions can be skipped entirely.
        """
        cached = self._part_unique.get(id(part))
        if cached is not None:
            return cached
        rel_patterns = [
            element
            for element in part.elements
            if isinstance(element, ast.RelPattern)
        ]
        needs = True
        if len(rel_patterns) <= 1:
            needs = False
        elif all(rel.types for rel in rel_patterns):
            all_types = [t for rel in rel_patterns for t in rel.types]
            needs = len(all_types) != len(set(all_types))
        self._part_unique[id(part)] = needs
        return needs

    def _match_part(
        self,
        part: ast.PatternPart,
        row: Row,
        used: frozenset[int],
        plan: Optional[PartPlan] = None,
        filters: Optional[Filters] = None,
        update_used: bool = True,
    ) -> Iterable[tuple[Row, frozenset[int]]]:
        if part.shortest is not None:
            return self._match_shortest(part, row, used, filters)
        elements = list(part.elements)
        if plan is not None:
            reversed_part = plan.reverse
        else:
            reversed_part = len(elements) > 1 and self._should_reverse(elements, row)
        if reversed_part:
            elements = _reverse_elements(elements)

        first = elements[0]
        assert isinstance(first, ast.NodePattern)
        anchor = plan.anchor if plan is not None else None
        track_path = part.path_variable is not None
        if update_used:
            maintain_used = True
        elif plan is not None:
            maintain_used = plan.needs_used
        else:
            maintain_used = self._part_needs_used(part)
        chained: list[Any] = []
        for start in self._node_candidates(first, row, anchor):
            start_row = self._bind_node(first, start, row, filters)
            if start_row is None:
                continue
            self._match_chain(
                elements,
                1,
                start_row,
                used,
                start,
                [start] if track_path else None,
                [] if track_path else None,
                filters,
                maintain_used,
                chained,
            )
        if not track_path:
            return chained
        results: list[tuple[Row, frozenset[int]]] = []
        for final_row, used_after, nodes, rels in chained:
            path_nodes = list(reversed(nodes)) if reversed_part else nodes
            path_rels = list(reversed(rels)) if reversed_part else rels
            final_row = dict(final_row)
            final_row[part.path_variable] = Path(path_nodes, path_rels)
            results.append((final_row, used_after))
        return results

    def _match_shortest(
        self,
        part: ast.PatternPart,
        row: Row,
        used: frozenset[int],
        filters: Optional[Filters] = None,
    ) -> Iterator[tuple[Row, frozenset[int]]]:
        """Match ``shortestPath((a)-[...]-(b))`` via breadth-first search.

        Both endpoint patterns are resolved first (bound variables or
        indexed/label scans), then a BFS bounded by the relationship
        pattern's hop range finds one (``"single"``) or all (``"all"``)
        minimum-length paths.
        """
        start_pattern, rel_pattern, end_pattern = part.elements
        assert isinstance(start_pattern, ast.NodePattern)
        assert isinstance(rel_pattern, ast.RelPattern)
        assert isinstance(end_pattern, ast.NodePattern)
        if not rel_pattern.var_length and rel_pattern.min_hops is None:
            # A plain relationship inside shortestPath() means one hop.
            rel_pattern = ast.RelPattern(
                variable=rel_pattern.variable, types=rel_pattern.types,
                direction=rel_pattern.direction, properties=rel_pattern.properties,
                min_hops=1, max_hops=1, var_length=True,
            )
        for start in self._node_candidates(start_pattern, row):
            start_row = self._bind_node(start_pattern, start, row, filters)
            if start_row is None:
                continue
            for end in self._node_candidates(end_pattern, start_row):
                end_row = self._bind_node(end_pattern, end, start_row, filters)
                if end_row is None:
                    continue
                for nodes, rels in self._bfs_shortest(
                    start, end, rel_pattern, end_row, all_paths=(part.shortest == "all")
                ):
                    final = dict(end_row)
                    if rel_pattern.variable is not None:
                        final[rel_pattern.variable] = list(rels)
                    if part.path_variable is not None:
                        final[part.path_variable] = Path(nodes, rels)
                    yield final, used | {rel.rel_id for rel in rels}

    def _bfs_shortest(
        self,
        start: Node,
        end: Node,
        rel_pattern: ast.RelPattern,
        row: Row,
        all_paths: bool,
    ) -> list[tuple[list[Node], list[Relationship]]]:
        min_hops = rel_pattern.min_hops if rel_pattern.min_hops is not None else 1
        max_hops = rel_pattern.max_hops if rel_pattern.max_hops is not None else self.max_var_length
        if min_hops == 0 and start.node_id == end.node_id:
            return [([start], [])]
        if not rel_pattern.properties:
            # CSR precheck: a frontier BFS over the snapshot's arrays gives
            # the exact minimum depth (a minimal walk never repeats a vertex,
            # so edge-uniqueness cannot change it; the object-level BFS below
            # also never re-reaches a node below min_hops).  Unreachable or
            # out-of-range endpoints return [] without touching any
            # Relationship objects.
            snapshot = self.csr_snapshot()
            if snapshot is not None:
                start_ord = snapshot.ordinal_of.get(start.node_id)
                end_ord = snapshot.ordinal_of.get(end.node_id)
                if start_ord is not None and end_ord is not None:
                    levels = snapshot.bfs_levels(
                        start_ord, rel_pattern.direction,
                        rel_pattern.types or None, max_hops,
                    )
                    found_depth = int(levels[end_ord])
                    if found_depth < min_hops:  # includes -1 = unreachable
                        return []
        # Level-synchronous BFS keeping every parent edge at the found depth
        # so all shortest paths can be reconstructed.
        frontier: dict[int, list[tuple[list[Node], list[Relationship]]]] = {
            start.node_id: [([start], [])]
        }
        visited_depth = {start.node_id: 0}
        found: list[tuple[list[Node], list[Relationship]]] = []
        depth = 0
        while frontier and depth < max_hops and not found:
            depth += 1
            next_frontier: dict[int, list[tuple[list[Node], list[Relationship]]]] = {}
            for node_id, partials in frontier.items():
                node = self.store.node(node_id)
                for rel in self.store.adjacent_relationships(
                    node_id, rel_pattern.direction, rel_pattern.types or None
                ):
                    if rel_pattern.direction == "out" and rel.start_id != node_id:
                        continue
                    if rel_pattern.direction == "in" and rel.end_id != node_id:
                        continue
                    if not self._rel_properties_match(rel_pattern, rel, row):
                        continue
                    other_id = rel.other_end(node_id)
                    seen_at = visited_depth.get(other_id)
                    if seen_at is not None and seen_at < depth:
                        continue  # strictly shorter route exists
                    visited_depth.setdefault(other_id, depth)
                    other = self.store.node(other_id)
                    extensions = [
                        (nodes + [other], rels + [rel])
                        for nodes, rels in partials
                        if rel.rel_id not in {r.rel_id for r in rels}
                    ]
                    if not extensions:
                        continue
                    if other_id == end.node_id and depth >= min_hops:
                        found.extend(extensions)
                    else:
                        next_frontier.setdefault(other_id, []).extend(extensions)
            frontier = next_frontier
        if not found:
            return []
        if all_paths:
            return found
        return found[:1]

    def _match_chain(
        self,
        elements: list[Union[ast.NodePattern, ast.RelPattern]],
        index: int,
        row: Row,
        used: frozenset[int],
        current: Node,
        nodes: Optional[list[Node]],
        rels: Optional[list[Relationship]],
        filters: Optional[Filters],
        maintain_used: bool,
        out: list[Any],
    ) -> None:
        """Recursively match the rel/node chain, appending results to ``out``.

        Appends ``(row, used)`` tuples, or ``(row, used, nodes, rels)`` when
        path tracking is on (``nodes``/``rels`` non-None).  Building a list
        instead of yielding avoids a generator resumption per consumer level
        on the hot path.
        """
        if index >= len(elements):
            if nodes is None:
                out.append((row, used))
            else:
                out.append((row, used, nodes, rels))
            return
        rel_pattern = elements[index]
        node_pattern = elements[index + 1]
        assert isinstance(rel_pattern, ast.RelPattern)
        assert isinstance(node_pattern, ast.NodePattern)

        if rel_pattern.var_length:
            steps = self._expand_var_length(rel_pattern, current, row, used)
        else:
            steps = self._expand_single(rel_pattern, current, row, used)

        for step_rels, end_node in steps:
            if maintain_used:
                new_used = used | {rel.rel_id for rel in step_rels}
            else:
                new_used = used
            if rel_pattern.variable is not None:
                bound_value: Any = list(step_rels) if rel_pattern.var_length else step_rels[0]
                existing = row.get(rel_pattern.variable)
                if rel_pattern.variable in row:
                    if not _same_rel_binding(existing, bound_value):
                        continue
                    rel_row = row
                else:
                    if (
                        filters
                        and not rel_pattern.var_length
                        and not self._passes_filters(
                            step_rels[0].properties, filters.get(rel_pattern.variable)
                        )
                    ):
                        continue
                    rel_row = dict(row)
                    rel_row[rel_pattern.variable] = bound_value
            else:
                rel_row = row
            end_row = self._bind_node(node_pattern, end_node, rel_row, filters)
            if end_row is None:
                continue
            if nodes is None:
                next_nodes = None
                next_rels = None
            elif rel_pattern.var_length:
                # Include intermediate nodes so bound paths are complete.
                step_nodes = []
                cursor = current
                for rel in step_rels:
                    cursor = self.store.node(rel.other_end(cursor.node_id))
                    step_nodes.append(cursor)
                if not step_rels:
                    step_nodes = []
                next_nodes = nodes + step_nodes
                if not step_rels and end_node.node_id != current.node_id:
                    next_nodes = nodes + [end_node]
                next_rels = rels + list(step_rels)
            else:
                next_nodes = nodes + [end_node]
                next_rels = rels + list(step_rels)
            self._match_chain(
                elements,
                index + 2,
                end_row,
                new_used,
                end_node,
                next_nodes,
                next_rels,
                filters,
                maintain_used,
                out,
            )

    def _expand_single(
        self,
        rel_pattern: ast.RelPattern,
        current: Node,
        row: Row,
        used: frozenset[int],
    ) -> list[tuple[tuple[Relationship, ...], Node]]:
        direction = rel_pattern.direction
        types = rel_pattern.types or None
        node_id = current.node_id
        nodes = self.store._nodes
        check_props = bool(rel_pattern.properties)
        steps: list[tuple[tuple[Relationship, ...], Node]] = []
        # No direction re-check needed: the adjacency index is maintained per
        # direction, so an "out" query only ever returns rels starting here
        # (self-loops included on both sides).
        for rel in self.store.adjacent_relationships(node_id, direction, types):
            if rel.rel_id in used:
                continue
            if check_props and not self._rel_properties_match(rel_pattern, rel, row):
                continue
            other = rel.end_id if rel.start_id == node_id else rel.start_id
            steps.append(((rel,), nodes[other]))
        return steps

    def _expand_var_length(
        self,
        rel_pattern: ast.RelPattern,
        current: Node,
        row: Row,
        used: frozenset[int],
    ) -> Iterator[tuple[list[Relationship], Node]]:
        min_hops = rel_pattern.min_hops if rel_pattern.min_hops is not None else 1
        max_hops = rel_pattern.max_hops if rel_pattern.max_hops is not None else self.max_var_length
        if max_hops > self.max_var_length:
            max_hops = self.max_var_length
        if min_hops == 0:
            yield [], current

        def walk(
            node: Node, taken: list[Relationship], taken_ids: frozenset[int]
        ) -> Iterator[tuple[list[Relationship], Node]]:
            if len(taken) >= max_hops:
                return
            for rel in self.store.adjacent_relationships(
                node.node_id, rel_pattern.direction, rel_pattern.types or None
            ):
                if rel.rel_id in used or rel.rel_id in taken_ids:
                    continue
                if rel_pattern.direction == "out" and rel.start_id != node.node_id:
                    continue
                if rel_pattern.direction == "in" and rel.end_id != node.node_id:
                    continue
                if not self._rel_properties_match(rel_pattern, rel, row):
                    continue
                next_node = self.store.node(rel.other_end(node.node_id))
                extended = taken + [rel]
                if len(extended) >= min_hops:
                    yield extended, next_node
                yield from walk(next_node, extended, taken_ids | {rel.rel_id})

        yield from walk(current, [], frozenset())

    def _rel_properties_match(
        self, rel_pattern: ast.RelPattern, rel: Relationship, row: Row
    ) -> bool:
        if self.compiler is not None:
            for key, fn in self.compiler.pattern_props(rel_pattern):
                if cypher_equals(rel.properties.get(key), fn(self, row)) is not True:
                    return False
            return True
        for key, expr in rel_pattern.properties:
            wanted = self.evaluator.evaluate(expr, row)
            if cypher_equals(rel.properties.get(key), wanted) is not True:
                return False
        return True

    def _node_candidates(
        self,
        node_pattern: ast.NodePattern,
        row: Row,
        anchor: Optional["AnchorPlan"] = None,
    ) -> Iterator[Node]:
        """Candidate nodes for the anchor position of a pattern part.

        With a planned anchor, follows its access path; every candidate is
        still fully verified by :meth:`_bind_node`, so a stale or
        suboptimal plan can never change results.
        """
        if node_pattern.variable is not None and node_pattern.variable in row:
            bound = row[node_pattern.variable]
            if bound is None:
                return
            if not isinstance(bound, Node):
                raise CypherTypeError(
                    f"variable {node_pattern.variable!r} is not a node: {bound!r}"
                )
            yield bound
            return
        if anchor is not None and anchor.kind in ("property", "property-in"):
            seen: set[int] = set()
            for expr in anchor.values:
                value = self.evaluator.evaluate(expr, row)
                for node in self.store.nodes_by_property(anchor.label, anchor.key, value):
                    if node.node_id not in seen:
                        seen.add(node.node_id)
                        yield node
            return
        if anchor is not None and anchor.kind == "range":
            bounds = self._range_bounds(anchor, row)
            if bounds is None:
                # A null/odd bound can't bisect; the label scan plus the
                # residual WHERE still produces the right (empty) rows.
                yield from self.store.nodes_by_label(anchor.label)
            else:
                yield from self.store.nodes_in_range(anchor.label, anchor.key, **bounds)
            return
        if anchor is not None and anchor.kind == "prefix":
            prefix = self.evaluator.evaluate(anchor.values[0], row)
            if isinstance(prefix, str):
                yield from self.store.nodes_by_prefix(anchor.label, anchor.key, prefix)
            else:
                yield from self.store.nodes_by_label(anchor.label)
            return
        if anchor is not None and anchor.kind == "label":
            yield from self.store.nodes_by_label(anchor.label)
            return
        if anchor is not None and anchor.kind == "all":
            yield from self.store.all_nodes()
            return
        # Unplanned path: property-equality lookup when available, preferring
        # a (label, key) pair that actually has a property index.
        if node_pattern.labels and node_pattern.properties:
            key, expr = self._pick_lookup_property(node_pattern)
            value = self.evaluator.evaluate(expr, row)
            label = self._pick_lookup_label(node_pattern, key)
            yield from self.store.nodes_by_property(label, key, value)
            return
        if node_pattern.labels:
            yield from self.store.nodes_by_label(node_pattern.labels[0])
            return
        yield from self.store.all_nodes()

    def _range_bounds(
        self, anchor: "AnchorPlan", row: Row
    ) -> Optional[dict[str, Any]]:
        """Evaluate a range anchor's bounds into ``nodes_in_range`` kwargs.

        Returns None when any bound evaluates to null (no row can compare
        true against it, but the caller falls back to a verified label scan
        rather than reasoning about ternary logic here).
        """
        bounds: dict[str, Any] = {}
        for op, expr in zip(anchor.ops, anchor.values):
            value = self.evaluator.evaluate(expr, row)
            if value is None:
                return None
            if op in (">", ">="):
                bounds["lower"] = value
                bounds["include_lower"] = op == ">="
            else:
                bounds["upper"] = value
                bounds["include_upper"] = op == "<="
        return bounds

    def _pick_lookup_property(
        self, node_pattern: ast.NodePattern
    ) -> tuple[str, ast.Expr]:
        """The inline property to look up by: an indexed one when possible."""
        for key, expr in node_pattern.properties:
            for label in node_pattern.labels:
                if self.store.has_property_index(label, key):
                    return key, expr
        return node_pattern.properties[0]

    def _pick_lookup_label(self, node_pattern: ast.NodePattern, key: str) -> str:
        """The label to pair with ``key`` (the indexed one when possible)."""
        for label in node_pattern.labels:
            if self.store.has_property_index(label, key):
                return label
        return node_pattern.labels[0]

    def _bind_node(
        self,
        node_pattern: ast.NodePattern,
        node: Node,
        row: Row,
        filters: Optional[Filters] = None,
    ) -> Optional[Row]:
        """Check constraints of ``node_pattern`` against ``node``; bind if ok."""
        for label in node_pattern.labels:
            if label not in node.labels:
                return None
        if node_pattern.properties:
            if self.compiler is not None:
                for key, fn in self.compiler.pattern_props(node_pattern):
                    if cypher_equals(node.properties.get(key), fn(self, row)) is not True:
                        return None
            else:
                for key, expr in node_pattern.properties:
                    wanted = self.evaluator.evaluate(expr, row)
                    if cypher_equals(node.properties.get(key), wanted) is not True:
                        return None
        if (
            filters
            and node_pattern.variable is not None
            and not self._passes_filters(node.properties, filters.get(node_pattern.variable))
        ):
            return None
        if node_pattern.variable is None:
            return row
        if node_pattern.variable in row:
            bound = row[node_pattern.variable]
            if isinstance(bound, Node) and bound.node_id == node.node_id:
                return row
            return None
        new_row = dict(row)
        new_row[node_pattern.variable] = node
        return new_row

    def _passes_filters(
        self,
        properties: dict[str, Any],
        filters: Optional[tuple[PushedFilter, ...]],
    ) -> bool:
        """Apply pushed WHERE equality/IN filters to an entity's properties.

        Mirrors WHERE ternary logic: a row survives only when the pushed
        conjunct would evaluate to true.  ``IN $param`` with a non-list
        parameter is left for the residual WHERE to raise on.
        """
        if not filters:
            return True
        for filt in filters:
            actual = properties.get(filt.key)
            if filt.kind == "eq":
                wanted = self._filter_value(filt.values[0])
                if cypher_equals(actual, wanted) is not True:
                    return False
                continue
            if filt.kind == "range":
                for op, expr in zip(filt.ops, filt.values):
                    wanted = self._filter_value(expr)
                    comparison = cypher_compare(actual, wanted)
                    if comparison is None:
                        return False
                    if op == "<" and not comparison < 0:
                        return False
                    if op == "<=" and not comparison <= 0:
                        return False
                    if op == ">" and not comparison > 0:
                        return False
                    if op == ">=" and not comparison >= 0:
                        return False
                continue
            if filt.kind == "prefix":
                wanted = self._filter_value(filt.values[0])
                if not isinstance(actual, str) or not isinstance(wanted, str):
                    return False
                if not actual.startswith(wanted):
                    return False
                continue
            candidates = self._filter_candidates(filt)
            if candidates is None:
                continue
            if not any(cypher_equals(actual, value) is True for value in candidates):
                return False
        return True

    def _filter_candidates(self, filt: PushedFilter) -> Optional[list[Any]]:
        """Resolve an IN filter's candidate values (None = cannot filter)."""
        if len(filt.values) == 1 and isinstance(filt.values[0], ast.Parameter):
            value = self._filter_value(filt.values[0])
            return value if isinstance(value, list) else None
        return [self._filter_value(expr) for expr in filt.values]

    def _should_reverse(
        self, elements: list[Union[ast.NodePattern, ast.RelPattern]], row: Row
    ) -> bool:
        first = elements[0]
        last = elements[-1]
        assert isinstance(first, ast.NodePattern) and isinstance(last, ast.NodePattern)
        return _node_selectivity(last, row) > _node_selectivity(first, row)

    # -- WITH / RETURN ----------------------------------------------------
    # (Projection, DISTINCT, ORDER BY and SKIP/LIMIT run as physical
    # operators — repro.cypher.operators — fed by the lowering above.)

    def _bounded_int(self, expr: ast.Expr, what: str) -> int:
        value = self.evaluator.evaluate(expr, {})
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise CypherRuntimeError(f"{what} requires a non-negative integer, got {value!r}")
        return value

    # -- Writes -----------------------------------------------------------

    def apply_create(self, rows: list[Row], clause: ast.CreateClause) -> list[Row]:
        output = []
        for row in rows:
            new_row = dict(row)
            for part in clause.pattern.parts:
                new_row = self._create_part(part, new_row)
            output.append(new_row)
        return output

    def _create_part(self, part: ast.PatternPart, row: Row) -> Row:
        elements = part.elements
        nodes: list[Node] = []
        rels: list[Relationship] = []
        previous: Optional[Node] = None
        pending_rel: Optional[ast.RelPattern] = None
        for element in elements:
            if isinstance(element, ast.NodePattern):
                node = self._create_or_reuse_node(element, row)
                nodes.append(node)
                if pending_rel is not None:
                    rel = self._create_rel(pending_rel, previous, node, row)
                    rels.append(rel)
                    if pending_rel.variable is not None:
                        row[pending_rel.variable] = rel
                    pending_rel = None
                previous = node
            else:
                pending_rel = element
        if part.path_variable is not None:
            row[part.path_variable] = Path(nodes, rels)
        return row

    def _create_or_reuse_node(self, node_pattern: ast.NodePattern, row: Row) -> Node:
        if node_pattern.variable is not None and node_pattern.variable in row:
            bound = row[node_pattern.variable]
            if not isinstance(bound, Node):
                raise CypherTypeError(
                    f"CREATE cannot reuse non-node variable {node_pattern.variable!r}"
                )
            if node_pattern.labels or node_pattern.properties:
                raise CypherSyntaxError(
                    "cannot specify labels or properties on a bound variable in CREATE"
                )
            return bound
        if not node_pattern.labels:
            raise CypherRuntimeError("CREATE requires at least one label on new nodes")
        properties = {
            key: self.evaluator.evaluate(expr, row) for key, expr in node_pattern.properties
        }
        node = self.store.create_node(node_pattern.labels, properties)
        self.nodes_created += 1
        self.properties_set += len([v for v in properties.values() if v is not None])
        if node_pattern.variable is not None:
            row[node_pattern.variable] = node
        return node

    def _create_rel(
        self,
        rel_pattern: ast.RelPattern,
        start: Optional[Node],
        end: Node,
        row: Row,
    ) -> Relationship:
        if start is None:
            raise CypherRuntimeError("relationship in CREATE lacks a start node")
        if len(rel_pattern.types) != 1:
            raise CypherSyntaxError("CREATE requires exactly one relationship type")
        if rel_pattern.direction == "both":
            raise CypherSyntaxError("CREATE requires a directed relationship")
        if rel_pattern.var_length:
            raise CypherSyntaxError("CREATE cannot use variable-length relationships")
        properties = {
            key: self.evaluator.evaluate(expr, row) for key, expr in rel_pattern.properties
        }
        if rel_pattern.direction == "out":
            rel = self.store.create_relationship(start.node_id, rel_pattern.types[0], end.node_id, properties)
        else:
            rel = self.store.create_relationship(end.node_id, rel_pattern.types[0], start.node_id, properties)
        self.relationships_created += 1
        self.properties_set += len([v for v in properties.values() if v is not None])
        return rel

    def apply_merge(self, rows: list[Row], clause: ast.MergeClause) -> list[Row]:
        output: list[Row] = []
        for row in rows:
            matches = [
                matched for matched, _ in self._match_part(clause.part, row, frozenset())
            ]
            if matches:
                for matched in matches:
                    self._apply_set_items(clause.on_match, matched)
                    output.append(matched)
            else:
                created = self._create_part(clause.part, dict(row))
                self._apply_set_items(clause.on_create, created)
                output.append(created)
        return output

    def apply_set(self, rows: list[Row], clause: ast.SetClause) -> list[Row]:
        for row in rows:
            self._apply_set_items(clause.items, row)
        return rows

    def _apply_set_items(self, items: tuple[ast.SetItem, ...], row: Row) -> None:
        for item in items:
            target = row.get(item.variable)
            if target is None:
                continue
            if item.kind == "property":
                value = self.evaluator.evaluate(item.expression, row)
                self._set_property(target, item.key, value)
            elif item.kind in ("merge_map", "replace_map"):
                value = self.evaluator.evaluate(item.expression, row)
                if isinstance(value, (Node, Relationship)):
                    value = dict(value.properties)
                if not isinstance(value, dict):
                    raise CypherTypeError(f"SET {item.variable} = ... expects a map")
                if item.kind == "replace_map":
                    if not isinstance(target, (Node, Relationship)):
                        raise CypherTypeError(f"cannot SET properties on {target!r}")
                    for key in list(target.properties):
                        self._set_property(target, key, None)
                for key, val in value.items():
                    self._set_property(target, key, val)
            elif item.kind == "label":
                raise CypherRuntimeError("SET label is not supported")

    def _set_property(self, target: Any, key: str, value: Any) -> None:
        if isinstance(target, Node):
            self.store.set_node_property(target.node_id, key, value)
        elif isinstance(target, Relationship):
            self.store.set_relationship_property(target.rel_id, key, value)
        else:
            raise CypherTypeError(f"cannot SET property on {target!r}")
        self.properties_set += 1

    def apply_delete(self, rows: list[Row], clause: ast.DeleteClause) -> list[Row]:
        nodes_to_delete: dict[int, Node] = {}
        rels_to_delete: dict[int, Relationship] = {}
        for row in rows:
            for expr in clause.expressions:
                value = self.evaluator.evaluate(expr, row)
                if value is None:
                    continue
                if isinstance(value, Node):
                    nodes_to_delete[value.node_id] = value
                elif isinstance(value, Relationship):
                    rels_to_delete[value.rel_id] = value
                elif isinstance(value, Path):
                    for node in value.nodes:
                        nodes_to_delete[node.node_id] = node
                    for rel in value.relationships:
                        rels_to_delete[rel.rel_id] = rel
                else:
                    raise CypherTypeError(f"DELETE expects nodes/relationships, got {value!r}")
        for rel_id in rels_to_delete:
            if self.store.has_node(self.store.relationship(rel_id).start_id):
                self.store.delete_relationship(rel_id)
                self.relationships_deleted += 1
        for node_id in nodes_to_delete:
            before = self.store.relationship_count
            self.store.delete_node(node_id, detach=clause.detach)
            self.relationships_deleted += before - self.store.relationship_count
            self.nodes_deleted += 1
        return rows

    def apply_remove(self, rows: list[Row], clause: ast.RemoveClause) -> list[Row]:
        for row in rows:
            for item in clause.items:
                target = row.get(item.variable)
                if target is None:
                    continue
                if item.kind == "property":
                    self._set_property(target, item.key, None)
                else:
                    raise CypherRuntimeError("REMOVE label is not supported")
        return rows


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

class _Evaluator:
    """Evaluates expression ASTs against a row environment."""

    # expression class -> unbound handler, shared across instances so the
    # per-call getattr string formatting happens once per AST node type
    _dispatch: dict[type, Any] = {}

    def __init__(self, context: _ExecutionContext) -> None:
        self.context = context

    def evaluate(self, expr: ast.Expr, row: Row) -> Any:
        cls = expr.__class__
        method = _Evaluator._dispatch.get(cls)
        if method is None:
            method = getattr(_Evaluator, f"_eval_{cls.__name__}", None)
            if method is None:
                raise CypherRuntimeError(f"cannot evaluate {cls.__name__}")
            _Evaluator._dispatch[cls] = method
        return method(self, expr, row)

    # -- atoms ----------------------------------------------------------

    def _eval_Literal(self, expr: ast.Literal, row: Row) -> Any:
        return expr.value

    def _eval_Parameter(self, expr: ast.Parameter, row: Row) -> Any:
        if expr.name not in self.context.params:
            raise CypherRuntimeError(f"missing parameter: ${expr.name}")
        return self.context.params[expr.name]

    def _eval_Variable(self, expr: ast.Variable, row: Row) -> Any:
        if expr.name not in row:
            raise CypherRuntimeError(f"unknown variable: {expr.name}")
        return row[expr.name]

    def _eval_PropertyAccess(self, expr: ast.PropertyAccess, row: Row) -> Any:
        subject_expr = expr.subject
        if subject_expr.__class__ is ast.Variable:
            subject = self._eval_Variable(subject_expr, row)
        else:
            subject = self.evaluate(subject_expr, row)
        if subject is None:
            return None
        if isinstance(subject, (Node, Relationship)):
            return subject.properties.get(expr.key)
        if isinstance(subject, dict):
            return subject.get(expr.key)
        raise CypherTypeError(
            f"cannot access property {expr.key!r} on {type(subject).__name__}"
        )

    def _eval_Subscript(self, expr: ast.Subscript, row: Row) -> Any:
        subject = self.evaluate(expr.subject, row)
        index = self.evaluate(expr.index, row)
        if subject is None or index is None:
            return None
        if isinstance(subject, list):
            if isinstance(index, bool) or not isinstance(index, int):
                raise CypherTypeError(f"list index must be an integer, got {index!r}")
            if -len(subject) <= index < len(subject):
                return subject[index]
            return None
        if isinstance(subject, (dict,)):
            return subject.get(index)
        if isinstance(subject, (Node, Relationship)):
            return subject.properties.get(index)
        raise CypherTypeError(f"cannot subscript {type(subject).__name__}")

    def _eval_Slice(self, expr: ast.Slice, row: Row) -> Any:
        subject = self.evaluate(expr.subject, row)
        if subject is None:
            return None
        if not isinstance(subject, list):
            raise CypherTypeError("slicing requires a list")
        start = self.evaluate(expr.start, row) if expr.start is not None else None
        end = self.evaluate(expr.end, row) if expr.end is not None else None
        return subject[start:end]

    def _eval_ListLiteral(self, expr: ast.ListLiteral, row: Row) -> list[Any]:
        return [self.evaluate(item, row) for item in expr.items]

    def _eval_MapLiteral(self, expr: ast.MapLiteral, row: Row) -> dict[str, Any]:
        return {key: self.evaluate(value, row) for key, value in expr.items}

    # -- operators --------------------------------------------------------

    def _eval_UnaryOp(self, expr: ast.UnaryOp, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CypherTypeError(f"unary {expr.op} expects a number, got {value!r}")
        return -value if expr.op == "-" else +value

    def _eval_BinaryOp(self, expr: ast.BinaryOp, row: Row) -> Any:
        # The arithmetic/concatenation kernel is shared with the compiled
        # closures (repro.cypher.compile) so both paths stay bit-identical.
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        return binary_operation(expr.op, left, right)

    def _eval_Comparison(self, expr: ast.Comparison, row: Row) -> Optional[bool]:
        values = [self.evaluate(operand, row) for operand in expr.operands]
        result: Optional[bool] = True
        for op, left, right in zip(expr.ops, values, values[1:]):
            outcome = self._compare_once(op, left, right)
            if outcome is False:
                return False
            if outcome is None:
                result = None
        return result

    def _compare_once(self, op: str, left: Any, right: Any) -> Optional[bool]:
        # Shared with the compiled closures — see repro.cypher.compile.
        return compare_once(op, left, right)

    def _eval_BooleanOp(self, expr: ast.BooleanOp, row: Row) -> Optional[bool]:
        saw_null = False
        if expr.op == "AND":
            for operand in expr.operands:
                value = is_truthy(self.evaluate(operand, row))
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True
        if expr.op == "OR":
            for operand in expr.operands:
                value = is_truthy(self.evaluate(operand, row))
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False
        # XOR
        result: Optional[bool] = False
        for operand in expr.operands:
            value = is_truthy(self.evaluate(operand, row))
            if value is None:
                return None
            result = bool(result) ^ value
        return result

    def _eval_NotOp(self, expr: ast.NotOp, row: Row) -> Optional[bool]:
        value = is_truthy(self.evaluate(expr.operand, row))
        return None if value is None else not value

    def _eval_IsNull(self, expr: ast.IsNull, row: Row) -> bool:
        value = self.evaluate(expr.operand, row)
        return (value is not None) if expr.negated else (value is None)

    def _eval_StringPredicate(self, expr: ast.StringPredicate, row: Row) -> Optional[bool]:
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        if left is None or right is None:
            return None
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        if expr.op == "STARTS":
            return left.startswith(right)
        if expr.op == "ENDS":
            return left.endswith(right)
        return right in left

    def _eval_InList(self, expr: ast.InList, row: Row) -> Optional[bool]:
        value = self.evaluate(expr.value, row)
        container = self.evaluate(expr.container, row)
        if container is None:
            return None
        if not isinstance(container, list):
            raise CypherTypeError(f"IN expects a list, got {container!r}")
        saw_null = False
        for item in container:
            equal = cypher_equals(value, item)
            if equal is True:
                return True
            if equal is None:
                saw_null = True
        return None if saw_null else False

    def _eval_CaseExpr(self, expr: ast.CaseExpr, row: Row) -> Any:
        if expr.subject is not None:
            subject = self.evaluate(expr.subject, row)
            for condition, result in expr.whens:
                if cypher_equals(subject, self.evaluate(condition, row)) is True:
                    return self.evaluate(result, row)
        else:
            for condition, result in expr.whens:
                if is_truthy(self.evaluate(condition, row)) is True:
                    return self.evaluate(result, row)
        if expr.default is not None:
            return self.evaluate(expr.default, row)
        return None

    def _eval_ListComprehension(self, expr: ast.ListComprehension, row: Row) -> Any:
        source = self.evaluate(expr.source, row)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError("list comprehension requires a list source")
        output = []
        for item in source:
            inner = dict(row)
            inner[expr.variable] = item
            if expr.predicate is not None:
                if is_truthy(self.evaluate(expr.predicate, inner)) is not True:
                    continue
            if expr.projection is not None:
                output.append(self.evaluate(expr.projection, inner))
            else:
                output.append(item)
        return output

    def _eval_Quantifier(self, expr: ast.Quantifier, row: Row) -> Optional[bool]:
        source = self.evaluate(expr.source, row)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError(f"{expr.kind}() requires a list, got {source!r}")
        trues = falses = nulls = 0
        for item in source:
            inner = dict(row)
            inner[expr.variable] = item
            outcome = is_truthy(self.evaluate(expr.predicate, inner))
            if outcome is True:
                trues += 1
            elif outcome is False:
                falses += 1
            else:
                nulls += 1
        if expr.kind == "any":
            if trues > 0:
                return True
            return None if nulls else False
        if expr.kind == "all":
            if falses > 0:
                return False
            return None if nulls else True
        if expr.kind == "none":
            if trues > 0:
                return False
            return None if nulls else True
        # single: exactly one true
        if nulls:
            return None
        return trues == 1

    def _eval_Reduce(self, expr: ast.Reduce, row: Row) -> Any:
        source = self.evaluate(expr.source, row)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError(f"reduce() requires a list, got {source!r}")
        accumulator = self.evaluate(expr.initial, row)
        for item in source:
            inner = dict(row)
            inner[expr.accumulator] = accumulator
            inner[expr.variable] = item
            accumulator = self.evaluate(expr.expression, inner)
        return accumulator

    def _eval_PatternPredicate(self, expr: ast.PatternPredicate, row: Row) -> bool:
        pattern = ast.Pattern(parts=(expr.pattern,))
        for _ in self.context.match_pattern(pattern, row):
            return True
        return False

    def _eval_PatternComprehension(self, expr: ast.PatternComprehension, row: Row) -> list[Any]:
        pattern = ast.Pattern(parts=(expr.pattern,))
        output: list[Any] = []
        for matched in self.context.match_pattern(pattern, row):
            if expr.predicate is not None:
                if is_truthy(self.evaluate(expr.predicate, matched)) is not True:
                    continue
            output.append(self.evaluate(expr.projection, matched))
        return output

    def _eval_ExistsExpr(self, expr: ast.ExistsExpr, row: Row) -> bool:
        if isinstance(expr.target, ast.PatternPart):
            pattern = ast.Pattern(parts=(expr.target,))
            for _ in self.context.match_pattern(pattern, row):
                return True
            return False
        return self.evaluate(expr.target, row) is not None

    def _eval_CountStar(self, expr: ast.CountStar, row: Row) -> Any:
        raise CypherSyntaxError("count(*) is only allowed in a projection")

    def _eval_FunctionCall(self, expr: ast.FunctionCall, row: Row) -> Any:
        if is_aggregate_function(expr.name):
            raise CypherSyntaxError(
                f"aggregate function {expr.name}() is only allowed in a projection"
            )
        args = [self.evaluate(arg, row) for arg in expr.args]
        return call_scalar(self.context.store, expr.name, args)

    # -- aggregation ------------------------------------------------------

    def evaluate_aggregate(self, expr: ast.Expr, group_rows: list[Row]) -> Any:
        """Evaluate ``expr`` in aggregate context over ``group_rows``.

        Aggregate calls consume the whole group; everything else is
        evaluated against the group's first row (grouping keys are constant
        within a group by construction).
        """
        if isinstance(expr, ast.CountStar):
            return len(group_rows)
        if isinstance(expr, ast.FunctionCall) and is_aggregate_function(expr.name):
            name = expr.name.lower()
            if name in ("percentilecont", "percentiledisc"):
                if len(expr.args) != 2:
                    raise CypherRuntimeError(f"{expr.name}() expects two arguments")
                values = [self.evaluate(expr.args[0], row) for row in group_rows]
                first = group_rows[0] if group_rows else {}
                fraction = self.evaluate(expr.args[1], first)
                return percentile(values, float(fraction), disc=name.endswith("disc"))
            if len(expr.args) != 1:
                raise CypherRuntimeError(f"{expr.name}() expects one argument")
            values = [self.evaluate(expr.args[0], row) for row in group_rows]
            return call_aggregate(expr.name, values, distinct=expr.distinct)
        if isinstance(expr, ast.BinaryOp):
            left = self.evaluate_aggregate(expr.left, group_rows)
            right = self.evaluate_aggregate(expr.right, group_rows)
            shim = ast.BinaryOp(op=expr.op, left=ast.Literal(left), right=ast.Literal(right))
            return self.evaluate(shim, {})
        if isinstance(expr, ast.UnaryOp):
            value = self.evaluate_aggregate(expr.operand, group_rows)
            return self.evaluate(ast.UnaryOp(op=expr.op, operand=ast.Literal(value)), {})
        if isinstance(expr, ast.Comparison):
            values = [self.evaluate_aggregate(op, group_rows) for op in expr.operands]
            shim = ast.Comparison(
                operands=tuple(ast.Literal(v) for v in values), ops=expr.ops
            )
            return self.evaluate(shim, {})
        if isinstance(expr, ast.FunctionCall):
            args = [self.evaluate_aggregate(arg, group_rows) for arg in expr.args]
            return call_scalar(self.context.store, expr.name, args)
        if isinstance(expr, ast.ListLiteral):
            return [self.evaluate_aggregate(item, group_rows) for item in expr.items]
        if isinstance(expr, ast.CaseExpr):
            first = group_rows[0] if group_rows else {}
            return self.evaluate(expr, first)
        first = group_rows[0] if group_rows else {}
        return self.evaluate(expr, first)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

# (_Descending, _freeze, _contains_aggregate and _same_rel_binding moved to
# repro.cypher.operators with the projection/ordering machinery; math_fmod
# and the concat kernel moved to repro.cypher.compile, shared with the
# compiled expression closures.)

_WRITE_CLAUSES = (
    ast.CreateClause,
    ast.MergeClause,
    ast.SetClause,
    ast.DeleteClause,
    ast.RemoveClause,
)


def _tree_has_writes(tree: ast.Query) -> bool:
    """Whether any clause of ``tree`` (or any UNION branch) mutates the graph.

    CSR traversal is only wired up for read-only queries: a write clause
    bumps the store's stats version mid-execution, which would force every
    CSR operator onto its staleness fallback anyway — skipping the snapshot
    up front keeps the plumbing out of the write path entirely.
    """
    queries = tree.queries if isinstance(tree, ast.UnionQuery) else (tree,)
    return any(
        isinstance(clause, _WRITE_CLAUSES)
        for single in queries
        for clause in single.clauses
    )


def _pattern_variables(pattern: ast.Pattern) -> list[str]:
    """All variable names a pattern can introduce (for OPTIONAL padding)."""
    names: list[str] = []
    for part in pattern.parts:
        if part.path_variable:
            names.append(part.path_variable)
        for element in part.elements:
            variable = element.variable
            if variable:
                names.append(variable)
    return names


def _node_selectivity(node_pattern: ast.NodePattern, row: Row) -> int:
    """Rough anchor-selection score (bound ≫ property-constrained ≫ labeled)."""
    if node_pattern.variable is not None and node_pattern.variable in row:
        return 100
    score = 0
    if node_pattern.properties:
        score += 10
    if node_pattern.labels:
        score += 2
    return score


def _reverse_elements(
    elements: list[Union[ast.NodePattern, ast.RelPattern]],
) -> list[Union[ast.NodePattern, ast.RelPattern]]:
    """Reverse a pattern chain, flipping relationship directions."""
    flipped: list[Union[ast.NodePattern, ast.RelPattern]] = []
    for element in reversed(elements):
        if isinstance(element, ast.RelPattern):
            direction = {"out": "in", "in": "out", "both": "both"}[element.direction]
            flipped.append(
                ast.RelPattern(
                    variable=element.variable,
                    types=element.types,
                    direction=direction,
                    properties=element.properties,
                    min_hops=element.min_hops,
                    max_hops=element.max_hops,
                    var_length=element.var_length,
                )
            )
        else:
            flipped.append(element)
    return flipped
