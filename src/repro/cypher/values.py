"""Cypher value semantics: null-aware equality, comparison and ordering.

Cypher uses ternary logic — any comparison involving ``null`` yields
``null``, and ``WHERE`` keeps only rows whose predicate is exactly ``true``.
These helpers centralise those rules for the evaluator, the pattern matcher
and ORDER BY.
"""

from __future__ import annotations

from typing import Any, Optional

from ..graph.model import Node, Path, Relationship
from .errors import CypherTypeError

__all__ = [
    "cypher_equals",
    "cypher_compare",
    "sort_key",
    "is_truthy",
    "ensure_number",
    "ensure_integer",
]


def cypher_equals(left: Any, right: Any) -> Optional[bool]:
    """Three-valued equality: returns True, False, or None (unknown)."""
    if left is None or right is None:
        return None
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return left == right
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if isinstance(left, list) and isinstance(right, list):
        if len(left) != len(right):
            return False
        saw_null = False
        for a, b in zip(left, right):
            result = cypher_equals(a, b)
            if result is None:
                saw_null = True
            elif not result:
                return False
        return None if saw_null else True
    if isinstance(left, dict) and isinstance(right, dict):
        if set(left) != set(right):
            return False
        saw_null = False
        for key in left:
            result = cypher_equals(left[key], right[key])
            if result is None:
                saw_null = True
            elif not result:
                return False
        return None if saw_null else True
    if isinstance(left, (Node, Relationship, Path)) or isinstance(
        right, (Node, Relationship, Path)
    ):
        return left == right if type(left) is type(right) else False
    return False


def cypher_compare(left: Any, right: Any) -> Optional[int]:
    """Ordering comparison for ``< > <= >=``: -1/0/1 or None (unknown).

    Only numbers compare with numbers, strings with strings and booleans
    with booleans; everything else is incomparable (None), matching
    Cypher's null result for cross-type inequality.
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool) and isinstance(right, bool):
        return (left > right) - (left < right)
    if isinstance(left, bool) or isinstance(right, bool):
        return None
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    if isinstance(left, list) and isinstance(right, list):
        for a, b in zip(left, right):
            result = cypher_compare(a, b)
            if result is None:
                return None
            if result != 0:
                return result
        return (len(left) > len(right)) - (len(left) < len(right))
    return None


_TYPE_RANK = {
    "number": 0,
    "string": 1,
    "boolean": 2,
    "list": 3,
    "map": 4,
    "node": 5,
    "relationship": 6,
    "path": 7,
    "null": 8,  # nulls sort last ascending
}


def sort_key(value: Any) -> tuple:
    """Total-order key used by ORDER BY (nulls last, stable across types)."""
    if value is None:
        return (_TYPE_RANK["null"], 0)
    if isinstance(value, bool):
        return (_TYPE_RANK["boolean"], value)
    if isinstance(value, (int, float)):
        return (_TYPE_RANK["number"], float(value))
    if isinstance(value, str):
        return (_TYPE_RANK["string"], value)
    if isinstance(value, list):
        return (_TYPE_RANK["list"], tuple(sort_key(item) for item in value))
    if isinstance(value, dict):
        return (
            _TYPE_RANK["map"],
            tuple(sorted((key, sort_key(val)) for key, val in value.items())),
        )
    if isinstance(value, Node):
        return (_TYPE_RANK["node"], value.node_id)
    if isinstance(value, Relationship):
        return (_TYPE_RANK["relationship"], value.rel_id)
    if isinstance(value, Path):
        return (_TYPE_RANK["path"], tuple(n.node_id for n in value.nodes))
    raise CypherTypeError(f"cannot order value of type {type(value).__name__}")


def is_truthy(value: Any) -> Optional[bool]:
    """Interpret a value as a WHERE predicate result (True/False/None)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    raise CypherTypeError(
        f"predicate must be a boolean, got {type(value).__name__}: {value!r}"
    )


def ensure_number(value: Any, context: str) -> float | int:
    """Require a non-boolean number, raising :class:`CypherTypeError` otherwise."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CypherTypeError(f"{context} expects a number, got {value!r}")
    return value


def ensure_integer(value: Any, context: str) -> int:
    """Require an integer, raising :class:`CypherTypeError` otherwise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise CypherTypeError(f"{context} expects an integer, got {value!r}")
    return value
