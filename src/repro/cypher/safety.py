"""Query safety helpers for exposing the engine over a network."""

from __future__ import annotations

from . import ast_nodes as ast
from .parser import parse

__all__ = ["is_read_only", "WRITE_CLAUSES"]

WRITE_CLAUSES = (
    ast.CreateClause,
    ast.MergeClause,
    ast.SetClause,
    ast.DeleteClause,
    ast.RemoveClause,
)


def is_read_only(query: str) -> bool:
    """True when ``query`` parses and contains no write clause.

    Raises:
        CypherSyntaxError: if the query does not parse at all (callers
            usually want to surface that as a 400, not treat it as a write).
    """
    tree = parse(query)
    queries = tree.queries if isinstance(tree, ast.UnionQuery) else (tree,)
    for single in queries:
        for clause in single.clauses:
            if isinstance(clause, WRITE_CLAUSES):
                return False
    return True
