"""Expression compilation: lower expression ASTs into Python closures.

The tree-walking :class:`~repro.cypher.executor._Evaluator` pays a dispatch
lookup, a method call and an attribute walk per AST node per row.  For the
RAG hot path — the same generated queries executed over and over — that
interpretation overhead dominates cheap queries.  This module compiles an
expression once into a closure ``fn(ctx, row) -> value`` with all constants,
child closures and name strings pre-resolved, so per-row cost collapses to
plain Python calls (the data-centric compilation idea from HyPer applied at
the expression granularity that a pure-Python engine can benefit from).

Semantics are bit-identical to the interpreter by construction:

* the ternary-logic kernels (``binary_operation``, ``compare_once``) live
  here and are shared with the interpreter, so there is exactly one
  implementation of arithmetic/comparison semantics;
* error raising stays lazy — a compiled closure raises exactly when the
  interpreter would (at evaluation time, never at compile time), so
  zero-row queries behave identically;
* pattern-containing expressions (``PatternPredicate``,
  ``PatternComprehension``, ``EXISTS {}``) fall back to the interpreter,
  which owns pattern matching.

Compiled closures are cached per AST node (id-keyed, holding the node so
ids can never dangle) for the lifetime of the :class:`ExpressionCompiler`,
which the engine shares across executions alongside its plan cache.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

from ..graph.model import Node, Relationship
from . import ast_nodes as ast
from .errors import CypherRuntimeError, CypherSyntaxError, CypherTypeError
from .functions import call_scalar, is_aggregate_function, regex_match
from .values import cypher_compare, cypher_equals, is_truthy

__all__ = [
    "ExpressionCompiler",
    "binary_operation",
    "compare_once",
    "expression_variables",
]

#: A compiled expression: called with the execution context and a row dict.
CompiledExpr = Callable[[Any, dict[str, Any]], Any]


# ---------------------------------------------------------------------------
# Shared semantic kernels (single source of truth for the interpreter too)
# ---------------------------------------------------------------------------

def math_fmod(left: float | int, right: float | int) -> float | int:
    """Cypher ``%``: sign follows the dividend, ints stay ints."""
    result = abs(left) % abs(right)
    if left < 0:
        result = -result
    if isinstance(left, int) and isinstance(right, int):
        return int(result)
    return float(result)


def concat_text(value: Any) -> str:
    """Render a value for string concatenation the way Neo4j does."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)


def binary_operation(op: str, left: Any, right: Any) -> Any:
    """Cypher arithmetic on two already-evaluated operands."""
    if left is None or right is None:
        return None
    if op == "+":
        if isinstance(left, str) and isinstance(right, str):
            return left + right
        if isinstance(left, list) and isinstance(right, list):
            return left + right
        if isinstance(left, list):
            return left + [right]
        if isinstance(right, list):
            return [left] + right
        if isinstance(left, str) or isinstance(right, str):
            # Neo4j allows string + number concatenation
            return f"{concat_text(left)}{concat_text(right)}"
    if isinstance(left, bool) or isinstance(right, bool):
        raise CypherTypeError(f"operator {op} does not accept booleans")
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise CypherTypeError(f"operator {op} expects numbers, got {left!r}, {right!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            if isinstance(left, int) and isinstance(right, int):
                raise CypherRuntimeError("integer division by zero")
            return float("inf") if left > 0 else float("-inf") if left < 0 else float("nan")
        if isinstance(left, int) and isinstance(right, int):
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        return left / right
    if op == "%":
        if right == 0:
            raise CypherRuntimeError("modulo by zero")
        return math_fmod(left, right)
    if op == "^":
        return float(left) ** float(right)
    raise CypherRuntimeError(f"unknown operator {op}")


def compare_once(op: str, left: Any, right: Any) -> Optional[bool]:
    """One ternary-logic comparison step on already-evaluated operands."""
    if op == "=":
        return cypher_equals(left, right)
    if op == "<>":
        equal = cypher_equals(left, right)
        return None if equal is None else not equal
    if op == "=~":
        if left is None or right is None:
            return None
        if not isinstance(left, str) or not isinstance(right, str):
            raise CypherTypeError("=~ expects string operands")
        return regex_match(left, right)
    comparison = cypher_compare(left, right)
    if comparison is None:
        return None
    if op == "<":
        return comparison < 0
    if op == ">":
        return comparison > 0
    if op == "<=":
        return comparison <= 0
    if op == ">=":
        return comparison >= 0
    raise CypherRuntimeError(f"unknown comparison {op}")


# ---------------------------------------------------------------------------
# Variable discovery (used by the sort-key reuse guard)
# ---------------------------------------------------------------------------

#: dataclass string fields that name variables a pattern/comprehension binds
#: or references; collected conservatively (extra names only disable a reuse
#: optimisation, never change results).
_NAME_FIELDS = frozenset({"variable", "path_variable", "accumulator"})


def expression_variables(expr: Any) -> frozenset[str]:
    """Every variable name ``expr`` may read (conservative over-estimate)."""
    names: set[str] = set()
    _collect_variables(expr, names)
    return frozenset(names)


def _collect_variables(obj: Any, names: set[str]) -> None:
    if isinstance(obj, ast.Variable):
        names.add(obj.name)
        return
    if isinstance(obj, (tuple, list)):
        for item in obj:
            _collect_variables(item, names)
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            if isinstance(value, str):
                if field.name in _NAME_FIELDS:
                    names.add(value)
                continue
            _collect_variables(value, names)


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

class ExpressionCompiler:
    """Compiles expression ASTs to closures, caching per AST node.

    One instance lives on the engine (``CypherEngine.compiler``) so cached
    query trees keep their compiled closures across executions.  Counters
    feed the engine's ``compile.*`` metrics.
    """

    def __init__(self) -> None:
        # id(expr) -> (expr, fn); holding the node keeps its id stable
        self._cache: dict[int, tuple[ast.Expr, CompiledExpr]] = {}
        # id(pattern) -> (pattern, ((key, fn), ...)) for inline {k: v} maps
        self._props_cache: dict[int, tuple[Any, tuple[tuple[str, CompiledExpr], ...]]] = {}
        #: closures built (one per distinct AST node compiled)
        self.compiled = 0
        #: cache hits (an already-compiled node requested again)
        self.cache_hits = 0
        #: nodes lowered to an interpreter fallback (pattern expressions)
        self.fallbacks = 0

    def metrics(self) -> dict[str, int]:
        return {
            "compile.compiled": self.compiled,
            "compile.cache_hits": self.cache_hits,
            "compile.fallbacks": self.fallbacks,
        }

    # -- entry points ---------------------------------------------------

    def compile(self, expr: ast.Expr) -> CompiledExpr:
        """The closure for ``expr`` (cached)."""
        cached = self._cache.get(id(expr))
        if cached is not None and cached[0] is expr:
            self.cache_hits += 1
            return cached[1]
        fn = self._build(expr)
        if len(self._cache) > 8192:
            self._cache.clear()
        self._cache[id(expr)] = (expr, fn)
        return fn

    def pattern_props(
        self, obj: ast.NodePattern | ast.RelPattern
    ) -> tuple[tuple[str, CompiledExpr], ...]:
        """Compiled ``(key, fn)`` pairs for a pattern's inline properties."""
        cached = self._props_cache.get(id(obj))
        if cached is not None and cached[0] is obj:
            return cached[1]
        compiled = tuple((key, self.compile(expr)) for key, expr in obj.properties)
        if len(self._props_cache) > 4096:
            self._props_cache.clear()
        self._props_cache[id(obj)] = (obj, compiled)
        return compiled

    # -- builders -------------------------------------------------------

    def _build(self, expr: ast.Expr) -> CompiledExpr:
        builder = _BUILDERS.get(expr.__class__)
        if builder is None:
            return self._fallback(expr)
        self.compiled += 1
        return builder(self, expr)

    def _fallback(self, expr: ast.Expr) -> CompiledExpr:
        """Interpreter fallback for pattern expressions and unknown nodes."""
        self.fallbacks += 1

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            return ctx.evaluator.evaluate(expr, row)

        return fn

    def _build_Literal(self, expr: ast.Literal) -> CompiledExpr:
        value = expr.value
        return lambda ctx, row: value

    def _build_Parameter(self, expr: ast.Parameter) -> CompiledExpr:
        name = expr.name

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            params = ctx.params
            if name not in params:
                raise CypherRuntimeError(f"missing parameter: ${name}")
            return params[name]

        return fn

    def _build_Variable(self, expr: ast.Variable) -> CompiledExpr:
        name = expr.name

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            try:
                return row[name]
            except KeyError:
                raise CypherRuntimeError(f"unknown variable: {name}") from None

        return fn

    def _build_PropertyAccess(self, expr: ast.PropertyAccess) -> CompiledExpr:
        key = expr.key
        subject_expr = expr.subject
        if subject_expr.__class__ is ast.Variable:
            # The overwhelmingly common shape ``n.prop``: one fused closure.
            name = subject_expr.name

            def fn(ctx: Any, row: dict[str, Any]) -> Any:
                try:
                    subject = row[name]
                except KeyError:
                    raise CypherRuntimeError(f"unknown variable: {name}") from None
                if subject is None:
                    return None
                if isinstance(subject, (Node, Relationship)):
                    return subject.properties.get(key)
                if isinstance(subject, dict):
                    return subject.get(key)
                raise CypherTypeError(
                    f"cannot access property {key!r} on {type(subject).__name__}"
                )

            return fn
        subject_fn = self.compile(subject_expr)

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            subject = subject_fn(ctx, row)
            if subject is None:
                return None
            if isinstance(subject, (Node, Relationship)):
                return subject.properties.get(key)
            if isinstance(subject, dict):
                return subject.get(key)
            raise CypherTypeError(
                f"cannot access property {key!r} on {type(subject).__name__}"
            )

        return fn

    def _build_Subscript(self, expr: ast.Subscript) -> CompiledExpr:
        subject_fn = self.compile(expr.subject)
        index_fn = self.compile(expr.index)

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            subject = subject_fn(ctx, row)
            index = index_fn(ctx, row)
            if subject is None or index is None:
                return None
            if isinstance(subject, list):
                if isinstance(index, bool) or not isinstance(index, int):
                    raise CypherTypeError(f"list index must be an integer, got {index!r}")
                if -len(subject) <= index < len(subject):
                    return subject[index]
                return None
            if isinstance(subject, dict):
                return subject.get(index)
            if isinstance(subject, (Node, Relationship)):
                return subject.properties.get(index)
            raise CypherTypeError(f"cannot subscript {type(subject).__name__}")

        return fn

    def _build_Slice(self, expr: ast.Slice) -> CompiledExpr:
        subject_fn = self.compile(expr.subject)
        start_fn = self.compile(expr.start) if expr.start is not None else None
        end_fn = self.compile(expr.end) if expr.end is not None else None

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            subject = subject_fn(ctx, row)
            if subject is None:
                return None
            if not isinstance(subject, list):
                raise CypherTypeError("slicing requires a list")
            start = start_fn(ctx, row) if start_fn is not None else None
            end = end_fn(ctx, row) if end_fn is not None else None
            return subject[start:end]

        return fn

    def _build_ListLiteral(self, expr: ast.ListLiteral) -> CompiledExpr:
        item_fns = tuple(self.compile(item) for item in expr.items)
        return lambda ctx, row: [fn(ctx, row) for fn in item_fns]

    def _build_MapLiteral(self, expr: ast.MapLiteral) -> CompiledExpr:
        pairs = tuple((key, self.compile(value)) for key, value in expr.items)
        return lambda ctx, row: {key: fn(ctx, row) for key, fn in pairs}

    def _build_UnaryOp(self, expr: ast.UnaryOp) -> CompiledExpr:
        op = expr.op
        negate = op == "-"
        operand_fn = self.compile(expr.operand)

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            value = operand_fn(ctx, row)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise CypherTypeError(f"unary {op} expects a number, got {value!r}")
            return -value if negate else +value

        return fn

    def _build_BinaryOp(self, expr: ast.BinaryOp) -> CompiledExpr:
        op = expr.op
        left_fn = self.compile(expr.left)
        right_fn = self.compile(expr.right)
        # Left operand is evaluated before the right, like the interpreter.
        return lambda ctx, row: binary_operation(op, left_fn(ctx, row), right_fn(ctx, row))

    def _build_Comparison(self, expr: ast.Comparison) -> CompiledExpr:
        operand_fns = tuple(self.compile(operand) for operand in expr.operands)
        ops = expr.ops
        if len(operand_fns) == 2:
            op = ops[0]
            left_fn, right_fn = operand_fns
            return lambda ctx, row: compare_once(op, left_fn(ctx, row), right_fn(ctx, row))

        def fn(ctx: Any, row: dict[str, Any]) -> Optional[bool]:
            values = [operand_fn(ctx, row) for operand_fn in operand_fns]
            result: Optional[bool] = True
            for op, left, right in zip(ops, values, values[1:]):
                outcome = compare_once(op, left, right)
                if outcome is False:
                    return False
                if outcome is None:
                    result = None
            return result

        return fn

    def _build_BooleanOp(self, expr: ast.BooleanOp) -> CompiledExpr:
        operand_fns = tuple(self.compile(operand) for operand in expr.operands)
        if expr.op == "AND":

            def fn(ctx: Any, row: dict[str, Any]) -> Optional[bool]:
                saw_null = False
                for operand_fn in operand_fns:
                    value = is_truthy(operand_fn(ctx, row))
                    if value is False:
                        return False
                    if value is None:
                        saw_null = True
                return None if saw_null else True

            return fn
        if expr.op == "OR":

            def fn(ctx: Any, row: dict[str, Any]) -> Optional[bool]:
                saw_null = False
                for operand_fn in operand_fns:
                    value = is_truthy(operand_fn(ctx, row))
                    if value is True:
                        return True
                    if value is None:
                        saw_null = True
                return None if saw_null else False

            return fn

        def fn(ctx: Any, row: dict[str, Any]) -> Optional[bool]:
            result: Optional[bool] = False
            for operand_fn in operand_fns:
                value = is_truthy(operand_fn(ctx, row))
                if value is None:
                    return None
                result = bool(result) ^ value
            return result

        return fn

    def _build_NotOp(self, expr: ast.NotOp) -> CompiledExpr:
        operand_fn = self.compile(expr.operand)

        def fn(ctx: Any, row: dict[str, Any]) -> Optional[bool]:
            value = is_truthy(operand_fn(ctx, row))
            return None if value is None else not value

        return fn

    def _build_IsNull(self, expr: ast.IsNull) -> CompiledExpr:
        operand_fn = self.compile(expr.operand)
        if expr.negated:
            return lambda ctx, row: operand_fn(ctx, row) is not None
        return lambda ctx, row: operand_fn(ctx, row) is None

    def _build_StringPredicate(self, expr: ast.StringPredicate) -> CompiledExpr:
        left_fn = self.compile(expr.left)
        right_fn = self.compile(expr.right)
        op = expr.op

        def fn(ctx: Any, row: dict[str, Any]) -> Optional[bool]:
            left = left_fn(ctx, row)
            right = right_fn(ctx, row)
            if left is None or right is None:
                return None
            if not isinstance(left, str) or not isinstance(right, str):
                return None
            if op == "STARTS":
                return left.startswith(right)
            if op == "ENDS":
                return left.endswith(right)
            return right in left

        return fn

    def _build_InList(self, expr: ast.InList) -> CompiledExpr:
        value_fn = self.compile(expr.value)
        container_fn = self.compile(expr.container)

        def fn(ctx: Any, row: dict[str, Any]) -> Optional[bool]:
            value = value_fn(ctx, row)
            container = container_fn(ctx, row)
            if container is None:
                return None
            if not isinstance(container, list):
                raise CypherTypeError(f"IN expects a list, got {container!r}")
            saw_null = False
            for item in container:
                equal = cypher_equals(value, item)
                if equal is True:
                    return True
                if equal is None:
                    saw_null = True
            return None if saw_null else False

        return fn

    def _build_CaseExpr(self, expr: ast.CaseExpr) -> CompiledExpr:
        whens = tuple(
            (self.compile(condition), self.compile(result))
            for condition, result in expr.whens
        )
        default_fn = self.compile(expr.default) if expr.default is not None else None
        if expr.subject is not None:
            subject_fn = self.compile(expr.subject)

            def fn(ctx: Any, row: dict[str, Any]) -> Any:
                subject = subject_fn(ctx, row)
                for condition_fn, result_fn in whens:
                    if cypher_equals(subject, condition_fn(ctx, row)) is True:
                        return result_fn(ctx, row)
                return default_fn(ctx, row) if default_fn is not None else None

            return fn

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            for condition_fn, result_fn in whens:
                if is_truthy(condition_fn(ctx, row)) is True:
                    return result_fn(ctx, row)
            return default_fn(ctx, row) if default_fn is not None else None

        return fn

    def _build_ListComprehension(self, expr: ast.ListComprehension) -> CompiledExpr:
        source_fn = self.compile(expr.source)
        variable = expr.variable
        predicate_fn = self.compile(expr.predicate) if expr.predicate is not None else None
        projection_fn = self.compile(expr.projection) if expr.projection is not None else None

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            source = source_fn(ctx, row)
            if source is None:
                return None
            if not isinstance(source, list):
                raise CypherTypeError("list comprehension requires a list source")
            output = []
            for item in source:
                inner = dict(row)
                inner[variable] = item
                if predicate_fn is not None:
                    if is_truthy(predicate_fn(ctx, inner)) is not True:
                        continue
                if projection_fn is not None:
                    output.append(projection_fn(ctx, inner))
                else:
                    output.append(item)
            return output

        return fn

    def _build_Quantifier(self, expr: ast.Quantifier) -> CompiledExpr:
        source_fn = self.compile(expr.source)
        predicate_fn = self.compile(expr.predicate)
        variable = expr.variable
        kind = expr.kind

        def fn(ctx: Any, row: dict[str, Any]) -> Optional[bool]:
            source = source_fn(ctx, row)
            if source is None:
                return None
            if not isinstance(source, list):
                raise CypherTypeError(f"{kind}() requires a list, got {source!r}")
            trues = falses = nulls = 0
            for item in source:
                inner = dict(row)
                inner[variable] = item
                outcome = is_truthy(predicate_fn(ctx, inner))
                if outcome is True:
                    trues += 1
                elif outcome is False:
                    falses += 1
                else:
                    nulls += 1
            if kind == "any":
                if trues > 0:
                    return True
                return None if nulls else False
            if kind == "all":
                if falses > 0:
                    return False
                return None if nulls else True
            if kind == "none":
                if trues > 0:
                    return False
                return None if nulls else True
            # single: exactly one true
            if nulls:
                return None
            return trues == 1

        return fn

    def _build_Reduce(self, expr: ast.Reduce) -> CompiledExpr:
        source_fn = self.compile(expr.source)
        initial_fn = self.compile(expr.initial)
        expression_fn = self.compile(expr.expression)
        accumulator_name = expr.accumulator
        variable = expr.variable

        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            source = source_fn(ctx, row)
            if source is None:
                return None
            if not isinstance(source, list):
                raise CypherTypeError(f"reduce() requires a list, got {source!r}")
            accumulator = initial_fn(ctx, row)
            for item in source:
                inner = dict(row)
                inner[accumulator_name] = accumulator
                inner[variable] = item
                accumulator = expression_fn(ctx, inner)
            return accumulator

        return fn

    def _build_CountStar(self, expr: ast.CountStar) -> CompiledExpr:
        # Raised lazily so zero-row queries behave like the interpreter.
        def fn(ctx: Any, row: dict[str, Any]) -> Any:
            raise CypherSyntaxError("count(*) is only allowed in a projection")

        return fn

    def _build_FunctionCall(self, expr: ast.FunctionCall) -> CompiledExpr:
        name = expr.name
        if is_aggregate_function(name):

            def fn(ctx: Any, row: dict[str, Any]) -> Any:
                raise CypherSyntaxError(
                    f"aggregate function {name}() is only allowed in a projection"
                )

            return fn
        arg_fns = tuple(self.compile(arg) for arg in expr.args)
        # call_scalar resolves the function by name at call time, so
        # test doubles patched into SCALAR_FUNCTIONS keep working.
        return lambda ctx, row: call_scalar(
            ctx.store, name, [arg_fn(ctx, row) for arg_fn in arg_fns]
        )


_BUILDERS: dict[type, Callable[[ExpressionCompiler, Any], CompiledExpr]] = {
    ast.Literal: ExpressionCompiler._build_Literal,
    ast.Parameter: ExpressionCompiler._build_Parameter,
    ast.Variable: ExpressionCompiler._build_Variable,
    ast.PropertyAccess: ExpressionCompiler._build_PropertyAccess,
    ast.Subscript: ExpressionCompiler._build_Subscript,
    ast.Slice: ExpressionCompiler._build_Slice,
    ast.ListLiteral: ExpressionCompiler._build_ListLiteral,
    ast.MapLiteral: ExpressionCompiler._build_MapLiteral,
    ast.UnaryOp: ExpressionCompiler._build_UnaryOp,
    ast.BinaryOp: ExpressionCompiler._build_BinaryOp,
    ast.Comparison: ExpressionCompiler._build_Comparison,
    ast.BooleanOp: ExpressionCompiler._build_BooleanOp,
    ast.NotOp: ExpressionCompiler._build_NotOp,
    ast.IsNull: ExpressionCompiler._build_IsNull,
    ast.StringPredicate: ExpressionCompiler._build_StringPredicate,
    ast.InList: ExpressionCompiler._build_InList,
    ast.CaseExpr: ExpressionCompiler._build_CaseExpr,
    ast.ListComprehension: ExpressionCompiler._build_ListComprehension,
    ast.Quantifier: ExpressionCompiler._build_Quantifier,
    ast.Reduce: ExpressionCompiler._build_Reduce,
    ast.CountStar: ExpressionCompiler._build_CountStar,
    ast.FunctionCall: ExpressionCompiler._build_FunctionCall,
    # PatternPredicate / PatternComprehension / ExistsExpr intentionally
    # absent: they need the context's pattern matcher (interpreter fallback).
}
