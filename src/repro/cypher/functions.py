"""Built-in scalar and aggregate functions of the Cypher subset.

Scalar functions receive already-evaluated argument values plus an
execution context (for graph-touching functions like ``labels`` and
``degree``).  Aggregates receive the full list of per-row values collected
over a group.

Function names are case-insensitive, as in Neo4j.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Optional

from ..graph.model import Node, Path, Relationship
from ..graph.store import GraphStore
from .errors import CypherRuntimeError, CypherTypeError, UnknownFunctionError
from .values import cypher_compare, cypher_equals, ensure_number, sort_key

__all__ = [
    "SCALAR_FUNCTIONS",
    "AGGREGATE_FUNCTIONS",
    "is_aggregate_function",
    "call_scalar",
    "call_aggregate",
]

ScalarFn = Callable[..., Any]
AggregateFn = Callable[[list[Any]], Any]


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------

def _null_safe(fn: ScalarFn) -> ScalarFn:
    """Wrap a function to return null when any argument is null."""

    def wrapper(store: GraphStore, *args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(store, *args)

    return wrapper


def _fn_id(store: GraphStore, entity: Any) -> int:
    if isinstance(entity, Node):
        return entity.node_id
    if isinstance(entity, Relationship):
        return entity.rel_id
    raise CypherTypeError(f"id() expects a node or relationship, got {entity!r}")


def _fn_labels(store: GraphStore, node: Any) -> list[str]:
    if not isinstance(node, Node):
        raise CypherTypeError(f"labels() expects a node, got {node!r}")
    return sorted(node.labels)


def _fn_has_label(store: GraphStore, entity: Any, labels: Any) -> bool:
    if not isinstance(entity, Node):
        raise CypherTypeError(f"label predicate expects a node, got {entity!r}")
    wanted = labels if isinstance(labels, list) else [labels]
    return all(label in entity.labels for label in wanted)


def _fn_type(store: GraphStore, rel: Any) -> str:
    if not isinstance(rel, Relationship):
        raise CypherTypeError(f"type() expects a relationship, got {rel!r}")
    return rel.rel_type


def _fn_properties(store: GraphStore, entity: Any) -> dict[str, Any]:
    if isinstance(entity, (Node, Relationship)):
        return dict(entity.properties)
    if isinstance(entity, dict):
        return dict(entity)
    raise CypherTypeError(f"properties() expects a node/relationship/map, got {entity!r}")


def _fn_keys(store: GraphStore, entity: Any) -> list[str]:
    if isinstance(entity, (Node, Relationship)):
        return sorted(entity.properties)
    if isinstance(entity, dict):
        return sorted(entity)
    raise CypherTypeError(f"keys() expects a node/relationship/map, got {entity!r}")


def _fn_size(store: GraphStore, value: Any) -> int:
    if isinstance(value, (list, str)):
        return len(value)
    if isinstance(value, dict):
        return len(value)
    raise CypherTypeError(f"size() expects a list or string, got {value!r}")


def _fn_length(store: GraphStore, value: Any) -> int:
    if isinstance(value, Path):
        return value.length
    if isinstance(value, (list, str)):
        return len(value)
    raise CypherTypeError(f"length() expects a path, got {value!r}")


def _fn_nodes(store: GraphStore, path: Any) -> list[Node]:
    if not isinstance(path, Path):
        raise CypherTypeError(f"nodes() expects a path, got {path!r}")
    return list(path.nodes)


def _fn_relationships(store: GraphStore, path: Any) -> list[Relationship]:
    if not isinstance(path, Path):
        raise CypherTypeError(f"relationships() expects a path, got {path!r}")
    return list(path.relationships)


def _fn_start_node(store: GraphStore, rel: Any) -> Node:
    if not isinstance(rel, Relationship):
        raise CypherTypeError(f"startNode() expects a relationship, got {rel!r}")
    return store.node(rel.start_id)


def _fn_end_node(store: GraphStore, rel: Any) -> Node:
    if not isinstance(rel, Relationship):
        raise CypherTypeError(f"endNode() expects a relationship, got {rel!r}")
    return store.node(rel.end_id)


def _fn_degree(store: GraphStore, node: Any, *rel_type: str) -> int:
    if not isinstance(node, Node):
        raise CypherTypeError(f"degree() expects a node, got {node!r}")
    types = list(rel_type) if rel_type else None
    return store.degree(node.node_id, "both", types)


def _fn_head(store: GraphStore, value: Any) -> Any:
    if not isinstance(value, list):
        raise CypherTypeError(f"head() expects a list, got {value!r}")
    return value[0] if value else None


def _fn_last(store: GraphStore, value: Any) -> Any:
    if not isinstance(value, list):
        raise CypherTypeError(f"last() expects a list, got {value!r}")
    return value[-1] if value else None


def _fn_tail(store: GraphStore, value: Any) -> Any:
    if not isinstance(value, list):
        raise CypherTypeError(f"tail() expects a list, got {value!r}")
    return value[1:]


def _fn_reverse(store: GraphStore, value: Any) -> Any:
    if isinstance(value, str):
        return value[::-1]
    if isinstance(value, list):
        return value[::-1]
    raise CypherTypeError(f"reverse() expects a list or string, got {value!r}")


def _fn_range(store: GraphStore, start: Any, end: Any, step: Any = 1) -> list[int]:
    for value, name in ((start, "start"), (end, "end"), (step, "step")):
        if isinstance(value, bool) or not isinstance(value, int):
            raise CypherTypeError(f"range() {name} must be an integer, got {value!r}")
    if step == 0:
        raise CypherRuntimeError("range() step cannot be zero")
    if step > 0:
        return list(range(start, end + 1, step))
    return list(range(start, end - 1, step))


def _fn_coalesce(store: GraphStore, *args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _fn_to_string(store: GraphStore, value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)


def _fn_to_integer(store: GraphStore, value: Any) -> Optional[int]:
    if isinstance(value, bool):
        raise CypherTypeError("toInteger() does not accept booleans")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        try:
            return int(float(value)) if "." in value or "e" in value.lower() else int(value)
        except ValueError:
            return None
    raise CypherTypeError(f"toInteger() expects a number or string, got {value!r}")


def _fn_to_float(store: GraphStore, value: Any) -> Optional[float]:
    if isinstance(value, bool):
        raise CypherTypeError("toFloat() does not accept booleans")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    raise CypherTypeError(f"toFloat() expects a number or string, got {value!r}")


def _fn_to_boolean(store: GraphStore, value: Any) -> Optional[bool]:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        return None
    raise CypherTypeError(f"toBoolean() expects a boolean or string, got {value!r}")


def _string_fn(name: str, fn: Callable[..., Any]) -> ScalarFn:
    def wrapper(store: GraphStore, value: Any, *rest: Any) -> Any:
        if not isinstance(value, str):
            raise CypherTypeError(f"{name}() expects a string, got {value!r}")
        return fn(value, *rest)

    return wrapper


def _fn_substring(value: str, start: Any, length: Any = None) -> str:
    start = int(ensure_number(start, "substring() start"))
    if length is None:
        return value[start:]
    length = int(ensure_number(length, "substring() length"))
    return value[start : start + length]


def _fn_split(value: str, sep: Any) -> list[str]:
    if not isinstance(sep, str):
        raise CypherTypeError(f"split() separator must be a string, got {sep!r}")
    return value.split(sep)


def _fn_replace(value: str, search: Any, replacement: Any) -> str:
    if not isinstance(search, str) or not isinstance(replacement, str):
        raise CypherTypeError("replace() expects string arguments")
    return value.replace(search, replacement)


def _fn_left(value: str, n: Any) -> str:
    return value[: int(ensure_number(n, "left()"))]


def _fn_right(value: str, n: Any) -> str:
    n = int(ensure_number(n, "right()"))
    return value[-n:] if n else ""


def _math_fn(name: str, fn: Callable[[float], float], integer_result: bool = False) -> ScalarFn:
    def wrapper(store: GraphStore, value: Any) -> Any:
        number = ensure_number(value, f"{name}()")
        result = fn(number)
        if integer_result and isinstance(number, int):
            return int(result)
        return result

    return wrapper


def _fn_round(store: GraphStore, value: Any, precision: Any = 0) -> float:
    number = ensure_number(value, "round()")
    digits = int(ensure_number(precision, "round() precision"))
    # Neo4j rounds half away from zero.
    scale = 10**digits
    scaled = number * scale
    rounded = math.floor(scaled + 0.5) if scaled >= 0 else math.ceil(scaled - 0.5)
    result = rounded / scale
    return float(result)


def _fn_abs(store: GraphStore, value: Any) -> Any:
    number = ensure_number(value, "abs()")
    return abs(number)


def _fn_sign(store: GraphStore, value: Any) -> int:
    number = ensure_number(value, "sign()")
    return (number > 0) - (number < 0)


SCALAR_FUNCTIONS: dict[str, ScalarFn] = {
    "id": _null_safe(_fn_id),
    "labels": _null_safe(_fn_labels),
    "haslabel": _null_safe(_fn_has_label),
    "type": _null_safe(_fn_type),
    "properties": _null_safe(_fn_properties),
    "keys": _null_safe(_fn_keys),
    "size": _null_safe(_fn_size),
    "length": _null_safe(_fn_length),
    "nodes": _null_safe(_fn_nodes),
    "relationships": _null_safe(_fn_relationships),
    "startnode": _null_safe(_fn_start_node),
    "endnode": _null_safe(_fn_end_node),
    "degree": _null_safe(_fn_degree),
    "head": _null_safe(_fn_head),
    "last": _null_safe(_fn_last),
    "tail": _null_safe(_fn_tail),
    "reverse": _null_safe(_fn_reverse),
    "range": _fn_range,
    "coalesce": _fn_coalesce,
    "tostring": _null_safe(_fn_to_string),
    "tointeger": _null_safe(_fn_to_integer),
    "tofloat": _null_safe(_fn_to_float),
    "toboolean": _null_safe(_fn_to_boolean),
    "toupper": _null_safe(_string_fn("toUpper", str.upper)),
    "tolower": _null_safe(_string_fn("toLower", str.lower)),
    "upper": _null_safe(_string_fn("upper", str.upper)),
    "lower": _null_safe(_string_fn("lower", str.lower)),
    "trim": _null_safe(_string_fn("trim", str.strip)),
    "ltrim": _null_safe(_string_fn("lTrim", str.lstrip)),
    "rtrim": _null_safe(_string_fn("rTrim", str.rstrip)),
    "substring": _null_safe(_string_fn("substring", _fn_substring)),
    "split": _null_safe(_string_fn("split", _fn_split)),
    "replace": _null_safe(_string_fn("replace", _fn_replace)),
    "left": _null_safe(_string_fn("left", _fn_left)),
    "right": _null_safe(_string_fn("right", _fn_right)),
    "abs": _null_safe(_fn_abs),
    "sign": _null_safe(_fn_sign),
    "round": _null_safe(_fn_round),
    "ceil": _null_safe(_math_fn("ceil", math.ceil, integer_result=True)),
    "floor": _null_safe(_math_fn("floor", math.floor, integer_result=True)),
    "sqrt": _null_safe(_math_fn("sqrt", math.sqrt)),
    "exp": _null_safe(_math_fn("exp", math.exp)),
    "log": _null_safe(_math_fn("log", math.log)),
    "log10": _null_safe(_math_fn("log10", math.log10)),
    "sin": _null_safe(_math_fn("sin", math.sin)),
    "cos": _null_safe(_math_fn("cos", math.cos)),
    "tan": _null_safe(_math_fn("tan", math.tan)),
    "pi": lambda store: math.pi,
}


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

def _agg_count(values: list[Any]) -> int:
    return sum(1 for value in values if value is not None)


def _agg_sum(values: list[Any]) -> Any:
    numbers = [ensure_number(v, "sum()") for v in values if v is not None]
    if not numbers:
        return 0
    return sum(numbers)


def _agg_avg(values: list[Any]) -> Any:
    numbers = [ensure_number(v, "avg()") for v in values if v is not None]
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def _agg_min(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    if not present:
        return None
    best = present[0]
    for value in present[1:]:
        result = cypher_compare(value, best)
        if result is not None and result < 0:
            best = value
        elif result is None and sort_key(value) < sort_key(best):
            best = value
    return best


def _agg_max(values: list[Any]) -> Any:
    present = [v for v in values if v is not None]
    if not present:
        return None
    best = present[0]
    for value in present[1:]:
        result = cypher_compare(value, best)
        if result is not None and result > 0:
            best = value
        elif result is None and sort_key(value) > sort_key(best):
            best = value
    return best


def _agg_collect(values: list[Any]) -> list[Any]:
    return [value for value in values if value is not None]


def _agg_stdev(values: list[Any]) -> Any:
    numbers = [float(ensure_number(v, "stDev()")) for v in values if v is not None]
    if len(numbers) < 2:
        return 0.0
    mean = sum(numbers) / len(numbers)
    variance = sum((x - mean) ** 2 for x in numbers) / (len(numbers) - 1)
    return math.sqrt(variance)


def _agg_stdevp(values: list[Any]) -> Any:
    numbers = [float(ensure_number(v, "stDevP()")) for v in values if v is not None]
    if not numbers:
        return 0.0
    mean = sum(numbers) / len(numbers)
    variance = sum((x - mean) ** 2 for x in numbers) / len(numbers)
    return math.sqrt(variance)


def _make_percentile(disc: bool) -> AggregateFn:
    def aggregate(values: list[Any]) -> Any:
        if not values:
            return None
        *samples, percentile = values
        if percentile and isinstance(percentile, list):
            # values arrive as [(value, p), ...]; unreachable in practice
            raise CypherRuntimeError("percentile aggregation received bad input")
        raise CypherRuntimeError("percentile functions need two arguments")

    return aggregate


def percentile(values: list[Any], fraction: float, disc: bool) -> Any:
    """Shared implementation of percentileCont / percentileDisc."""
    numbers = sorted(float(ensure_number(v, "percentile()")) for v in values if v is not None)
    if not numbers:
        return None
    if not 0.0 <= fraction <= 1.0:
        raise CypherRuntimeError(f"percentile fraction must be in [0,1], got {fraction}")
    if len(numbers) == 1:
        return numbers[0]
    position = fraction * (len(numbers) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if disc:
        return numbers[round(position)]
    if lower == upper:
        return numbers[lower]
    weight = position - lower
    return numbers[lower] * (1 - weight) + numbers[upper] * weight


AGGREGATE_FUNCTIONS: dict[str, AggregateFn] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "collect": _agg_collect,
    "stdev": _agg_stdev,
    "stdevp": _agg_stdevp,
    # percentile* handled specially by the executor (two-argument form)
    "percentilecont": _make_percentile(disc=False),
    "percentiledisc": _make_percentile(disc=True),
}


def is_aggregate_function(name: str) -> bool:
    """Return True when ``name`` refers to an aggregate function."""
    return name.lower() in AGGREGATE_FUNCTIONS


def call_scalar(store: GraphStore, name: str, args: list[Any]) -> Any:
    """Dispatch a scalar function call by (case-insensitive) name."""
    fn = SCALAR_FUNCTIONS.get(name.lower())
    if fn is None:
        raise UnknownFunctionError(name)
    try:
        return fn(store, *args)
    except TypeError as exc:
        raise CypherRuntimeError(f"bad arguments for {name}(): {exc}") from exc


def call_aggregate(name: str, values: list[Any], distinct: bool = False) -> Any:
    """Dispatch an aggregate over the collected per-row ``values``."""
    fn = AGGREGATE_FUNCTIONS.get(name.lower())
    if fn is None:
        raise UnknownFunctionError(name)
    if distinct:
        seen: list[Any] = []
        unique: list[Any] = []
        for value in values:
            if any(cypher_equals(value, other) is True for other in seen):
                continue
            seen.append(value)
            unique.append(value)
        values = unique
    return fn(values)


_REGEX_CACHE: dict[str, re.Pattern[str]] = {}


def regex_match(value: str, pattern: str) -> bool:
    """Full-string regex match (Cypher's ``=~``), with a compiled cache."""
    compiled = _REGEX_CACHE.get(pattern)
    if compiled is None:
        compiled = re.compile(pattern)
        _REGEX_CACHE[pattern] = compiled
    return compiled.fullmatch(value) is not None
