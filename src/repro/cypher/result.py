"""Query result containers: :class:`Record` and :class:`ResultSet`.

Shaped after the Neo4j Python driver: a result has ordered column ``keys``
and a list of records; each record supports access by key or position.
``ResultSet.to_table()`` renders the aligned text table the examples and
benchmarks print.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..graph.model import Node, Path, Relationship

__all__ = ["Record", "ResultSet", "render_value"]


def render_value(value: Any) -> str:
    """Render a Cypher value for display (nodes/rels get a compact form)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value.is_integer() and abs(value) < 1e15:
            return f"{value:.1f}"
        return f"{value:g}"
    if isinstance(value, str):
        return value
    if isinstance(value, Node):
        labels = ":".join(sorted(value.labels))
        props = ", ".join(f"{k}: {render_value(v)}" for k, v in sorted(value.properties.items()))
        return f"(:{labels} {{{props}}})"
    if isinstance(value, Relationship):
        props = ", ".join(f"{k}: {render_value(v)}" for k, v in sorted(value.properties.items()))
        return f"[:{value.rel_type} {{{props}}}]"
    if isinstance(value, Path):
        return f"<path length={value.length}>"
    if isinstance(value, list):
        return "[" + ", ".join(render_value(item) for item in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(f"{k}: {render_value(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    return str(value)


class Record:
    """One result row: ordered (key, value) pairs."""

    __slots__ = ("_keys", "_values")

    def __init__(self, keys: list[str], values: list[Any]) -> None:
        if len(keys) != len(values):
            raise ValueError("keys and values length mismatch")
        self._keys = list(keys)
        self._values = list(values)

    @classmethod
    def of(cls, keys: list[str], values: list[Any]) -> "Record":
        """Adopt ``keys``/``values`` without copying.

        The engine's result materialisation shares one keys list across
        every record of a result set and hands over freshly built value
        lists; both are safe to adopt because every accessor copies on
        the way out.
        """
        record = cls.__new__(cls)
        record._keys = keys
        record._values = values
        return record

    def keys(self) -> list[str]:
        return list(self._keys)

    def values(self) -> list[Any]:
        return list(self._values)

    def items(self) -> list[tuple[str, Any]]:
        return list(zip(self._keys, self._values))

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except (KeyError, IndexError):
            return default

    def to_dict(self) -> dict[str, Any]:
        return dict(zip(self._keys, self._values))

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self._values[key]
        try:
            return self._values[self._keys.index(key)]
        except ValueError:
            raise KeyError(key) from None

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Record)
            and other._keys == self._keys
            and other._values == self._values
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.items())
        return f"Record({inner})"


class ResultSet:
    """An executed query's full output: column keys plus records.

    Also carries write-op counters so callers can report what a mutating
    query changed (à la Neo4j's result summary), and — when execution ran
    with ``profile=True`` — the executed physical operator tree as a
    JSON-safe dict on ``profile`` (rows produced + wall-time per operator).
    """

    def __init__(
        self,
        keys: list[str],
        records: list[Record],
        nodes_created: int = 0,
        relationships_created: int = 0,
        properties_set: int = 0,
        nodes_deleted: int = 0,
        relationships_deleted: int = 0,
    ) -> None:
        self.keys = list(keys)
        self.records = list(records)
        self.nodes_created = nodes_created
        self.relationships_created = relationships_created
        self.properties_set = properties_set
        self.nodes_deleted = nodes_deleted
        self.relationships_deleted = relationships_deleted
        #: executed operator tree (dict), set by ``execute(profile=True)``
        self.profile: dict[str, Any] | None = None

    def single(self) -> Record:
        """Return the only record; raises if there is not exactly one."""
        if len(self.records) != 1:
            raise ValueError(f"expected exactly one record, got {len(self.records)}")
        return self.records[0]

    def value(self, column: int | str = 0, default: Any = None) -> Any:
        """First record's value in ``column`` (or ``default`` when empty)."""
        if not self.records:
            return default
        return self.records[0][column]

    def values(self, column: int | str = 0) -> list[Any]:
        """All records' values in ``column``."""
        return [record[column] for record in self.records]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Records as plain dicts (JSON-friendly once rendered)."""
        return [record.to_dict() for record in self.records]

    def to_table(self, max_rows: int | None = 20) -> str:
        """Render an aligned text table; truncated beyond ``max_rows``."""
        if not self.keys:
            return "(no columns)"
        rows = self.records if max_rows is None else self.records[:max_rows]
        cells = [[render_value(value) for value in record.values()] for record in rows]
        widths = [len(key) for key in self.keys]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(key.ljust(widths[i]) for i, key in enumerate(self.keys))
        separator = "-+-".join("-" * width for width in widths)
        lines = [header, separator]
        for row in cells:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        hidden = len(self.records) - len(rows)
        if hidden > 0:
            lines.append(f"... ({hidden} more rows)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __repr__(self) -> str:
        return f"ResultSet(keys={self.keys}, rows={len(self.records)})"
