"""Physical operators: the pull-based (Volcano-style) execution layer.

The executor lowers each query into a tree of these operators.  Every
operator implements the iterator protocol —

    ``open()`` → repeated ``next()`` (``None`` = exhausted) → ``close()``

— and pulls its input lazily from its children, so a downstream
``Limit``/``TopK`` terminates the entire upstream pipeline early instead
of materialising every intermediate row at each clause boundary.  Only
the genuinely blocking operators (``Sort``, ``Aggregate``, ``StarProject``
and the write barriers) buffer rows; everything else streams.

Cross-cutting runtime concerns live on the shared :class:`RuntimeState`
threaded through every operator:

* **row budget** — every row any operator emits is charged against an
  optional budget; exceeding it raises :class:`ResourceExhausted`, which
  the serving layer maps to graceful degradation instead of an OOM;
* **deadline** — the per-request serving deadline is checked
  cooperatively between ``next()`` calls (every 256 emitted rows), so a
  runaway scan aborts with :class:`CypherDeadlineExceeded` instead of
  blowing past its budget;
* **profiling** — when on, every ``next()``/``open()`` is wall-clock
  timed; rows-produced counters are always maintained.  The counters
  feed the ``PROFILE`` tree rendering (:func:`render_profile`), the
  ``diagnostics["cypher_profile"]`` payload (:func:`profile_tree`) and
  the metrics registry's operator histograms.

Operator rows come in three shapes, matched to the pipeline stage:

* plain binding dicts between clauses,
* ``(row, used)`` pairs between pattern parts of one MATCH clause
  (``used`` is the relationship-uniqueness set),
* ``(row, used, node, path_nodes, path_rels)`` match states inside a
  part's anchor/expand chain,
* ``(values, env_rows)`` projection entries inside a WITH/RETURN
  pipeline (``env_rows`` is what ORDER BY may still need to evaluate).
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from time import perf_counter
from typing import Any, Iterator, Optional

from ..graph.model import Node, Path, Relationship
from . import ast_nodes as ast
from .errors import (
    CypherDeadlineExceeded,
    CypherSyntaxError,
    CypherTypeError,
    ResourceExhausted,
)
from .compile import expression_variables
from .functions import is_aggregate_function
from .values import is_truthy, sort_key

__all__ = [
    "RuntimeState",
    "PhysicalOperator",
    "Init",
    "RowSource",
    "AnchorScan",
    "IndexOrderedScan",
    "Expand",
    "VarLengthExpand",
    "CSRExpand",
    "CSRVarLengthExpand",
    "CSRChain",
    "CSRPartScan",
    "ShortestPath",
    "PartEmit",
    "PartMatch",
    "OptionalMatch",
    "Filter",
    "FusedFilterProject",
    "Unwind",
    "Project",
    "StarProject",
    "Aggregate",
    "Distinct",
    "Sort",
    "Skip",
    "Limit",
    "AsRows",
    "Create",
    "Merge",
    "SetProperties",
    "Delete",
    "Remove",
    "ProduceResults",
    "UnionAppend",
    "render_profile",
    "profile_tree",
    "derive_projection",
]

Row = dict[str, Any]

#: deadline checks happen every this many globally emitted rows
_DEADLINE_STRIDE_MASK = 0xFF


class RuntimeState:
    """Per-execution shared state: row budget, deadline, profiling flag."""

    __slots__ = ("deadline", "budget", "profiled", "rows")

    def __init__(self, deadline=None, budget: Optional[int] = None, profiled: bool = False):
        self.deadline = deadline
        self.budget = budget
        self.profiled = profiled
        #: total rows emitted across *all* operators (the budget currency)
        self.rows = 0

    def check_deadline(self) -> None:
        """Raise when the request deadline has already expired."""
        if self.deadline is not None and self.deadline.expired:
            raise CypherDeadlineExceeded(
                f"query exceeded its deadline after {self.rows} intermediate rows"
            )


class PhysicalOperator:
    """Base operator: children, row counter, wall-time, budget charging.

    Subclasses implement ``_open``/``_next``/``_close``; the public
    ``next()`` wrapper counts every emitted row, charges the shared row
    budget, checks the deadline cooperatively, and (in profile mode)
    accumulates inclusive wall-clock time.  ``open()`` must fully reset
    iteration state — :class:`OptionalMatch` re-opens its sub-pipeline
    once per upstream row.
    """

    name = "Operator"

    def __init__(self, state: RuntimeState, children: tuple = ()) -> None:
        self.state = state
        self.children = list(children)
        self.rows_out = 0
        self.elapsed_s = 0.0
        self.detail = ""
        #: planner cardinality estimate (None = unplanned)
        self.estimate: Optional[float] = None
        #: compilation-state tag shown in EXPLAIN/PROFILE ("[compiled]", "[fused]")
        self.marker = ""

    @property
    def label(self) -> str:
        base = f"{self.name}({self.detail})" if self.detail else self.name
        return f"{base} {self.marker}" if self.marker else base

    def open(self) -> None:
        for child in self.children:
            child.open()
        if self.state.profiled:
            started = perf_counter()
            self._open()
            self.elapsed_s += perf_counter() - started
        else:
            self._open()

    def next(self) -> Any:
        state = self.state
        if state.profiled:
            started = perf_counter()
            row = self._next()
            self.elapsed_s += perf_counter() - started
        else:
            row = self._next()
        if row is not None:
            self.rows_out += 1
            rows = state.rows = state.rows + 1
            if state.budget is not None and rows > state.budget:
                raise ResourceExhausted(
                    f"query exceeded its intermediate row budget ({state.budget} rows)"
                )
            if state.deadline is not None and not (rows & _DEADLINE_STRIDE_MASK):
                state.check_deadline()
        return row

    def close(self) -> None:
        self._close()
        for child in self.children:
            child.close()

    def _open(self) -> None:  # pragma: no cover - trivial default
        pass

    def _next(self) -> Any:
        raise NotImplementedError

    def _close(self) -> None:  # pragma: no cover - trivial default
        pass


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------

class Init(PhysicalOperator):
    """Emits the single empty row every query pipeline starts from."""

    name = "Init"

    def _open(self) -> None:
        self._done = False

    def _next(self) -> Optional[Row]:
        if self._done:
            return None
        self._done = True
        return {}


class RowSource(PhysicalOperator):
    """Single-row leaf an :class:`OptionalMatch` feeds its sub-pipeline from.

    Neo4j calls this ``Argument``: the operator yields exactly the one row
    ``set()`` planted since the last ``open()``.
    """

    name = "Argument"

    def _open(self) -> None:
        self._item: Optional[Row] = None

    def set(self, row: Row) -> None:
        self._item = row

    def _next(self) -> Optional[Row]:
        item = self._item
        self._item = None
        return item


# ---------------------------------------------------------------------------
# MATCH: anchor scans, expansions, part assembly
# ---------------------------------------------------------------------------

class AnchorScan(PhysicalOperator):
    """Candidate scan for a pattern part's anchor node.

    The concrete access path (label scan, hash lookup, range/prefix probe,
    all-nodes scan, bound variable) comes from the planner's
    :class:`~repro.cypher.planner.AnchorPlan`; the operator's ``name``
    reflects it (``LabelScan``, ``HashLookup``, ``RangeLookup``,
    ``PrefixLookup``, ``AllNodesScan``, ``BoundAnchor``).  Emits match
    states; every candidate is still fully verified by the executor's
    ``_bind_node``, so a stale plan can never change results.
    """

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        node_pattern: ast.NodePattern,
        anchor,
        filters,
        track_path: bool,
        from_rows: bool,
        name: str,
        detail: str = "",
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.node_pattern = node_pattern
        self.anchor = anchor
        self.filters = filters
        self.track_path = track_path
        self.from_rows = from_rows
        self.name = name
        self.detail = detail

    def _open(self) -> None:
        self._src: Optional[Iterator[Node]] = None
        self._row: Optional[Row] = None
        self._used: frozenset = frozenset()

    def _next(self) -> Any:
        ctx = self.ctx
        pattern = self.node_pattern
        child = self.children[0]
        while True:
            src = self._src
            if src is not None:
                for node in src:
                    bound = ctx._bind_node(pattern, node, self._row, self.filters)
                    if bound is None:
                        continue
                    if self.track_path:
                        return (bound, self._used, node, [node], [])
                    return (bound, self._used, node, None, None)
                self._src = None
            item = child.next()
            if item is None:
                return None
            if self.from_rows:
                self._row, self._used = item, frozenset()
            else:
                self._row, self._used = item
            self._src = iter(ctx._node_candidates(pattern, self._row, self.anchor))


class IndexOrderedScan(PhysicalOperator):
    """Fused top-k scan streaming a sorted index in ORDER BY key order.

    Emits verified rows straight from the index stream and stops as soon
    as the top ``SKIP + LIMIT`` rows *plus their whole tie group* on the
    primary key are out (the canonical tie-break downstream may still
    reorder equal keys), so neither the full label scan nor the full sort
    ever run.  ``needed == 0`` short-circuits the scan entirely.
    """

    name = "IndexOrderedScan"

    def __init__(
        self,
        state: RuntimeState,
        ctx,
        stream: Iterator[Node],
        node_pattern: ast.NodePattern,
        filters,
        where: Optional[ast.Expr],
        order_expr: ast.Expr,
        descending: bool,
        needed: int,
        detail: str = "",
    ) -> None:
        super().__init__(state)
        self.ctx = ctx
        self._stream = stream
        self.node_pattern = node_pattern
        self.filters = filters
        self.where = where
        self.order_expr = order_expr
        self.descending = descending
        self.needed = needed
        self.detail = detail
        self.where_fn = ctx.compile(where)
        self.order_fn = ctx.compile(order_expr)
        if self.order_fn is not None:
            self.marker = "[compiled]"

    def _open(self) -> None:
        self._count = 0
        self._boundary: Any = None
        self._done = self.needed == 0

    def _next(self) -> Optional[Row]:
        if self._done:
            return None
        ctx = self.ctx
        evaluate = ctx.evaluator.evaluate
        where_fn = self.where_fn
        order_fn = self.order_fn
        for node in self._stream:
            row = ctx._bind_node(self.node_pattern, node, {}, self.filters)
            if row is None:
                continue
            if self.where is not None:
                passed = (
                    where_fn(ctx, row) if where_fn is not None
                    else evaluate(self.where, row)
                )
                if is_truthy(passed) is not True:
                    continue
            if order_fn is not None:
                key = sort_key(order_fn(ctx, row))
            else:
                key = sort_key(evaluate(self.order_expr, row))
            if self.descending:
                key = _Descending(key)
            if self._count >= self.needed and self._boundary < key:
                break
            self._count += 1
            if self._count == self.needed:
                self._boundary = key
            return row
        self._done = True
        return None


class Expand(PhysicalOperator):
    """One relationship hop: input match states fan out along adjacency.

    Carries the whole per-hop protocol of the recursive matcher it
    replaced: relationship-uniqueness bookkeeping, rel-variable binding
    and rebinding consistency, pushed single-rel filters, endpoint
    verification, and path extension when a path variable is tracked.
    """

    name = "Expand"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        rel_pattern: ast.RelPattern,
        node_pattern: ast.NodePattern,
        filters,
        maintain_used: bool,
        detail: str = "",
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.rel_pattern = rel_pattern
        self.node_pattern = node_pattern
        self.filters = filters
        self.maintain_used = maintain_used
        self.detail = detail

    def _open(self) -> None:
        self._steps: Optional[Iterator] = None
        self._base: Any = None

    def _next(self) -> Any:
        ctx = self.ctx
        rel_pattern = self.rel_pattern
        node_pattern = self.node_pattern
        filters = self.filters
        child = self.children[0]
        while True:
            steps = self._steps
            if steps is not None:
                row, used, current, nodes, rels = self._base
                for step_rels, end_node in steps:
                    if self.maintain_used:
                        new_used = used | {rel.rel_id for rel in step_rels}
                    else:
                        new_used = used
                    if rel_pattern.variable is not None:
                        bound_value: Any = (
                            list(step_rels) if rel_pattern.var_length else step_rels[0]
                        )
                        if rel_pattern.variable in row:
                            if not _same_rel_binding(row[rel_pattern.variable], bound_value):
                                continue
                            rel_row = row
                        else:
                            if (
                                filters
                                and not rel_pattern.var_length
                                and not ctx._passes_filters(
                                    step_rels[0].properties,
                                    filters.get(rel_pattern.variable),
                                )
                            ):
                                continue
                            rel_row = dict(row)
                            rel_row[rel_pattern.variable] = bound_value
                    else:
                        rel_row = row
                    end_row = ctx._bind_node(node_pattern, end_node, rel_row, filters)
                    if end_row is None:
                        continue
                    if nodes is None:
                        next_nodes = None
                        next_rels = None
                    elif rel_pattern.var_length:
                        # Include intermediate nodes so bound paths are complete.
                        step_nodes = []
                        cursor = current
                        for rel in step_rels:
                            cursor = ctx.store.node(rel.other_end(cursor.node_id))
                            step_nodes.append(cursor)
                        if not step_rels:
                            step_nodes = []
                        next_nodes = nodes + step_nodes
                        if not step_rels and end_node.node_id != current.node_id:
                            next_nodes = nodes + [end_node]
                        next_rels = rels + list(step_rels)
                    else:
                        next_nodes = nodes + [end_node]
                        next_rels = rels + list(step_rels)
                    return (end_row, new_used, end_node, next_nodes, next_rels)
                self._steps = None
                continue
            item = child.next()
            if item is None:
                return None
            self._base = item
            row, used, current, _nodes, _rels = item
            if rel_pattern.var_length:
                self._steps = ctx._expand_var_length(rel_pattern, current, row, used)
            else:
                self._steps = iter(ctx._expand_single(rel_pattern, current, row, used))


class VarLengthExpand(Expand):
    """Variable-length hop (``-[*m..n]->``); shares :class:`Expand`'s body."""

    name = "VarLengthExpand"


#: sentinel distinguishing "variable absent" from "variable bound to None"
_MISSING = object()


class CSRExpand(Expand):
    """Single hop over the CSR snapshot's adjacency arrays.

    Walks the snapshot's per-ordinal ``(neighbor, rel_id)`` list rows —
    sorted by rel id, exactly the dict path's enumeration order — so the
    emitted match states are bit-identical to :class:`Expand` while never
    materialising :class:`Relationship` objects (the used-set holds plain
    rel ids) unless a bound path needs them.  Only lowered for hops with
    no relationship variable and no relationship properties; anything
    else keeps the dict-path operator.  If the store mutates mid-query
    (never for the read-only trees this is lowered for; defensive), the
    operator degrades permanently to :class:`Expand`'s dict path.
    """

    name = "Expand"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        rel_pattern: ast.RelPattern,
        node_pattern: ast.NodePattern,
        filters,
        maintain_used: bool,
        snapshot,
        detail: str = "",
    ) -> None:
        super().__init__(
            state, child, ctx, rel_pattern, node_pattern, filters, maintain_used, detail
        )
        self.snapshot = snapshot
        self.marker = "[csr]"
        self._neighbor_rows, self._rel_rows = snapshot.lists(
            rel_pattern.direction, rel_pattern.types or None
        )
        self._nodes_by_ordinal = snapshot.nodes
        self._ordinal_of = snapshot.ordinal_of
        self._label_ok = snapshot.label_row(node_pattern.labels)
        self._relationships = ctx.store._relationships
        self._var = node_pattern.variable
        self._simple_bind = not node_pattern.properties and not (
            filters and self._var is not None and filters.get(self._var)
        )

    def _open(self) -> None:
        super()._open()
        self._stale = False
        self._cur_others: Optional[list[int]] = None
        self._cur_rels: Optional[list[int]] = None
        self._cur_index = 0

    def _bind_target(self, node: Node, row: Row) -> Optional[Row]:
        """Bind the hop's target node; the fast path inlines ``_bind_node``."""
        if self._simple_bind:
            var = self._var
            if var is None:
                return row
            existing = row.get(var, _MISSING)
            if existing is _MISSING:
                bound = dict(row)
                bound[var] = node
                return bound
            if isinstance(existing, Node) and existing.node_id == node.node_id:
                return row
            return None
        return self.ctx._bind_node(self.node_pattern, node, row, self.filters)

    def _next(self) -> Any:
        if self._stale:
            return Expand._next(self)
        ctx = self.ctx
        child = self.children[0]
        while True:
            others = self._cur_others
            if others is not None:
                row, used, _current, nodes, rels_path = self._base
                rels = self._cur_rels
                label_ok = self._label_ok
                nodes_by_ordinal = self._nodes_by_ordinal
                index = self._cur_index
                count = len(others)
                while index < count:
                    rel_id = rels[index]
                    ordinal = others[index]
                    index += 1
                    if rel_id in used:
                        continue
                    if label_ok is not None and not label_ok[ordinal]:
                        continue
                    node = nodes_by_ordinal[ordinal]
                    end_row = self._bind_target(node, row)
                    if end_row is None:
                        continue
                    self._cur_index = index
                    new_used = used | {rel_id} if self.maintain_used else used
                    if nodes is None:
                        return (end_row, new_used, node, None, None)
                    rel = self._relationships[rel_id]
                    return (end_row, new_used, node, nodes + [node], rels_path + [rel])
                self._cur_others = None
            item = child.next()
            if item is None:
                return None
            self._base = item
            row, used, current, _nodes, _rels = item
            if ctx.store._stats_version != self.snapshot.version:
                # Mutated mid-query: finish on the live dict path.
                self._stale = True
                self._steps = iter(ctx._expand_single(self.rel_pattern, current, row, used))
                return Expand._next(self)
            ordinal = self._ordinal_of[current.node_id]
            self._cur_others = self._neighbor_rows[ordinal]
            self._cur_rels = self._rel_rows[ordinal]
            self._cur_index = 0


class CSRVarLengthExpand(CSRExpand):
    """Variable-length hop walked over the CSR snapshot's list rows.

    The depth-first walk visits edges in the snapshot's rel-id row order —
    identical to the dict path's ``adjacent_relationships`` order — with
    per-path edge uniqueness tracked as a plain rel-id tuple, so path
    enumeration (and every downstream DISTINCT/aggregate) is
    bit-identical.  Lowering eligibility matches :class:`CSRExpand`
    (no rel variable, no rel properties) plus no bound path variable.
    """

    name = "VarLengthExpand"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        rel_pattern = self.rel_pattern
        limit = self.ctx.max_var_length
        self._min_hops = rel_pattern.min_hops if rel_pattern.min_hops is not None else 1
        max_hops = rel_pattern.max_hops if rel_pattern.max_hops is not None else limit
        self._max_hops = min(max_hops, limit)

    def _open(self) -> None:
        super()._open()
        self._csr_steps: Optional[Iterator] = None

    def _walk_steps(self, start_ordinal: int, used) -> Iterator[tuple[tuple, int]]:
        """Yield ``(rel_id_tuple, target_ordinal)`` in dict-path DFS order."""
        if self._min_hops == 0:
            yield (), start_ordinal
        neighbor_rows = self._neighbor_rows
        rel_rows = self._rel_rows
        min_hops = self._min_hops
        max_hops = self._max_hops

        def walk(ordinal: int, taken: tuple) -> Iterator[tuple[tuple, int]]:
            if len(taken) >= max_hops:
                return
            others = neighbor_rows[ordinal]
            rels = rel_rows[ordinal]
            for index in range(len(others)):
                rel_id = rels[index]
                if rel_id in used or rel_id in taken:
                    continue
                target = others[index]
                extended = taken + (rel_id,)
                if len(extended) >= min_hops:
                    yield extended, target
                yield from walk(target, extended)

        yield from walk(start_ordinal, ())

    def _next(self) -> Any:
        if self._stale:
            return Expand._next(self)
        ctx = self.ctx
        child = self.children[0]
        while True:
            steps = self._csr_steps
            if steps is not None:
                row, used, _current, _nodes, _rels = self._base
                label_ok = self._label_ok
                nodes_by_ordinal = self._nodes_by_ordinal
                maintain_used = self.maintain_used
                for rel_ids, ordinal in steps:
                    if label_ok is not None and not label_ok[ordinal]:
                        continue
                    node = nodes_by_ordinal[ordinal]
                    end_row = self._bind_target(node, row)
                    if end_row is None:
                        continue
                    new_used = used | set(rel_ids) if maintain_used else used
                    return (end_row, new_used, node, None, None)
                self._csr_steps = None
            item = child.next()
            if item is None:
                return None
            self._base = item
            row, used, current, _nodes, _rels = item
            if ctx.store._stats_version != self.snapshot.version:
                self._stale = True
                self._steps = ctx._expand_var_length(self.rel_pattern, current, row, used)
                return Expand._next(self)
            ordinal = self._ordinal_of[current.node_id]
            self._csr_steps = self._walk_steps(ordinal, used)


class CSRChain:
    """The hop chain of a CSR-eligible pattern part — the shared traversal core.

    Owns the per-hop metadata (adjacency list rows, label bitsets, bind
    strategy) and the depth-first descend over them.  Both
    :class:`CSRPartScan` and the engine's compiled fast path traverse
    through one of these, so their enumeration order is identical by
    construction: every hop visits edges in the snapshot's rel-id row
    order, exactly the dict path's ``adjacent_relationships`` order.
    """

    __slots__ = (
        "ctx", "filters", "maintain_used", "snapshot",
        "nodes_by_ordinal", "ordinal_of", "hops",
    )

    def __init__(self, ctx, snapshot, elements: list, filters, maintain_used: bool):
        self.ctx = ctx
        self.filters = filters
        self.maintain_used = maintain_used
        self.snapshot = snapshot
        self.nodes_by_ordinal = snapshot.nodes
        self.ordinal_of = snapshot.ordinal_of
        limit = ctx.max_var_length
        hops = []
        for index in range(1, len(elements), 2):
            rel_pattern = elements[index]
            node_pattern = elements[index + 1]
            assert isinstance(rel_pattern, ast.RelPattern)
            assert isinstance(node_pattern, ast.NodePattern)
            neighbor_rows, rel_rows = snapshot.lists(
                rel_pattern.direction, rel_pattern.types or None
            )
            var = node_pattern.variable
            simple_bind = not node_pattern.properties and not (
                filters and var is not None and filters.get(var)
            )
            if rel_pattern.var_length:
                min_hops = rel_pattern.min_hops if rel_pattern.min_hops is not None else 1
                max_hops = rel_pattern.max_hops if rel_pattern.max_hops is not None else limit
                max_hops = min(max_hops, limit)
            else:
                min_hops = max_hops = 1
            hops.append((
                neighbor_rows,
                rel_rows,
                snapshot.label_row(node_pattern.labels),
                var,
                simple_bind,
                node_pattern,
                rel_pattern.var_length,
                min_hops,
                max_hops,
            ))
        self.hops = hops

    def descend(
        self, hop_index: int, row: Row, used, ordinal: int, emit_row: bool
    ) -> Iterator:
        """Depth-first walk of the remaining hops from ``ordinal``.

        Yields plain rows (``emit_row``) or ``(row, used)`` pairs, in the
        exact order the unfused ``Expand`` chain would emit them.
        """
        if hop_index == len(self.hops):
            yield row if emit_row else (row, used)
            return
        hop = self.hops[hop_index]
        (neighbor_rows, rel_rows, label_ok, var, simple_bind, node_pattern,
         var_length, min_hops, max_hops) = hop
        nodes_by_ordinal = self.nodes_by_ordinal
        maintain_used = self.maintain_used
        next_hop = hop_index + 1
        if var_length:
            steps = self._var_steps(
                neighbor_rows, rel_rows, ordinal, used, min_hops, max_hops
            )
            for rel_ids, target in steps:
                if label_ok is not None and not label_ok[target]:
                    continue
                node = nodes_by_ordinal[target]
                bound = self._bind_hop(simple_bind, var, node_pattern, node, row)
                if bound is None:
                    continue
                new_used = used | set(rel_ids) if maintain_used else used
                yield from self.descend(next_hop, bound, new_used, target, emit_row)
            return
        others = neighbor_rows[ordinal]
        rels = rel_rows[ordinal]
        for index in range(len(others)):
            rel_id = rels[index]
            if rel_id in used:
                continue
            target = others[index]
            if label_ok is not None and not label_ok[target]:
                continue
            node = nodes_by_ordinal[target]
            bound = self._bind_hop(simple_bind, var, node_pattern, node, row)
            if bound is None:
                continue
            new_used = used | {rel_id} if maintain_used else used
            yield from self.descend(next_hop, bound, new_used, target, emit_row)

    def _bind_hop(self, simple_bind, var, node_pattern, node, row) -> Optional[Row]:
        if simple_bind:
            if var is None:
                return row
            existing = row.get(var, _MISSING)
            if existing is _MISSING:
                bound = dict(row)
                bound[var] = node
                return bound
            if isinstance(existing, Node) and existing.node_id == node.node_id:
                return row
            return None
        return self.ctx._bind_node(node_pattern, node, row, self.filters)

    @staticmethod
    def _var_steps(
        neighbor_rows, rel_rows, start_ordinal, used, min_hops, max_hops
    ) -> Iterator[tuple[tuple, int]]:
        if min_hops == 0:
            yield (), start_ordinal

        def walk(ordinal: int, taken: tuple) -> Iterator[tuple[tuple, int]]:
            if len(taken) >= max_hops:
                return
            others = neighbor_rows[ordinal]
            rels = rel_rows[ordinal]
            for index in range(len(others)):
                rel_id = rels[index]
                if rel_id in used or rel_id in taken:
                    continue
                target = others[index]
                extended = taken + (rel_id,)
                if len(extended) >= min_hops:
                    yield extended, target
                yield from walk(target, extended)

        yield from walk(start_ordinal, ())


class CSRPartScan(PhysicalOperator):
    """One whole planned pattern part fused over the CSR snapshot.

    Collapses the ``AnchorScan → Expand* → Match`` chain into a single
    operator that walks the snapshot's adjacency rows directly: anchor
    candidates still come from the planner's access path (and are fully
    verified by ``_bind_node``), but every hop then runs as a tight loop
    over CSR list rows with int rel ids — no per-hop operator boundary,
    no ``Relationship`` materialisation, no intermediate match-state
    tuples.  Enumeration order equals the unfused chain's depth-first
    order, so output rows are bit-identical.

    Only lowered when nothing observes the per-operator stream: no
    PROFILE, no deadline, no row budget (those modes keep the per-hop
    ``[csr]`` operators), and only for parts with no path variable, no
    relationship variables and no relationship properties.
    """

    name = "PartScan"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        part: ast.PatternPart,
        part_plan,
        elements: list,
        filters,
        snapshot,
        from_rows: bool,
        emit_row: bool,
        maintain_used: bool,
        detail: str = "",
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.part = part
        self.part_plan = part_plan
        self.anchor = part_plan.anchor
        self.filters = filters
        self.snapshot = snapshot
        self.from_rows = from_rows
        self.emit_row = emit_row
        self.maintain_used = maintain_used
        self.detail = detail
        self.marker = "[csr]"
        first = elements[0]
        assert isinstance(first, ast.NodePattern)
        self.anchor_pattern = first
        self._chain = CSRChain(ctx, snapshot, elements, filters, maintain_used)

    def _open(self) -> None:
        self._gen: Optional[Iterator] = None

    def _next(self) -> Any:
        child = self.children[0]
        while True:
            gen = self._gen
            if gen is not None:
                emitted = next(gen, None)
                if emitted is not None:
                    return emitted
                self._gen = None
            item = child.next()
            if item is None:
                return None
            if self.from_rows:
                row, used = item, frozenset()
            else:
                row, used = item
            if self.ctx.store._stats_version != self.snapshot.version:
                # Mutated mid-query (defensive): dict-path part matcher.
                self._gen = iter(self._fallback(row, used))
            else:
                self._gen = self._run(row, used)

    def _fallback(self, row: Row, used) -> list:
        results = []
        for matched, used_after in self.ctx._match_part(
            self.part, row, used, self.part_plan, self.filters,
            update_used=self.maintain_used,
        ):
            results.append(matched if self.emit_row else (matched, used_after))
        return results

    def _run(self, row: Row, used) -> Iterator:
        ctx = self.ctx
        anchor_pattern = self.anchor_pattern
        chain = self._chain
        ordinal_of = chain.ordinal_of
        filters = self.filters
        emit_row = self.emit_row
        for node in ctx._node_candidates(anchor_pattern, row, self.anchor):
            bound = ctx._bind_node(anchor_pattern, node, row, filters)
            if bound is None:
                continue
            ordinal = ordinal_of.get(node.node_id)
            if ordinal is None:  # pragma: no cover - fresh snapshots cover all ids
                continue
            yield from chain.descend(0, bound, used, ordinal, emit_row)


class ShortestPath(PhysicalOperator):
    """``shortestPath()`` / ``allShortestPaths()`` BFS for one pattern part."""

    name = "ShortestPath"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        part: ast.PatternPart,
        filters,
        from_rows: bool,
        emit_row: bool,
        detail: str = "",
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.part = part
        self.filters = filters
        self.from_rows = from_rows
        self.emit_row = emit_row
        self.detail = detail

    def _open(self) -> None:
        self._gen: Optional[Iterator] = None

    def _next(self) -> Any:
        child = self.children[0]
        while True:
            gen = self._gen
            if gen is not None:
                for matched, used_after in gen:
                    if self.emit_row:
                        return matched
                    return (matched, used_after)
                self._gen = None
            item = child.next()
            if item is None:
                return None
            row, used = (item, frozenset()) if self.from_rows else item
            self._gen = iter(self.ctx._match_shortest(self.part, row, used, self.filters))


class PartEmit(PhysicalOperator):
    """Completes one pattern part: binds the path variable, emits the row.

    Its row counter is the "rows matched by this pattern part" figure the
    old per-clause profile reported, hence the ``Match`` display name.
    Emits ``(row, used)`` pairs for the next part, or plain rows when the
    part is the clause's last and no residual WHERE follows.
    """

    name = "Match"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        part: ast.PatternPart,
        reversed_part: bool,
        emit_row: bool,
        detail: str = "",
    ) -> None:
        super().__init__(state, (child,))
        self.part = part
        self.reversed_part = reversed_part
        self.emit_row = emit_row
        self.detail = detail

    def _next(self) -> Any:
        item = self.children[0].next()
        if item is None:
            return None
        row, used, _node, nodes, rels = item
        path_variable = self.part.path_variable
        if path_variable is not None:
            path_nodes = list(reversed(nodes)) if self.reversed_part else nodes
            path_rels = list(reversed(rels)) if self.reversed_part else rels
            row = dict(row)
            row[path_variable] = Path(path_nodes, path_rels)
        if self.emit_row:
            return row
        return (row, used)


class PartMatch(PhysicalOperator):
    """Unplanned part matcher: defers to the executor's heuristic matcher.

    Without a plan, traversal direction depends on which variables the
    incoming row happens to bind — a per-row decision a static operator
    chain cannot replicate — so the planner-off escape hatch streams the
    row-at-a-time output of the original ``_match_part`` verbatim.  Its
    memory high-water mark is one input row's fan-out, not the whole
    clause output.
    """

    name = "Match"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        part: ast.PatternPart,
        from_rows: bool,
        update_used: bool,
        emit_row: bool,
        detail: str = "",
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.part = part
        self.from_rows = from_rows
        self.update_used = update_used
        self.emit_row = emit_row
        self.detail = detail

    def _open(self) -> None:
        self._pending: Optional[list] = None
        self._index = 0

    def _next(self) -> Any:
        child = self.children[0]
        while True:
            pending = self._pending
            if pending is not None:
                i = self._index
                if i < len(pending):
                    self._index = i + 1
                    row, used = pending[i]
                    if self.emit_row:
                        return row
                    return (row, used)
                self._pending = None
            item = child.next()
            if item is None:
                return None
            row, used = (item, frozenset()) if self.from_rows else item
            self._pending = list(
                self.ctx._match_part(
                    self.part, row, used, None, None, update_used=self.update_used
                )
            )
            self._index = 0


class OptionalMatch(PhysicalOperator):
    """OPTIONAL MATCH: per upstream row, run the pattern sub-pipeline.

    The sub-pipeline (parts + residual WHERE) hangs off a
    :class:`RowSource` leaf; for each upstream row the operator plants the
    row, re-opens the sub-tree and streams its matches.  When a row
    produces none, it is emitted once padded with nulls for every
    variable the pattern could have bound.
    """

    name = "OptionalMatch"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        subroot: PhysicalOperator,
        source: RowSource,
        new_variables: list[str],
        detail: str = "",
    ) -> None:
        super().__init__(state, (child, subroot))
        self.subroot = subroot
        self.source = source
        self.new_variables = new_variables
        self.detail = detail

    def _open(self) -> None:
        self._current: Optional[Row] = None
        self._matched = False
        self._active = False

    def _next(self) -> Optional[Row]:
        child = self.children[0]
        while True:
            if self._active:
                out = self.subroot.next()
                if out is not None:
                    self._matched = True
                    return out
                self._active = False
                if not self._matched:
                    padded = dict(self._current)
                    for name in self.new_variables:
                        padded.setdefault(name, None)
                    return padded
                continue
            row = child.next()
            if row is None:
                return None
            self._current = row
            self._matched = False
            self._active = True
            self.subroot.open()
            self.source.set(row)


class Filter(PhysicalOperator):
    """Residual WHERE: keeps rows whose predicate is ternary-true.

    ``pairs_in`` consumes the ``(row, used)`` pairs a MATCH part chain
    emits (the clause boundary drops the uniqueness set); otherwise plain
    rows, as after a WITH projection.  Always emits plain rows.
    """

    name = "Filter"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        predicate: ast.Expr,
        pairs_in: bool,
        detail: str = "WHERE",
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.predicate = predicate
        self.pairs_in = pairs_in
        self.detail = detail
        self.predicate_fn = ctx.compile(predicate)
        if self.predicate_fn is not None:
            self.marker = "[compiled]"

    def _next(self) -> Optional[Row]:
        child = self.children[0]
        ctx = self.ctx
        pairs = self.pairs_in
        predicate_fn = self.predicate_fn
        if predicate_fn is not None:
            while True:
                item = child.next()
                if item is None:
                    return None
                row = item[0] if pairs else item
                if is_truthy(predicate_fn(ctx, row)) is True:
                    return row
        evaluate = ctx.evaluator.evaluate
        predicate = self.predicate
        while True:
            item = child.next()
            if item is None:
                return None
            row = item[0] if pairs else item
            if is_truthy(evaluate(predicate, row)) is True:
                return row


class FusedFilterProject(PhysicalOperator):
    """Fused Filter→…→Project chain: one compiled callable per row.

    The lowering collapses a run of adjacent compiled ``Filter`` operators
    directly feeding a non-aggregated projection into this single
    operator, eliding the per-operator ``next()`` wrapper (budget charge,
    deadline stride, profiling timer) between them.  ``predicate_fns``
    are in evaluation order (innermost filter first), preserving WHERE
    side-effect/error order.  Emits ``(values, [row])`` projection
    entries, exactly like :class:`Project`.
    """

    name = "FilterProject"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        items: list,
        keys: list[str],
        predicate_fns: tuple,
        item_fns: tuple,
        detail: str = "",
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.items = items
        self.keys = keys
        self.aggregated = False
        self.predicate_fns = predicate_fns
        self.item_fns = item_fns
        self.detail = detail or ", ".join(keys)
        self.marker = "[fused]"

    def _next(self) -> Any:
        child = self.children[0]
        ctx = self.ctx
        predicate_fns = self.predicate_fns
        item_fns = self.item_fns
        while True:
            row = child.next()
            if row is None:
                return None
            ok = True
            for fn in predicate_fns:
                if is_truthy(fn(ctx, row)) is not True:
                    ok = False
                    break
            if not ok:
                continue
            return ([fn(ctx, row) for fn in item_fns], [row])


class Unwind(PhysicalOperator):
    """UNWIND: one output row per list element (null unwinds to nothing)."""

    name = "Unwind"

    def __init__(self, state: RuntimeState, child: PhysicalOperator, ctx, clause) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.clause = clause
        self.detail = clause.variable
        self.expression_fn = ctx.compile(clause.expression)
        if self.expression_fn is not None:
            self.marker = "[compiled]"

    def _open(self) -> None:
        self._items: Optional[list] = None
        self._row: Optional[Row] = None
        self._index = 0

    def _next(self) -> Optional[Row]:
        child = self.children[0]
        clause = self.clause
        while True:
            items = self._items
            if items is not None:
                i = self._index
                if i < len(items):
                    self._index = i + 1
                    new_row = dict(self._row)
                    new_row[clause.variable] = items[i]
                    return new_row
                self._items = None
            row = child.next()
            if row is None:
                return None
            fn = self.expression_fn
            if fn is not None:
                value = fn(self.ctx, row)
            else:
                value = self.ctx.evaluator.evaluate(clause.expression, row)
            if value is None:
                continue
            if not isinstance(value, list):
                value = [value]
            self._row = row
            self._items = value
            self._index = 0


# ---------------------------------------------------------------------------
# Projection pipeline (WITH / RETURN)
# ---------------------------------------------------------------------------

def derive_projection(
    clause: ast.ProjectionClause, in_scope: list[str]
) -> tuple[list, list[str], bool, list[int]]:
    """Resolve a projection clause's items/keys/aggregation/grouping.

    ``in_scope`` is the sorted variable scope a ``RETURN *`` expands to
    (ignored for non-star clauses).
    """
    items = list(clause.items)
    if clause.star:
        star_items = [
            ast.ReturnItem(expression=ast.Variable(name), alias=name)
            for name in in_scope
        ]
        items = star_items + items
    if not items:
        raise CypherSyntaxError("projection requires at least one item")
    keys = [item.output_name() for item in items]
    aggregated = any(_contains_aggregate(item.expression) for item in items)
    grouping_indices = [
        i for i, item in enumerate(items) if not _contains_aggregate(item.expression)
    ]
    return items, keys, aggregated, grouping_indices


class Project(PhysicalOperator):
    """Streaming projection: one ``(values, [row])`` entry per input row."""

    name = "Project"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        items: list,
        keys: list[str],
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.items = items
        self.keys = keys
        self.aggregated = False
        self.detail = ", ".join(keys)
        fns = [ctx.compile(item.expression) for item in items]
        self.item_fns = tuple(fns) if all(fn is not None for fn in fns) else None
        if self.item_fns is not None:
            self.marker = "[compiled]"

    def _next(self) -> Any:
        row = self.children[0].next()
        if row is None:
            return None
        ctx = self.ctx
        item_fns = self.item_fns
        if item_fns is not None:
            return ([fn(ctx, row) for fn in item_fns], [row])
        evaluate = ctx.evaluator.evaluate
        return ([evaluate(item.expression, row) for item in self.items], [row])


class StarProject(PhysicalOperator):
    """``RETURN *`` projection: blocking, because the output columns are
    the union of variable names across *all* input rows."""

    name = "Project"

    def __init__(self, state: RuntimeState, child: PhysicalOperator, ctx, clause) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.clause = clause
        self.items: list = []
        self.keys: list[str] = []
        self.aggregated = False
        self.detail = "*"

    def _open(self) -> None:
        child = self.children[0]
        rows: list[Row] = []
        while (row := child.next()) is not None:
            rows.append(row)
        in_scope = sorted({name for row in rows for name in row})
        self.items, self.keys, self.aggregated, _ = derive_projection(
            self.clause, in_scope
        )
        self._rows = rows
        self._index = 0

    def _next(self) -> Any:
        i = self._index
        if i >= len(self._rows):
            return None
        self._index = i + 1
        row = self._rows[i]
        evaluate = self.ctx.evaluator.evaluate
        return ([evaluate(item.expression, row) for item in self.items], [row])


class Aggregate(PhysicalOperator):
    """Grouped aggregation: blocking by nature (groups need every row).

    Produces one ``(values, group_rows)`` entry per group, in first-seen
    group order; a global aggregate over zero rows still produces its one
    row (``count(*) = 0``).
    """

    name = "Aggregate"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        clause,
        meta: Optional[tuple] = None,
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.clause = clause
        self.meta = meta
        self.items: list = []
        self.keys: list[str] = []
        self.aggregated = True
        if meta is not None:
            self.items, self.keys = meta[0], meta[1]
            self.detail = ", ".join(self.keys)

    def _open(self) -> None:
        child = self.children[0]
        rows: list[Row] = []
        while (row := child.next()) is not None:
            rows.append(row)
        if self.meta is not None:
            items, keys, _, grouping_indices = self.meta
        else:
            in_scope = sorted({name for row in rows for name in row})
            items, keys, _, grouping_indices = derive_projection(self.clause, in_scope)
        self.items = items
        self.keys = keys
        grouping_fns = None
        if grouping_indices:
            fns = [self.ctx.compile(items[i].expression) for i in grouping_indices]
            if all(fn is not None for fn in fns):
                grouping_fns = tuple(fns)
                self.marker = "[compiled]"
        self._produced = _project_grouped(
            self.ctx, rows, items, grouping_indices, grouping_fns
        )
        self._index = 0

    def _next(self) -> Any:
        i = self._index
        if i >= len(self._produced):
            return None
        self._index = i + 1
        return self._produced[i]


class Distinct(PhysicalOperator):
    """Streaming DISTINCT over projection entries (first occurrence wins)."""

    name = "Distinct"

    def _open(self) -> None:
        self._seen: set = set()

    def _next(self) -> Any:
        child = self.children[0]
        seen = self._seen
        while True:
            entry = child.next()
            if entry is None:
                return None
            frozen = _freeze(entry[0])
            if frozen in seen:
                continue
            seen.add(frozen)
            return entry


class Sort(PhysicalOperator):
    """ORDER BY: blocking sort of projection entries.

    With ``top`` set (SKIP + LIMIT known) the operator is a TopK:
    ``heapq.nsmallest`` bounded selection, never a full sort.  Every
    entry's composite key — ORDER BY values plus the canonical projected-
    value tie-break that keeps planner-on/off output identical — is
    evaluated exactly once.
    """

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        ctx,
        order_by,
        projection,
        top: Optional[int] = None,
    ) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.order_by = order_by
        #: the Project/Aggregate feeding this sort; its items/keys may only
        #: resolve at open time (``RETURN *``), so they are read lazily
        self.projection = projection
        self.top = top
        self.name = "TopK" if top is not None else "Sort"
        self.detail = f"{len(order_by)} keys" + (f", top {top}" if top is not None else "")
        if getattr(ctx, "compiler", None) is not None:
            self.marker = "[compiled]"

    def _open(self) -> None:
        self._buffer: Optional[list] = None
        self._index = 0

    def _next(self) -> Any:
        if self._buffer is None:
            child = self.children[0]
            entries = []
            while (entry := child.next()) is not None:
                entries.append(entry)
            projection = self.projection
            self._buffer = _order(
                self.ctx,
                entries,
                self.order_by,
                projection.items,
                projection.keys,
                projection.aggregated,
                self.top,
            )
        i = self._index
        if i >= len(self._buffer):
            return None
        self._index = i + 1
        return self._buffer[i]


class Skip(PhysicalOperator):
    """SKIP: discards the first ``count`` entries, then streams."""

    name = "Skip"

    def __init__(self, state: RuntimeState, child: PhysicalOperator, count: int) -> None:
        super().__init__(state, (child,))
        self.count = count
        self.detail = str(count)

    def _open(self) -> None:
        self._remaining = self.count

    def _next(self) -> Any:
        child = self.children[0]
        while self._remaining > 0:
            self._remaining -= 1
            if child.next() is None:
                self._remaining = 0
                return None
        return child.next()


class Limit(PhysicalOperator):
    """LIMIT: stops pulling upstream after ``count`` entries — the early
    termination the whole streaming refactor exists for."""

    name = "Limit"

    def __init__(self, state: RuntimeState, child: PhysicalOperator, count: int) -> None:
        super().__init__(state, (child,))
        self.count = count
        self.detail = str(count)

    def _open(self) -> None:
        self._remaining = self.count

    def _next(self) -> Any:
        if self._remaining <= 0:
            return None
        entry = self.children[0].next()
        if entry is None:
            self._remaining = 0
            return None
        self._remaining -= 1
        return entry


class AsRows(PhysicalOperator):
    """WITH boundary: projection entries back to plain binding rows."""

    name = "Rows"

    def __init__(
        self, state: RuntimeState, child: PhysicalOperator, projection
    ) -> None:
        super().__init__(state, (child,))
        self.projection = projection

    def _next(self) -> Optional[Row]:
        entry = self.children[0].next()
        if entry is None:
            return None
        return dict(zip(self.projection.keys, entry[0]))


# ---------------------------------------------------------------------------
# Write barriers
# ---------------------------------------------------------------------------

class _WriteBarrier(PhysicalOperator):
    """Write clauses are full barriers: Cypher's clause-boundary semantics
    require every upstream row to exist before any write applies (and any
    later clause observes the mutated graph)."""

    def __init__(self, state: RuntimeState, child: PhysicalOperator, ctx, clause) -> None:
        super().__init__(state, (child,))
        self.ctx = ctx
        self.clause = clause

    def _open(self) -> None:
        self._out: Optional[list[Row]] = None
        self._index = 0

    def apply(self, rows: list[Row]) -> list[Row]:
        raise NotImplementedError

    def _next(self) -> Optional[Row]:
        if self._out is None:
            child = self.children[0]
            rows: list[Row] = []
            while (row := child.next()) is not None:
                rows.append(row)
            self._out = self.apply(rows)
        i = self._index
        if i >= len(self._out):
            return None
        self._index = i + 1
        return self._out[i]


class Create(_WriteBarrier):
    name = "Create"

    def apply(self, rows: list[Row]) -> list[Row]:
        return self.ctx.apply_create(rows, self.clause)


class Merge(_WriteBarrier):
    name = "Merge"

    def apply(self, rows: list[Row]) -> list[Row]:
        return self.ctx.apply_merge(rows, self.clause)


class SetProperties(_WriteBarrier):
    name = "Set"

    def apply(self, rows: list[Row]) -> list[Row]:
        return self.ctx.apply_set(rows, self.clause)


class Delete(_WriteBarrier):
    name = "Delete"

    def apply(self, rows: list[Row]) -> list[Row]:
        return self.ctx.apply_delete(rows, self.clause)


class Remove(_WriteBarrier):
    name = "Remove"

    def apply(self, rows: list[Row]) -> list[Row]:
        return self.ctx.apply_remove(rows, self.clause)


# ---------------------------------------------------------------------------
# Result production
# ---------------------------------------------------------------------------

class ProduceResults(PhysicalOperator):
    """Pipeline root: projection entries → result value lists.

    Without a RETURN clause (pure write queries) the operator drains its
    child so every write barrier fires, and yields nothing.
    """

    name = "ProduceResults"

    def __init__(
        self,
        state: RuntimeState,
        child: PhysicalOperator,
        projection=None,
    ) -> None:
        super().__init__(state, (child,))
        self.projection = projection
        if projection is not None and projection.keys:
            self.detail = ", ".join(projection.keys)

    @property
    def keys(self) -> list[str]:
        return list(self.projection.keys) if self.projection is not None else []

    def _next(self) -> Optional[list[Any]]:
        child = self.children[0]
        if self.projection is None:
            while child.next() is not None:
                pass
            return None
        entry = child.next()
        if entry is None:
            return None
        return entry[0]


class UnionAppend(PhysicalOperator):
    """UNION / UNION ALL: streams branch after branch, no per-branch copy.

    Branches open lazily in textual order (so branch side effects keep
    their sequencing) and their column names are validated as each branch
    opens.  Plain UNION dedups across branches with the same value-
    freezing the projection DISTINCT uses; first occurrence wins, exactly
    as concatenating full branch results and deduping did.
    """

    name = "Union"

    def __init__(
        self,
        state: RuntimeState,
        branches: list[ProduceResults],
        union_all: bool,
    ) -> None:
        super().__init__(state, tuple(branches))
        self.union_all = union_all
        self.keys: Optional[list[str]] = None
        self.detail = "ALL" if union_all else ""

    def open(self) -> None:
        # Branches must not open eagerly: a later branch's blocking
        # operators would otherwise run before an earlier branch streamed.
        self._current = 0
        self._opened = [False] * len(self.children)
        self._seen: set = set()
        self.keys = None

    def _next(self) -> Optional[list[Any]]:
        while True:
            i = self._current
            if i >= len(self.children):
                return None
            branch = self.children[i]
            if not self._opened[i]:
                branch.open()
                self._opened[i] = True
                branch_keys = branch.keys
                if self.keys is None:
                    self.keys = branch_keys
                elif branch_keys != self.keys:
                    raise CypherSyntaxError(
                        "all UNION sub-queries must return the same column names"
                    )
            values = branch.next()
            if values is None:
                self._current = i + 1
                continue
            if self.union_all:
                return values
            frozen = _freeze(values)
            if frozen in self._seen:
                continue
            self._seen.add(frozen)
            return values

    def close(self) -> None:
        for opened, branch in zip(self._opened, self.children):
            if opened:
                branch.close()


# ---------------------------------------------------------------------------
# PROFILE rendering
# ---------------------------------------------------------------------------

def render_profile(root: PhysicalOperator) -> str:
    """Render the executed operator tree as an indented text profile.

    One line per operator: label, planner estimate (when planned), rows
    produced, and inclusive wall-clock time.  UNION branches are labelled
    so per-branch sub-trees read separately.
    """
    lines: list[str] = []

    def walk(op: PhysicalOperator, depth: int) -> None:
        pad = "  " * depth
        estimate = f" est≈{op.estimate:.0f}" if op.estimate is not None else ""
        lines.append(
            f"{pad}+- {op.label}{estimate} -> {op.rows_out} rows"
            f" ({op.elapsed_s * 1000.0:.3f} ms)"
        )
        if isinstance(op, UnionAppend):
            for index, child in enumerate(op.children):
                lines.append(f"{pad}   UNION branch {index + 1}:")
                walk(child, depth + 2)
        else:
            for child in op.children:
                walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def profile_tree(op: PhysicalOperator) -> dict:
    """The operator tree as a JSON-safe dict (``diagnostics["cypher_profile"]``).

    ``time_ms`` is inclusive of children; ``self_time_ms`` subtracts the
    direct children's inclusive time (clamped at zero — timer granularity
    can make the difference marginally negative).
    """
    children = [profile_tree(child) for child in op.children]
    time_ms = op.elapsed_s * 1000.0
    self_ms = max(0.0, time_ms - sum(child.elapsed_s for child in op.children) * 1000.0)
    payload: dict[str, Any] = {
        "operator": op.name,
        "detail": op.detail,
        "rows": op.rows_out,
        "time_ms": round(time_ms, 4),
        "self_time_ms": round(self_ms, 4),
    }
    if op.marker:
        payload["marker"] = op.marker.strip("[]")
    if op.estimate is not None:
        payload["estimate"] = round(op.estimate, 1)
    if children:
        payload["children"] = children
    return payload


def max_operator_rows(profile: dict) -> int:
    """Largest per-operator row count in a :func:`profile_tree` payload.

    The memory benchmark's "peak intermediate rows" figure: with streaming
    execution it is bounded by LIMIT (plus tie groups), where the seed
    executor's clause-boundary lists held the full scan cardinality.
    """
    peak = profile.get("rows", 0)
    for child in profile.get("children", ()):  # type: ignore[union-attr]
        peak = max(peak, max_operator_rows(child))
    return peak


# ---------------------------------------------------------------------------
# Shared projection / ordering machinery
# ---------------------------------------------------------------------------

class _Descending:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and other.key == self.key


def _project_grouped(
    ctx,
    rows: list[Row],
    items: list,
    grouping_indices: list[int],
    grouping_fns: Optional[tuple] = None,
) -> list[tuple[list[Any], list[Row]]]:
    """Group ``rows`` by the non-aggregate items and evaluate aggregates.

    ``grouping_fns`` (compiled closures aligned with ``grouping_indices``)
    replace tree-walking evaluation of the grouping keys — one call per
    row per key either way.
    """
    groups: dict[Any, tuple[list[Any], list[Row]]] = {}
    order: list[Any] = []
    evaluate = ctx.evaluator.evaluate
    for row in rows:
        if grouping_fns is not None:
            group_values = [fn(ctx, row) for fn in grouping_fns]
        else:
            group_values = [evaluate(items[i].expression, row) for i in grouping_indices]
        group_key = _freeze(group_values)
        if group_key not in groups:
            groups[group_key] = (group_values, [])
            order.append(group_key)
        groups[group_key][1].append(row)

    if not rows and not grouping_indices:
        # Aggregates over zero rows still produce one row (count(*) = 0).
        groups[()] = ([], [])
        order.append(())

    produced: list[tuple[list[Any], list[Row]]] = []
    for group_key in order:
        group_values, group_rows = groups[group_key]
        values: list[Any] = []
        group_iter = iter(group_values)
        for i, item in enumerate(items):
            if i in grouping_indices:
                values.append(next(group_iter))
            else:
                values.append(ctx.evaluator.evaluate_aggregate(item.expression, group_rows))
        produced.append((values, group_rows))
    return produced


def _order(
    ctx,
    produced: list[tuple[list[Any], list[Row]]],
    order_by,
    items: list,
    keys: list[str],
    aggregated: bool,
    top: Optional[int] = None,
) -> list[tuple[list[Any], list[Row]]]:
    """Sort ``produced``; with ``top`` set, only the first ``top`` rows.

    Every row's full ORDER BY key (including the canonical tie-break) is
    evaluated exactly once up front and reused by whichever selection
    runs: ``heapq.nsmallest`` bounded selection when ``top`` covers less
    than the input (O(n log k), never materialises a full sort), else a
    plain stable sort.  Both are stable on equal keys, so the heap path
    is row-for-row identical to sorting and slicing.
    """
    evaluate = ctx.evaluator.evaluate
    evaluate_aggregate = ctx.evaluator.evaluate_aggregate

    # Decide once per ORDER BY item how its value is obtained, instead of
    # re-walking the expression for every entry:
    #   ("reuse", j, _)     — the projection already evaluated this exact
    #                         expression (or the item is a plain output
    #                         alias); read values[j], no re-evaluation
    #   ("agg", expr, _)    — aggregate over the group's env rows
    #   ("eval", expr, fn)  — evaluate against the alias-extended row,
    #                         via the compiled closure when available
    key_set = set(keys)
    plans: list[tuple] = []
    needs_env = False
    for order_item in order_by:
        expr = order_item.expression
        if aggregated and _contains_aggregate(expr):
            reused = None
            for j, item in enumerate(items):
                if item.expression == expr:
                    reused = j
                    break
            if reused is not None:
                plans.append(("reuse", reused, None))
            else:
                plans.append(("agg", expr, None))
            continue
        if isinstance(expr, ast.Variable) and expr.name in key_set:
            # Aliases shadow pattern variables in ORDER BY scope; the
            # dict(zip(...)) env made the *last* duplicate key win.
            for j in range(len(keys) - 1, -1, -1):
                if keys[j] == expr.name:
                    plans.append(("reuse", j, None))
                    break
            continue
        reused = None
        if expression_variables(expr).isdisjoint(key_set):
            # Safe only when no alias shadows a variable the expression
            # reads (`RETURN a.x AS a ORDER BY a.x` must re-evaluate).
            for j, item in enumerate(items):
                if item.expression == expr:
                    reused = j
                    break
        if reused is not None:
            plans.append(("reuse", reused, None))
            continue
        compile_expr = getattr(ctx, "compile", None)
        fn = compile_expr(expr) if compile_expr is not None else None
        plans.append(("eval", expr, fn))
        needs_env = True

    def order_values(entry: tuple[list[Any], list[Row]]) -> tuple:
        values, env_rows = entry
        if needs_env:
            base = dict(env_rows[0]) if env_rows else {}
            base.update(zip(keys, values))
        else:
            base = None
        sort_parts = []
        for (kind, payload, fn), order_item in zip(plans, order_by):
            if kind == "reuse":
                value = values[payload]
            elif kind == "agg":
                value = evaluate_aggregate(payload, env_rows)
            elif fn is not None:
                value = fn(ctx, base)
            else:
                value = evaluate(payload, base)
            key = sort_key(value)
            if order_item.descending:
                sort_parts.append(_Descending(key))
            else:
                sort_parts.append(key)
        # Canonical tie-break over the projected values: rows that compare
        # equal on every ORDER BY key would otherwise keep match-order,
        # which depends on the chosen plan.  This keeps ordered output
        # identical whether the planner is on or off.
        try:
            sort_parts.append(tuple(sort_key(value) for value in values))
        except CypherTypeError:
            sort_parts.append(())
        return tuple(sort_parts)

    decorated = [(order_values(entry), entry) for entry in produced]
    if top is not None and 0 <= top < len(decorated):
        selected = heapq.nsmallest(top, decorated, key=itemgetter(0))
    else:
        decorated.sort(key=itemgetter(0))
        selected = decorated
    return [entry for _, entry in selected]


def _freeze(value: Any) -> Any:
    """Convert a value into a hashable group/dedup key."""
    cls = value.__class__
    if cls is str or cls is int or cls is bool or value is None:
        return value
    if isinstance(value, list):
        return ("list", tuple(_freeze(item) for item in value))
    if isinstance(value, dict):
        return ("map", tuple(sorted((k, _freeze(v)) for k, v in value.items())))
    if isinstance(value, Node):
        return ("node", value.node_id)
    if isinstance(value, Relationship):
        return ("rel", value.rel_id)
    if isinstance(value, Path):
        return (
            "path",
            tuple(n.node_id for n in value.nodes),
            tuple(r.rel_id for r in value.relationships),
        )
    if isinstance(value, float) and value.is_integer():
        return float(value)
    return value


def _contains_aggregate(expr: ast.Expr) -> bool:
    """Walk an expression tree looking for aggregate calls."""
    if isinstance(expr, ast.CountStar):
        return True
    if isinstance(expr, ast.FunctionCall):
        if is_aggregate_function(expr.name):
            return True
        return any(_contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, (ast.Literal, ast.Parameter, ast.Variable)):
        return False
    if isinstance(expr, ast.PropertyAccess):
        return _contains_aggregate(expr.subject)
    if isinstance(expr, ast.Subscript):
        return _contains_aggregate(expr.subject) or _contains_aggregate(expr.index)
    if isinstance(expr, ast.Slice):
        return any(
            _contains_aggregate(part)
            for part in (expr.subject, expr.start, expr.end)
            if part is not None
        )
    if isinstance(expr, ast.ListLiteral):
        return any(_contains_aggregate(item) for item in expr.items)
    if isinstance(expr, ast.MapLiteral):
        return any(_contains_aggregate(value) for _, value in expr.items)
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.Comparison):
        return any(_contains_aggregate(operand) for operand in expr.operands)
    if isinstance(expr, ast.BooleanOp):
        return any(_contains_aggregate(operand) for operand in expr.operands)
    if isinstance(expr, ast.NotOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.StringPredicate):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.value) or _contains_aggregate(expr.container)
    if isinstance(expr, ast.CaseExpr):
        parts: list[ast.Expr] = []
        if expr.subject is not None:
            parts.append(expr.subject)
        for condition, result in expr.whens:
            parts.extend((condition, result))
        if expr.default is not None:
            parts.append(expr.default)
        return any(_contains_aggregate(part) for part in parts)
    if isinstance(expr, ast.ListComprehension):
        parts = [expr.source]
        if expr.predicate is not None:
            parts.append(expr.predicate)
        if expr.projection is not None:
            parts.append(expr.projection)
        return any(_contains_aggregate(part) for part in parts)
    return False


def _same_rel_binding(existing: Any, candidate: Any) -> bool:
    """Is a rebound relationship variable consistent with its prior value?"""
    if isinstance(existing, Relationship) and isinstance(candidate, Relationship):
        return existing.rel_id == candidate.rel_id
    if isinstance(existing, list) and isinstance(candidate, list):
        return [r.rel_id for r in existing] == [r.rel_id for r in candidate]
    return False
