"""Recursive-descent parser for the Cypher subset.

Entry point: :func:`parse`.  The grammar covers the read/write clauses IYP
queries use in practice — MATCH / OPTIONAL MATCH / WHERE / WITH / RETURN /
ORDER BY / SKIP / LIMIT / UNWIND / UNION [ALL] / CREATE / MERGE / SET /
DELETE / REMOVE — plus the full expression language (boolean ternary logic,
comparisons, string predicates, list/map literals, CASE, list
comprehensions, variable-length paths, parameters).
"""

from __future__ import annotations

from typing import Optional, Union

from . import ast_nodes as ast
from .errors import CypherSyntaxError
from .lexer import Token, tokenize

__all__ = ["parse", "parse_expression"]


def parse(text: str) -> ast.Query:
    """Parse a complete Cypher query into an AST.

    Raises:
        CypherSyntaxError: on any lexical or grammatical problem.
    """
    parser = _Parser(text)
    query = parser.parse_query()
    parser.expect_end()
    return query


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used in tests and the REPL)."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.expect_end()
    return expr


class _Parser:
    """Token-cursor with one helper method per grammar production."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        i = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.current.kind == kind:
            return self.advance()
        return None

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.current.is_keyword(*names):
            return self.advance()
        return None

    def expect(self, kind: str, what: str = "") -> Token:
        if self.current.kind != kind:
            expected = what or kind
            raise self.error(f"expected {expected}, found {self.current.value!r}")
        return self.advance()

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            raise self.error(f"expected {'/'.join(names)}, found {self.current.value!r}")
        return self.advance()

    def expect_end(self) -> None:
        self.accept("SEMICOLON")
        if self.current.kind != "EOF":
            raise self.error(f"unexpected input {self.current.value!r}")

    def error(self, message: str) -> CypherSyntaxError:
        return CypherSyntaxError(message, self.current.position, self.text)

    def parse_name(self) -> str:
        """An identifier; also tolerates non-reserved keyword-looking names."""
        if self.current.kind == "IDENT":
            return self.advance().value
        # COUNT and a few others are keywords but valid as identifiers in
        # some positions (e.g. a variable named `count`).
        if self.current.kind == "KEYWORD" and self.current.value in ("COUNT", "ALL", "END"):
            return self.advance().text
        raise self.error(f"expected a name, found {self.current.value!r}")

    def parse_label_name(self) -> str:
        """A label / relationship type / property name.

        Any keyword is acceptable here with its source spelling preserved —
        IYP itself uses ``:AS`` and ``COUNTRY`` which collide with Cypher
        keywords.
        """
        if self.current.kind in ("IDENT", "KEYWORD"):
            return self.advance().text
        raise self.error(f"expected a name, found {self.current.value!r}")

    # ------------------------------------------------------------------
    # Queries and clauses
    # ------------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        first = self.parse_single_query()
        queries = [first]
        union_all: Optional[bool] = None
        while self.accept_keyword("UNION"):
            this_all = bool(self.accept_keyword("ALL"))
            if union_all is not None and union_all != this_all:
                raise self.error("cannot mix UNION and UNION ALL")
            union_all = this_all
            queries.append(self.parse_single_query())
        if len(queries) == 1:
            return first
        return ast.UnionQuery(tuple(queries), union_all=bool(union_all))

    def parse_single_query(self) -> ast.SingleQuery:
        clauses: list[ast.Clause] = []
        while True:
            token = self.current
            if token.is_keyword("MATCH") or token.is_keyword("OPTIONAL"):
                clauses.append(self.parse_match())
            elif token.is_keyword("UNWIND"):
                clauses.append(self.parse_unwind())
            elif token.is_keyword("WITH"):
                clauses.append(self.parse_with())
            elif token.is_keyword("RETURN"):
                clauses.append(self.parse_return())
            elif token.is_keyword("CREATE"):
                clauses.append(self.parse_create())
            elif token.is_keyword("MERGE"):
                clauses.append(self.parse_merge())
            elif token.is_keyword("SET"):
                clauses.append(self.parse_set())
            elif token.is_keyword("DELETE") or token.is_keyword("DETACH"):
                clauses.append(self.parse_delete())
            elif token.is_keyword("REMOVE"):
                clauses.append(self.parse_remove())
            else:
                break
        if not clauses:
            raise self.error("empty query")
        return ast.SingleQuery(tuple(clauses))

    def parse_match(self) -> ast.MatchClause:
        optional = bool(self.accept_keyword("OPTIONAL"))
        self.expect_keyword("MATCH")
        pattern = self.parse_pattern()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.MatchClause(pattern=pattern, where=where, optional=optional)

    def parse_unwind(self) -> ast.UnwindClause:
        self.expect_keyword("UNWIND")
        expression = self.parse_expr()
        self.expect_keyword("AS")
        variable = self.parse_name()
        return ast.UnwindClause(expression=expression, variable=variable)

    def _parse_projection_body(
        self,
    ) -> tuple[tuple[ast.ReturnItem, ...], bool, bool, tuple[ast.OrderItem, ...],
               Optional[ast.Expr], Optional[ast.Expr]]:
        distinct = bool(self.accept_keyword("DISTINCT"))
        star = False
        items: list[ast.ReturnItem] = []
        if self.current.kind == "STAR":
            self.advance()
            star = True
            while self.accept("COMMA"):
                items.append(self.parse_return_item())
        else:
            items.append(self.parse_return_item())
            while self.accept("COMMA"):
                items.append(self.parse_return_item())
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept("COMMA"):
                order_by.append(self.parse_order_item())
        skip = limit = None
        if self.accept_keyword("SKIP"):
            skip = self.parse_expr()
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expr()
        return tuple(items), distinct, star, tuple(order_by), skip, limit

    def parse_with(self) -> ast.WithClause:
        self.expect_keyword("WITH")
        items, distinct, star, order_by, skip, limit = self._parse_projection_body()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.WithClause(
            items=items, distinct=distinct, order_by=order_by,
            skip=skip, limit=limit, star=star, where=where,
        )

    def parse_return(self) -> ast.ReturnClause:
        self.expect_keyword("RETURN")
        items, distinct, star, order_by, skip, limit = self._parse_projection_body()
        return ast.ReturnClause(
            items=items, distinct=distinct, order_by=order_by,
            skip=skip, limit=limit, star=star,
        )

    def parse_return_item(self) -> ast.ReturnItem:
        expression = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.parse_name()
        return ast.ReturnItem(expression=expression, alias=alias)

    def parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC", "DESCENDING"):
            descending = True
        else:
            self.accept_keyword("ASC", "ASCENDING")
        return ast.OrderItem(expression=expression, descending=descending)

    def parse_create(self) -> ast.CreateClause:
        self.expect_keyword("CREATE")
        return ast.CreateClause(pattern=self.parse_pattern())

    def parse_merge(self) -> ast.MergeClause:
        self.expect_keyword("MERGE")
        part = self.parse_pattern_part()
        on_create: tuple[ast.SetItem, ...] = ()
        on_match: tuple[ast.SetItem, ...] = ()
        while self.accept_keyword("ON"):
            action = self.expect_keyword("CREATE", "MATCH")
            self.expect_keyword("SET")
            items = self.parse_set_items()
            if action.value == "CREATE":
                on_create += items
            else:
                on_match += items
        return ast.MergeClause(part=part, on_create=on_create, on_match=on_match)

    def parse_set(self) -> ast.SetClause:
        self.expect_keyword("SET")
        return ast.SetClause(items=self.parse_set_items())

    def parse_set_items(self) -> tuple[ast.SetItem, ...]:
        items = [self.parse_set_item()]
        while self.accept("COMMA"):
            items.append(self.parse_set_item())
        return tuple(items)

    def parse_set_item(self) -> ast.SetItem:
        variable = self.parse_name()
        if self.accept("DOT"):
            key = self.parse_label_name()
            self.expect("EQ", "'='")
            return ast.SetItem(
                kind="property", variable=variable, key=key, expression=self.parse_expr()
            )
        if self.current.kind == "PLUS" and self.peek().kind == "EQ":
            self.advance()
            self.advance()
            return ast.SetItem(kind="merge_map", variable=variable, expression=self.parse_expr())
        if self.accept("EQ"):
            return ast.SetItem(kind="replace_map", variable=variable, expression=self.parse_expr())
        if self.current.kind == "COLON":
            labels = []
            while self.accept("COLON"):
                labels.append(self.parse_label_name())
            return ast.SetItem(kind="label", variable=variable, labels=tuple(labels))
        raise self.error("invalid SET item")

    def parse_delete(self) -> ast.DeleteClause:
        detach = bool(self.accept_keyword("DETACH"))
        self.expect_keyword("DELETE")
        expressions = [self.parse_expr()]
        while self.accept("COMMA"):
            expressions.append(self.parse_expr())
        return ast.DeleteClause(expressions=tuple(expressions), detach=detach)

    def parse_remove(self) -> ast.RemoveClause:
        self.expect_keyword("REMOVE")
        items: list[ast.SetItem] = []
        while True:
            variable = self.parse_name()
            if self.accept("DOT"):
                key = self.parse_label_name()
                items.append(ast.SetItem(kind="property", variable=variable, key=key))
            elif self.current.kind == "COLON":
                labels = []
                while self.accept("COLON"):
                    labels.append(self.parse_label_name())
                items.append(ast.SetItem(kind="label", variable=variable, labels=tuple(labels)))
            else:
                raise self.error("invalid REMOVE item")
            if not self.accept("COMMA"):
                break
        return ast.RemoveClause(items=tuple(items))

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------

    def parse_pattern(self) -> ast.Pattern:
        parts = [self.parse_pattern_part()]
        while self.accept("COMMA"):
            parts.append(self.parse_pattern_part())
        return ast.Pattern(parts=tuple(parts))

    _SHORTEST_NAMES = {"shortestPath": "single", "allShortestPaths": "all"}

    def _at_shortest_function(self) -> bool:
        return (
            self.current.kind == "IDENT"
            and self.current.value in self._SHORTEST_NAMES
            and self.peek().kind == "LPAREN"
        )

    def parse_pattern_part(self) -> ast.PatternPart:
        path_variable = None
        if (
            self.current.kind == "IDENT"
            and self.peek().kind == "EQ"
            and (
                self.peek(2).kind == "LPAREN"
                or (self.peek(2).kind == "IDENT" and self.peek(2).value in self._SHORTEST_NAMES)
            )
        ):
            path_variable = self.advance().value
            self.advance()  # '='
        shortest = None
        if self._at_shortest_function():
            shortest = self._SHORTEST_NAMES[self.advance().value]
            self.expect("LPAREN", "'('")
        elements: list[Union[ast.NodePattern, ast.RelPattern]] = [self.parse_node_pattern()]
        while self.current.kind in ("MINUS", "ARROW_LEFT", "LT"):
            elements.append(self.parse_rel_pattern())
            elements.append(self.parse_node_pattern())
        if shortest is not None:
            self.expect("RPAREN", "')'")
            if len(elements) != 3:
                raise self.error("shortestPath() requires a single relationship pattern")
        return ast.PatternPart(
            elements=tuple(elements), path_variable=path_variable, shortest=shortest
        )

    def parse_node_pattern(self) -> ast.NodePattern:
        self.expect("LPAREN", "'('")
        variable = None
        if self.current.kind == "IDENT":
            variable = self.advance().value
        labels = []
        while self.accept("COLON"):
            labels.append(self.parse_label_name())
        properties: tuple[tuple[str, ast.Expr], ...] = ()
        if self.current.kind == "LBRACE":
            properties = self.parse_map_entries()
        self.expect("RPAREN", "')'")
        return ast.NodePattern(variable=variable, labels=tuple(labels), properties=properties)

    def parse_rel_pattern(self) -> ast.RelPattern:
        left_arrow = False
        if self.accept("ARROW_LEFT"):
            left_arrow = True
        elif self.current.kind == "LT" and self.peek().kind == "MINUS":
            # `< -` split tokens (rare spacing)
            self.advance()
            self.advance()
            left_arrow = True
        else:
            self.expect("MINUS", "'-'")

        variable = None
        types: tuple[str, ...] = ()
        properties: tuple[tuple[str, ast.Expr], ...] = ()
        min_hops = max_hops = None
        var_length = False
        if self.accept("LBRACKET"):
            if self.current.kind == "IDENT":
                variable = self.advance().value
            if self.accept("COLON"):
                type_names = [self.parse_label_name()]
                while self.accept("PIPE"):
                    self.accept("COLON")  # tolerate `|:TYPE`
                    type_names.append(self.parse_label_name())
                types = tuple(type_names)
            if self.accept("STAR"):
                var_length = True
                min_hops, max_hops = self.parse_hop_range()
            if self.current.kind == "LBRACE":
                properties = self.parse_map_entries()
            self.expect("RBRACKET", "']'")

        right_arrow = False
        if self.accept("ARROW_RIGHT"):
            right_arrow = True
        elif self.current.kind == "MINUS" and self.peek().kind == "GT":
            self.advance()
            self.advance()
            right_arrow = True
        else:
            self.expect("MINUS", "'-'")

        if left_arrow and right_arrow:
            raise self.error("relationship cannot point both ways")
        if right_arrow:
            direction = "out"
        elif left_arrow:
            direction = "in"
        else:
            direction = "both"
        return ast.RelPattern(
            variable=variable, types=types, direction=direction,
            properties=properties, min_hops=min_hops, max_hops=max_hops,
            var_length=var_length,
        )

    def parse_hop_range(self) -> tuple[Optional[int], Optional[int]]:
        """After ``*``: ``*``, ``*n``, ``*n..``, ``*..m`` or ``*n..m``."""
        min_hops = max_hops = None
        if self.current.kind == "INT":
            min_hops = int(self.advance().value)
            if self.accept("DOTDOT"):
                if self.current.kind == "INT":
                    max_hops = int(self.advance().value)
            else:
                max_hops = min_hops
        elif self.accept("DOTDOT"):
            if self.current.kind == "INT":
                max_hops = int(self.advance().value)
        return min_hops, max_hops

    def parse_map_entries(self) -> tuple[tuple[str, ast.Expr], ...]:
        self.expect("LBRACE", "'{'")
        entries: list[tuple[str, ast.Expr]] = []
        if self.current.kind != "RBRACE":
            while True:
                key = self.parse_map_key()
                self.expect("COLON", "':'")
                entries.append((key, self.parse_expr()))
                if not self.accept("COMMA"):
                    break
        self.expect("RBRACE", "'}'")
        return tuple(entries)

    def parse_map_key(self) -> str:
        if self.current.kind == "IDENT":
            return self.advance().value
        if self.current.kind == "STRING":
            return self.advance().value
        if self.current.kind == "KEYWORD":
            return self.advance().text
        raise self.error(f"expected map key, found {self.current.value!r}")

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        operands = [self.parse_xor()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_xor())
        if len(operands) == 1:
            return operands[0]
        return ast.BooleanOp(op="OR", operands=tuple(operands))

    def parse_xor(self) -> ast.Expr:
        operands = [self.parse_and()]
        while self.accept_keyword("XOR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.BooleanOp(op="XOR", operands=tuple(operands))

    def parse_and(self) -> ast.Expr:
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return ast.BooleanOp(op="AND", operands=tuple(operands))

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.NotOp(operand=self.parse_not())
        return self.parse_comparison()

    _COMPARISON_OPS = {"EQ": "=", "NEQ": "<>", "LT": "<", "GT": ">",
                       "LTE": "<=", "GTE": ">=", "REGEQ": "=~"}

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        # Postfix predicates
        while True:
            if self.current.is_keyword("IS"):
                self.advance()
                negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                left = ast.IsNull(operand=left, negated=negated)
                continue
            if self.current.is_keyword("STARTS"):
                self.advance()
                self.expect_keyword("WITH")
                left = ast.StringPredicate(op="STARTS", left=left, right=self.parse_additive())
                continue
            if self.current.is_keyword("ENDS"):
                self.advance()
                self.expect_keyword("WITH")
                left = ast.StringPredicate(op="ENDS", left=left, right=self.parse_additive())
                continue
            if self.current.is_keyword("CONTAINS"):
                self.advance()
                left = ast.StringPredicate(op="CONTAINS", left=left, right=self.parse_additive())
                continue
            if self.current.is_keyword("IN"):
                self.advance()
                left = ast.InList(value=left, container=self.parse_additive())
                continue
            if self.current.kind == "COLON" and isinstance(left, ast.Variable):
                # Label predicate: `n:AS` (desugared to hasLabel()).
                labels = []
                while self.accept("COLON"):
                    labels.append(self.parse_label_name())
                left = ast.FunctionCall(
                    name="hasLabel", args=(left, ast.Literal(labels))
                )
                continue
            break
        if self.current.kind in self._COMPARISON_OPS:
            operands = [left]
            ops = []
            while self.current.kind in self._COMPARISON_OPS:
                ops.append(self._COMPARISON_OPS[self.advance().kind])
                operands.append(self.parse_additive())
            return ast.Comparison(operands=tuple(operands), ops=tuple(ops))
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.current.kind in ("PLUS", "MINUS"):
            op = self.advance().value
            left = ast.BinaryOp(op=op, left=left, right=self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_power()
        while self.current.kind in ("STAR", "SLASH", "PERCENT"):
            op = self.advance().value
            left = ast.BinaryOp(op=op, left=left, right=self.parse_power())
        return left

    def parse_power(self) -> ast.Expr:
        left = self.parse_unary()
        if self.current.kind == "CARET":
            self.advance()
            # right-associative
            return ast.BinaryOp(op="^", left=left, right=self.parse_power())
        return left

    def parse_unary(self) -> ast.Expr:
        if self.current.kind in ("MINUS", "PLUS"):
            op = self.advance().value
            return ast.UnaryOp(op=op, operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_atom()
        while True:
            if self.accept("DOT"):
                expr = ast.PropertyAccess(subject=expr, key=self.parse_label_name())
                continue
            if self.current.kind == "LBRACKET":
                self.advance()
                expr = self._parse_subscript_or_slice(expr)
                continue
            break
        return expr

    def _parse_subscript_or_slice(self, subject: ast.Expr) -> ast.Expr:
        start: Optional[ast.Expr] = None
        if self.current.kind != "DOTDOT":
            start = self.parse_expr()
        if self.accept("DOTDOT"):
            end: Optional[ast.Expr] = None
            if self.current.kind != "RBRACKET":
                end = self.parse_expr()
            self.expect("RBRACKET", "']'")
            return ast.Slice(subject=subject, start=start, end=end)
        self.expect("RBRACKET", "']'")
        if start is None:
            raise self.error("empty subscript")
        return ast.Subscript(subject=subject, index=start)

    def parse_atom(self) -> ast.Expr:
        token = self.current
        if token.kind == "INT":
            self.advance()
            return ast.Literal(int(token.value))
        if token.kind == "FLOAT":
            self.advance()
            return ast.Literal(float(token.value))
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.kind == "DOLLAR":
            self.advance()
            if self.current.kind in ("IDENT", "INT"):
                return ast.Parameter(self.advance().value)
            if self.current.kind == "KEYWORD":
                return ast.Parameter(self.advance().value.lower())
            raise self.error("expected parameter name after '$'")
        if token.is_keyword("COUNT"):
            # count(*) or count(expr)
            if self.peek().kind == "LPAREN":
                self.advance()
                self.advance()
                if self.current.kind == "STAR":
                    self.advance()
                    self.expect("RPAREN", "')'")
                    return ast.CountStar()
                distinct = bool(self.accept_keyword("DISTINCT"))
                arg = self.parse_expr()
                self.expect("RPAREN", "')'")
                return ast.FunctionCall(name="count", args=(arg,), distinct=distinct)
            self.advance()
            return ast.Variable("count")
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_keyword("EXISTS"):
            self.advance()
            if self.accept("LPAREN"):
                if self.current.kind == "LPAREN":
                    part = self.parse_pattern_part()
                    self.expect("RPAREN", "')'")
                    return ast.ExistsExpr(target=part)
                inner = self.parse_expr()
                self.expect("RPAREN", "')'")
                return ast.ExistsExpr(target=inner)
            if self.accept("LBRACE"):
                self.accept_keyword("MATCH")
                part = self.parse_pattern_part()
                self.expect("RBRACE", "'}'")
                return ast.ExistsExpr(target=part)
            raise self.error("expected '(' or '{' after EXISTS")
        if token.kind == "LBRACKET":
            return self.parse_list_or_comprehension()
        if token.kind == "LBRACE":
            return ast.MapLiteral(items=self.parse_map_entries())
        if token.kind == "LPAREN":
            # Could be a parenthesised expression or a pattern predicate
            # like `(a)-[:X]->(b)`.
            if self._looks_like_pattern():
                part = self.parse_pattern_part()
                return ast.PatternPredicate(pattern=part)
            self.advance()
            expr = self.parse_expr()
            self.expect("RPAREN", "')'")
            return expr
        if token.kind == "IDENT" or (
            token.kind == "KEYWORD" and token.value in ("ALL", "END")
        ):
            name = self.advance().value
            if self.current.kind == "LPAREN":
                lowered = name.lower()
                quantifier_ahead = (
                    self.peek().kind == "IDENT" and self.peek(2).is_keyword("IN")
                )
                if lowered in ("any", "all", "none", "single") and quantifier_ahead:
                    return self.parse_quantifier(lowered)
                if lowered == "reduce":
                    return self.parse_reduce()
                self.advance()
                distinct = bool(self.accept_keyword("DISTINCT"))
                args: list[ast.Expr] = []
                if self.current.kind != "RPAREN":
                    args.append(self.parse_expr())
                    while self.accept("COMMA"):
                        args.append(self.parse_expr())
                self.expect("RPAREN", "')'")
                return ast.FunctionCall(name=name, args=tuple(args), distinct=distinct)
            return ast.Variable(name)
        raise self.error(f"unexpected token {token.value!r}")

    def _looks_like_pattern(self) -> bool:
        """Does `(`...`)` at the cursor start a relationship pattern?

        Two conditions disambiguate from parenthesised arithmetic like
        ``(x + 1) - 2``: the parenthesised contents must have node-pattern
        shape (optional variable, labels, optional property map), and the
        close paren must be followed by a relationship continuation
        (``<-``, ``-[`` or ``--``).
        """
        tokens = self.tokens
        j = self.index + 1  # just past '('
        if tokens[j].kind == "IDENT":
            j += 1
        while tokens[j].kind == "COLON":
            j += 1
            if tokens[j].kind in ("IDENT", "KEYWORD"):
                j += 1
            else:
                return False
        if tokens[j].kind == "LBRACE":
            depth = 1
            j += 1
            while depth and tokens[j].kind != "EOF":
                if tokens[j].kind == "LBRACE":
                    depth += 1
                elif tokens[j].kind == "RBRACE":
                    depth -= 1
                j += 1
            if depth:
                return False
        if tokens[j].kind != "RPAREN":
            return False
        nxt = tokens[j + 1] if j + 1 < len(tokens) else None
        if nxt is None:
            return False
        if nxt.kind == "ARROW_LEFT":
            return True
        if nxt.kind == "MINUS":
            nxt2 = tokens[j + 2] if j + 2 < len(tokens) else None
            return nxt2 is not None and nxt2.kind in ("LBRACKET", "MINUS")
        return False

    def parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        subject = None
        if not self.current.is_keyword("WHEN"):
            subject = self.parse_expr()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expr()))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseExpr(subject=subject, whens=tuple(whens), default=default)

    def parse_quantifier(self, kind: str) -> ast.Expr:
        """``any/all/none/single(var IN list WHERE predicate)``."""
        self.expect("LPAREN", "'('")
        variable = self.parse_name()
        self.expect_keyword("IN")
        source = self.parse_or()
        self.expect_keyword("WHERE")
        predicate = self.parse_expr()
        self.expect("RPAREN", "')'")
        return ast.Quantifier(kind=kind, variable=variable, source=source, predicate=predicate)

    def parse_reduce(self) -> ast.Expr:
        """``reduce(acc = init, var IN list | expression)``."""
        self.expect("LPAREN", "'('")
        accumulator = self.parse_name()
        self.expect("EQ", "'='")
        initial = self.parse_expr()
        self.expect("COMMA", "','")
        variable = self.parse_name()
        self.expect_keyword("IN")
        source = self.parse_or()
        self.expect("PIPE", "'|'")
        expression = self.parse_expr()
        self.expect("RPAREN", "')'")
        return ast.Reduce(
            accumulator=accumulator, initial=initial, variable=variable,
            source=source, expression=expression,
        )

    def parse_list_or_comprehension(self) -> ast.Expr:
        self.expect("LBRACKET", "'['")
        if self.current.kind == "RBRACKET":
            self.advance()
            return ast.ListLiteral(items=())
        # Pattern comprehension: `[(a)-[:X]->(b) WHERE p | expr]`.
        if self.current.kind == "LPAREN" and self._looks_like_pattern():
            part = self.parse_pattern_part()
            predicate = None
            if self.accept_keyword("WHERE"):
                predicate = self.parse_expr()
            self.expect("PIPE", "'|'")
            projection = self.parse_expr()
            self.expect("RBRACKET", "']'")
            return ast.PatternComprehension(
                pattern=part, predicate=predicate, projection=projection
            )
        # Lookahead for `name IN`
        if (
            self.current.kind == "IDENT"
            and self.peek().is_keyword("IN")
        ):
            variable = self.advance().value
            self.advance()  # IN
            source = self.parse_or()
            predicate = None
            projection = None
            if self.accept_keyword("WHERE"):
                predicate = self.parse_expr()
            if self.accept("PIPE"):
                projection = self.parse_expr()
            self.expect("RBRACKET", "']'")
            return ast.ListComprehension(
                variable=variable, source=source,
                predicate=predicate, projection=projection,
            )
        items = [self.parse_expr()]
        while self.accept("COMMA"):
            items.append(self.parse_expr())
        self.expect("RBRACKET", "']'")
        return ast.ListLiteral(items=tuple(items))
