"""Cypher query engine over :class:`repro.graph.GraphStore`.

Public surface::

    from repro.cypher import CypherEngine, execute, parse

    engine = CypherEngine(store)
    result = engine.run("MATCH (a:AS {asn: $asn}) RETURN a.name", asn=2497)
"""

from .compile import ExpressionCompiler, expression_variables
from .errors import (
    CypherDeadlineExceeded,
    CypherError,
    CypherRuntimeError,
    CypherSyntaxError,
    CypherTypeError,
    ResourceExhausted,
    UnknownFunctionError,
)
from .executor import CypherEngine, execute
from .operators import PhysicalOperator, profile_tree, render_profile
from .parser import parse, parse_expression
from .planner import (
    AnchorPlan,
    MatchPlan,
    PartPlan,
    PushedFilter,
    extract_pushdown,
    plan_match,
    plan_query,
)
from .result import Record, ResultSet, render_value
from .safety import is_read_only

__all__ = [
    "CypherEngine",
    "execute",
    "ExpressionCompiler",
    "expression_variables",
    "AnchorPlan",
    "MatchPlan",
    "PartPlan",
    "PushedFilter",
    "extract_pushdown",
    "plan_match",
    "plan_query",
    "parse",
    "parse_expression",
    "Record",
    "ResultSet",
    "render_value",
    "is_read_only",
    "CypherError",
    "CypherSyntaxError",
    "CypherTypeError",
    "CypherRuntimeError",
    "UnknownFunctionError",
    "ResourceExhausted",
    "CypherDeadlineExceeded",
    "PhysicalOperator",
    "profile_tree",
    "render_profile",
]
