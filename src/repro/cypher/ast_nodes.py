"""Abstract syntax tree of the Cypher subset.

Plain dataclasses, one per grammar production.  The executor walks these
directly; there is no separate logical-plan IR because the clause pipeline
*is* the plan for the query shapes IYP uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

__all__ = [
    "Expr", "Literal", "Parameter", "Variable", "PropertyAccess", "Subscript",
    "Slice", "ListLiteral", "MapLiteral", "FunctionCall", "CountStar",
    "UnaryOp", "BinaryOp", "Comparison", "BooleanOp", "NotOp", "IsNull",
    "StringPredicate", "InList", "CaseExpr", "ListComprehension",
    "PatternPredicate", "PatternComprehension", "ExistsExpr", "Quantifier", "Reduce",
    "NodePattern", "RelPattern", "PatternPart", "Pattern",
    "Clause", "MatchClause", "UnwindClause", "ReturnItem", "OrderItem",
    "ProjectionClause", "WithClause", "ReturnClause", "CreateClause",
    "MergeClause", "SetItem", "SetClause", "DeleteClause", "RemoveClause",
    "SingleQuery", "UnionQuery", "Query",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for every expression node."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool or None."""

    value: Any


@dataclass(frozen=True)
class Parameter(Expr):
    """A query parameter ``$name``."""

    name: str


@dataclass(frozen=True)
class Variable(Expr):
    """A bound variable reference."""

    name: str


@dataclass(frozen=True)
class PropertyAccess(Expr):
    """``subject.key`` — property lookup on a node, relationship or map."""

    subject: Expr
    key: str


@dataclass(frozen=True)
class Subscript(Expr):
    """``subject[index]`` — list indexing or map key lookup."""

    subject: Expr
    index: Expr


@dataclass(frozen=True)
class Slice(Expr):
    """``subject[start..end]`` — list slicing (either bound optional)."""

    subject: Expr
    start: Optional[Expr]
    end: Optional[Expr]


@dataclass(frozen=True)
class ListLiteral(Expr):
    """``[e1, e2, ...]``"""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class MapLiteral(Expr):
    """``{key: expr, ...}``"""

    items: tuple[tuple[str, Expr], ...]


@dataclass(frozen=True)
class FunctionCall(Expr):
    """``name(args...)``; ``distinct`` only matters for aggregates."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False


@dataclass(frozen=True)
class CountStar(Expr):
    """``count(*)``"""


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary ``-`` / ``+``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic: ``+ - * / % ^``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Comparison(Expr):
    """Chained comparison ``a < b <= c``: operands and the ops between them."""

    operands: tuple[Expr, ...]
    ops: tuple[str, ...]  # each of =, <>, <, >, <=, >=, =~


@dataclass(frozen=True)
class BooleanOp(Expr):
    """N-ary AND / OR / XOR with Cypher ternary-logic semantics."""

    op: str  # AND, OR, XOR
    operands: tuple[Expr, ...]


@dataclass(frozen=True)
class NotOp(Expr):
    """``NOT expr``"""

    operand: Expr


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``"""

    operand: Expr
    negated: bool


@dataclass(frozen=True)
class StringPredicate(Expr):
    """``a STARTS WITH b`` / ``ENDS WITH`` / ``CONTAINS``."""

    op: str  # STARTS, ENDS, CONTAINS
    left: Expr
    right: Expr


@dataclass(frozen=True)
class InList(Expr):
    """``value IN list``"""

    value: Expr
    container: Expr


@dataclass(frozen=True)
class CaseExpr(Expr):
    """Both simple (``CASE x WHEN v THEN r``) and generic CASE forms."""

    subject: Optional[Expr]
    whens: tuple[tuple[Expr, Expr], ...]
    default: Optional[Expr]


@dataclass(frozen=True)
class ListComprehension(Expr):
    """``[var IN list WHERE pred | expr]``."""

    variable: str
    source: Expr
    predicate: Optional[Expr]
    projection: Optional[Expr]


@dataclass(frozen=True)
class PatternPredicate(Expr):
    """A bare pattern used as a boolean, e.g. ``WHERE (a)-[:X]->()``."""

    pattern: "PatternPart"


@dataclass(frozen=True)
class PatternComprehension(Expr):
    """``[(a)-[:X]->(b) WHERE pred | projection]`` — one value per match."""

    pattern: "PatternPart"
    predicate: Optional[Expr]
    projection: Expr


@dataclass(frozen=True)
class Quantifier(Expr):
    """``any/all/none/single(var IN list WHERE predicate)``."""

    kind: str  # any, all, none, single
    variable: str
    source: Expr
    predicate: Expr


@dataclass(frozen=True)
class Reduce(Expr):
    """``reduce(acc = init, var IN list | expression)``."""

    accumulator: str
    initial: Expr
    variable: str
    source: Expr
    expression: Expr


@dataclass(frozen=True)
class ExistsExpr(Expr):
    """``exists(expr)`` or ``EXISTS { pattern }`` — truth of existence."""

    target: Union[Expr, "PatternPart"]


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NodePattern:
    """``(var:Label1:Label2 {prop: expr})``"""

    variable: Optional[str]
    labels: tuple[str, ...]
    properties: tuple[tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class RelPattern:
    """``-[var:TYPE1|TYPE2 *min..max {prop: expr}]->``

    ``direction`` is ``"out"`` (left-to-right arrow), ``"in"`` or ``"both"``.
    ``min_hops``/``max_hops`` are None for a plain single-hop relationship.
    """

    variable: Optional[str]
    types: tuple[str, ...]
    direction: str
    properties: tuple[tuple[str, Expr], ...] = ()
    min_hops: Optional[int] = None
    max_hops: Optional[int] = None
    var_length: bool = False


@dataclass(frozen=True)
class PatternPart:
    """One comma-separated pattern: nodes and the relationships between them.

    ``elements`` alternates NodePattern / RelPattern, starting and ending
    with a node.  ``path_variable`` is set for ``p = (...)-[]-(...)``.
    ``shortest`` marks ``shortestPath(...)`` (``"single"``) or
    ``allShortestPaths(...)`` (``"all"``) wrapping.
    """

    elements: tuple[Union[NodePattern, RelPattern], ...]
    path_variable: Optional[str] = None
    shortest: Optional[str] = None

    @property
    def nodes(self) -> list[NodePattern]:
        return [e for e in self.elements if isinstance(e, NodePattern)]

    @property
    def relationships(self) -> list[RelPattern]:
        return [e for e in self.elements if isinstance(e, RelPattern)]

    @property
    def hop_count(self) -> int:
        """Number of relationship steps (var-length counts its max, min 1)."""
        hops = 0
        for rel in self.relationships:
            if rel.var_length:
                hops += max(rel.max_hops or rel.min_hops or 1, 1)
            else:
                hops += 1
        return hops


@dataclass(frozen=True)
class Pattern:
    """A comma-separated list of pattern parts, as in one MATCH clause."""

    parts: tuple[PatternPart, ...]


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------

class Clause:
    """Base class for query clauses."""

    __slots__ = ()


@dataclass(frozen=True)
class MatchClause(Clause):
    """``[OPTIONAL] MATCH pattern [WHERE predicate]``"""

    pattern: Pattern
    where: Optional[Expr] = None
    optional: bool = False


@dataclass(frozen=True)
class UnwindClause(Clause):
    """``UNWIND expr AS var``"""

    expression: Expr
    variable: str


@dataclass(frozen=True)
class ReturnItem:
    """One projection item ``expr [AS alias]``."""

    expression: Expr
    alias: Optional[str] = None

    def output_name(self) -> str:
        """The column name this item produces."""
        if self.alias:
            return self.alias
        return _expression_text(self.expression)


@dataclass(frozen=True)
class OrderItem:
    """``expr [ASC|DESC]`` inside ORDER BY."""

    expression: Expr
    descending: bool = False


@dataclass(frozen=True)
class ProjectionClause(Clause):
    """Shared shape of WITH and RETURN."""

    items: tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    skip: Optional[Expr] = None
    limit: Optional[Expr] = None
    star: bool = False  # RETURN * / WITH *


@dataclass(frozen=True)
class WithClause(ProjectionClause):
    """``WITH ... [WHERE ...]``"""

    where: Optional[Expr] = None


@dataclass(frozen=True)
class ReturnClause(ProjectionClause):
    """``RETURN ...``"""


@dataclass(frozen=True)
class CreateClause(Clause):
    """``CREATE pattern``"""

    pattern: Pattern


@dataclass(frozen=True)
class MergeClause(Clause):
    """``MERGE pattern_part [ON CREATE SET ...] [ON MATCH SET ...]``"""

    part: PatternPart
    on_create: tuple["SetItem", ...] = ()
    on_match: tuple["SetItem", ...] = ()


@dataclass(frozen=True)
class SetItem:
    """``target.key = expr`` or ``variable += map`` or ``variable:Label``."""

    kind: str  # "property", "merge_map", "replace_map", "label"
    variable: str
    key: Optional[str] = None
    expression: Optional[Expr] = None
    labels: tuple[str, ...] = ()


@dataclass(frozen=True)
class SetClause(Clause):
    """``SET item, item, ...``"""

    items: tuple[SetItem, ...]


@dataclass(frozen=True)
class DeleteClause(Clause):
    """``[DETACH] DELETE expr, ...``"""

    expressions: tuple[Expr, ...]
    detach: bool = False


@dataclass(frozen=True)
class RemoveClause(Clause):
    """``REMOVE n.prop`` / ``REMOVE n:Label``"""

    items: tuple[SetItem, ...]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SingleQuery:
    """A linear sequence of clauses ending (usually) in RETURN."""

    clauses: tuple[Clause, ...]


@dataclass(frozen=True)
class UnionQuery:
    """``query UNION [ALL] query [...]``"""

    queries: tuple[SingleQuery, ...]
    union_all: bool = False


Query = Union[SingleQuery, UnionQuery]


# ---------------------------------------------------------------------------
# Pretty-printing (used for implicit column names and debugging)
# ---------------------------------------------------------------------------

def _expression_text(expr: Expr) -> str:
    """Render an expression roughly back to Cypher text."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return "'" + expr.value.replace("'", "\\'") + "'"
        if expr.value is None:
            return "null"
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        return str(expr.value)
    if isinstance(expr, Variable):
        return expr.name
    if isinstance(expr, Parameter):
        return f"${expr.name}"
    if isinstance(expr, PropertyAccess):
        return f"{_expression_text(expr.subject)}.{expr.key}"
    if isinstance(expr, Subscript):
        return f"{_expression_text(expr.subject)}[{_expression_text(expr.index)}]"
    if isinstance(expr, Slice):
        start = _expression_text(expr.start) if expr.start else ""
        end = _expression_text(expr.end) if expr.end else ""
        return f"{_expression_text(expr.subject)}[{start}..{end}]"
    if isinstance(expr, ListLiteral):
        return "[" + ", ".join(_expression_text(item) for item in expr.items) + "]"
    if isinstance(expr, MapLiteral):
        inner = ", ".join(f"{key}: {_expression_text(val)}" for key, val in expr.items)
        return "{" + inner + "}"
    if isinstance(expr, CountStar):
        return "count(*)"
    if isinstance(expr, FunctionCall):
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(_expression_text(arg) for arg in expr.args)
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, UnaryOp):
        return f"{expr.op}{_expression_text(expr.operand)}"
    if isinstance(expr, BinaryOp):
        return f"{_expression_text(expr.left)} {expr.op} {_expression_text(expr.right)}"
    if isinstance(expr, Comparison):
        parts = [_expression_text(expr.operands[0])]
        for op, operand in zip(expr.ops, expr.operands[1:]):
            parts.append(op)
            parts.append(_expression_text(operand))
        return " ".join(parts)
    if isinstance(expr, BooleanOp):
        return f" {expr.op} ".join(_expression_text(item) for item in expr.operands)
    if isinstance(expr, NotOp):
        return f"NOT {_expression_text(expr.operand)}"
    if isinstance(expr, IsNull):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_expression_text(expr.operand)} {suffix}"
    if isinstance(expr, StringPredicate):
        word = {"STARTS": "STARTS WITH", "ENDS": "ENDS WITH", "CONTAINS": "CONTAINS"}[expr.op]
        return f"{_expression_text(expr.left)} {word} {_expression_text(expr.right)}"
    if isinstance(expr, InList):
        return f"{_expression_text(expr.value)} IN {_expression_text(expr.container)}"
    if isinstance(expr, CaseExpr):
        return "CASE ... END"
    if isinstance(expr, ListComprehension):
        return f"[{expr.variable} IN {_expression_text(expr.source)} ...]"
    if isinstance(expr, (PatternPredicate, ExistsExpr)):
        return "exists(...)"
    return repr(expr)
