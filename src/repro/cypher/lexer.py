"""Tokenizer for the Cypher subset.

Produces a flat token stream consumed by the recursive-descent parser.
Keywords are case-insensitive (``MATCH`` ≡ ``match``); identifiers keep
their case.  Backtick-quoted identifiers, single/double quoted strings with
escapes, line (``//``) and block (``/* */``) comments are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import CypherSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "MATCH", "OPTIONAL", "WHERE", "RETURN", "WITH", "AS", "ORDER", "BY",
        "SKIP", "LIMIT", "ASC", "ASCENDING", "DESC", "DESCENDING", "AND",
        "OR", "XOR", "NOT", "IN", "STARTS", "ENDS", "CONTAINS", "IS", "NULL",
        "TRUE", "FALSE", "DISTINCT", "UNWIND", "UNION", "ALL", "CREATE",
        "MERGE", "SET", "DELETE", "DETACH", "REMOVE", "CASE", "WHEN", "THEN",
        "ELSE", "END", "EXISTS", "COUNT", "ON",
    }
)

_PUNCTUATION = {
    "<>": "NEQ",
    "<=": "LTE",
    ">=": "GTE",
    "=~": "REGEQ",
    "->": "ARROW_RIGHT",
    "<-": "ARROW_LEFT",
    "..": "DOTDOT",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "{": "LBRACE",
    "}": "RBRACE",
    ",": "COMMA",
    ".": "DOT",
    ":": "COLON",
    ";": "SEMICOLON",
    "|": "PIPE",
    "=": "EQ",
    "<": "LT",
    ">": "GT",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
    "%": "PERCENT",
    "^": "CARET",
    "$": "DOLLAR",
}

_TWO_CHAR = [p for p in _PUNCTUATION if len(p) == 2]


@dataclass(frozen=True)
class Token:
    """One lexical token: its category, normalised text and source offset.

    For keywords ``value`` is the upper-cased canonical form while ``raw``
    preserves the source spelling (needed when a keyword doubles as a label,
    e.g. IYP's ``:AS``).
    """

    kind: str  # KEYWORD, IDENT, INT, FLOAT, STRING, PARAM or a punctuation name
    value: str
    position: int
    raw: str = ""

    @property
    def text(self) -> str:
        """Source spelling (falls back to ``value`` for non-keywords)."""
        return self.raw or self.value

    def is_keyword(self, *names: str) -> bool:
        """True when this token is one of the given keywords."""
        return self.kind == "KEYWORD" and self.value in names


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`CypherSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise CypherSyntaxError("unterminated block comment", i, text)
            i = end + 2
            continue
        if ch in "'\"":
            value, i = _read_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch == "`":
            end = text.find("`", i + 1)
            if end == -1:
                raise CypherSyntaxError("unterminated backtick identifier", i, text)
            tokens.append(Token("IDENT", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            token, i = _read_number(text, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start, raw=word))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_PUNCTUATION[two], two, i))
            i += 2
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, i))
            i += 1
            continue
        raise CypherSyntaxError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token("EOF", "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a quoted string starting at ``start``; returns (value, next index)."""
    quote = text[start]
    i = start + 1
    parts: list[str] = []
    escapes = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'", '"': '"', "`": "`"}
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise CypherSyntaxError("dangling escape in string", i, text)
            nxt = text[i + 1]
            if nxt == "u" and i + 5 < len(text):
                parts.append(chr(int(text[i + 2 : i + 6], 16)))
                i += 6
                continue
            parts.append(escapes.get(nxt, nxt))
            i += 2
            continue
        if ch == quote:
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise CypherSyntaxError("unterminated string literal", start, text)


def _read_number(text: str, start: int) -> tuple[Token, int]:
    """Read an integer or float literal starting at ``start``."""
    i = start
    n = len(text)
    while i < n and text[i].isdigit():
        i += 1
    is_float = False
    # A '.' starts a fraction only when followed by a digit, so that `1..3`
    # (range) and `n.prop` keep their meaning.
    if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
        is_float = True
        i += 1
        while i < n and text[i].isdigit():
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j].isdigit():
            is_float = True
            i = j
            while i < n and text[i].isdigit():
                i += 1
    value = text[start:i]
    return Token("FLOAT" if is_float else "INT", value, start), i
