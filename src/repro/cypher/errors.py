"""Error hierarchy of the Cypher engine.

Mirrors the split a Neo4j client sees: syntax errors (query rejected before
execution), type errors (bad operand types at runtime) and generic runtime
errors.  ChatIYP's retrieval fallback logic keys off this hierarchy — a
:class:`CypherSyntaxError` from a generated query triggers the vector
retriever.
"""

from __future__ import annotations

__all__ = [
    "CypherError",
    "CypherSyntaxError",
    "CypherTypeError",
    "CypherRuntimeError",
    "UnknownFunctionError",
    "ResourceExhausted",
    "CypherDeadlineExceeded",
]


class CypherError(Exception):
    """Base class for every Cypher engine failure."""


class CypherSyntaxError(CypherError):
    """The query text could not be tokenised or parsed.

    Carries the offending position so callers can render a caret
    diagnostic.
    """

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            column = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class CypherTypeError(CypherError):
    """An operation was applied to values of an unsupported type."""


class CypherRuntimeError(CypherError):
    """A query failed during execution (unknown variable, bad argument...)."""


class UnknownFunctionError(CypherRuntimeError):
    """A function name does not exist in the registry."""

    def __init__(self, name: str):
        super().__init__(f"unknown function: {name}()")
        self.name = name


class ResourceExhausted(CypherRuntimeError):
    """Execution exceeded its configured intermediate-row budget.

    The serving layer maps this to graceful degradation (vector fallback)
    rather than letting one runaway scan hold memory for the whole
    process.
    """


class CypherDeadlineExceeded(CypherRuntimeError):
    """The per-request serving deadline expired mid-execution.

    Raised cooperatively between operator ``next()`` calls so long scans
    abort close to the deadline instead of overrunning it.
    """
