"""LLM interface shared by the RAG pipeline and evaluation judges.

Mirrors the small part of an LLM client the pipeline needs: a ``complete``
call from prompt text to :class:`CompletionResponse`.  The production paper
used GPT-3.5-Turbo; this repo ships :class:`~repro.llm.simulated.SimulatedLLM`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ChatMessage", "CompletionResponse", "LLM"]


@dataclass(frozen=True)
class ChatMessage:
    """One chat turn."""

    role: str  # "system", "user" or "assistant"
    content: str


@dataclass
class CompletionResponse:
    """The model's reply plus structured side-channel metadata.

    ``metadata`` carries machine-readable detail (e.g. the generated Cypher
    and its confidence) so tests don't have to re-parse model text.
    """

    text: str
    metadata: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


class LLM(ABC):
    """Minimal text-completion interface."""

    @property
    @abstractmethod
    def model_name(self) -> str:
        """Identifier reported in logs and provenance records."""

    @abstractmethod
    def complete(self, prompt: str) -> CompletionResponse:
        """Complete ``prompt``; must be deterministic for reproduction."""

    def chat(self, messages: list[ChatMessage]) -> CompletionResponse:
        """Default chat shim: concatenates messages into one prompt."""
        prompt = "\n\n".join(f"{m.role}: {m.content}" for m in messages)
        return self.complete(prompt)
