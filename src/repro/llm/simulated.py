"""The simulated backbone LLM.

``SimulatedLLM`` plays the role GPT-3.5-Turbo plays in the paper: one model
invoked through prompt text for every pipeline stage.  Prompts built by
:mod:`repro.core.prompts` carry explicit task markers; the model routes on
them:

* ``[TASK: text2cypher]`` → the semantic-parser head (:class:`TextToCypherModel`)
* ``[TASK: answer]``      → the verbalizer head, reading structured context
  (a JSON result payload or retrieved snippets) embedded in the prompt
* ``[TASK: rerank]``      → the shallow relevance scorer
* ``[TASK: judge]``       → the grounded answer judge

Everything is deterministic given the construction seed, and every
response's ``metadata`` carries the structured form of the output so that
callers (and tests) don't re-parse model text.
"""

from __future__ import annotations

import json
import re
from typing import Optional

from ..cypher.result import Record, ResultSet
from ..embed.model import HashingEmbedding
from ..faults import fault_point
from ..nlp.entities import Gazetteer
from .base import LLM, CompletionResponse
from .judge import AnswerJudge
from .reranker_model import RelevanceScorer
from .text2cypher import ErrorModel, TextToCypherModel
from .verbalize import ResultVerbalizer

__all__ = ["SimulatedLLM"]

_TASK_RE = re.compile(r"\[TASK:\s*(\w+)\]")
_SECTION_RE = re.compile(r"^\[(\w+)\]\n(.*?)(?=^\[\w+\]|\Z)", re.MULTILINE | re.DOTALL)


def _sections(prompt: str) -> dict[str, str]:
    """Parse ``[SECTION]\\n...`` blocks out of a prompt."""
    return {name.lower(): body.strip() for name, body in _SECTION_RE.findall(prompt)}


class SimulatedLLM(LLM):
    """Deterministic multi-head stand-in for the GPT-3.5 backbone."""

    def __init__(
        self,
        gazetteer: Optional[Gazetteer] = None,
        seed: int = 0,
        error_model: Optional[ErrorModel] = None,
        embedding: Optional[HashingEmbedding] = None,
    ) -> None:
        self.seed = seed
        self.embedding = embedding or HashingEmbedding()
        self.text2cypher = TextToCypherModel(gazetteer, seed=seed, error_model=error_model)
        self.verbalizer = ResultVerbalizer(seed=seed)
        self.scorer = RelevanceScorer(self.embedding)
        self.judge_model = AnswerJudge(self.embedding)

    @property
    def model_name(self) -> str:
        return f"simulated-gpt-iyp (seed={self.seed})"

    # ------------------------------------------------------------------
    # Generic prompt interface
    # ------------------------------------------------------------------

    def complete(self, prompt: str) -> CompletionResponse:
        """Route a marker-tagged prompt to the right head."""
        match = _TASK_RE.search(prompt)
        task = match.group(1).lower() if match else "answer"
        # Fault-injection site ("llm.<task>"): latency and transient/timeout
        # errors fire inside fault_point; a "garbage" action on the
        # translation head substitutes unparsable Cypher, which then fails
        # downstream exactly like an organic bad generation.
        action = fault_point(f"llm.{task}")
        if action is not None and action.kind == "garbage" and task == "text2cypher":
            garbage = action.payload or "MATCH (chaos. RETURN"
            return CompletionResponse(
                text=garbage,
                metadata={
                    "task": "text2cypher",
                    "cypher": garbage,
                    "confidence": 0.0,
                    "intent": "injected",
                    "perturbation": "injected_garbage",
                    "coverage": 0.0,
                },
            )
        sections = _sections(prompt)
        if task == "text2cypher":
            return self._complete_text2cypher(sections)
        if task == "answer":
            return self._complete_answer(sections)
        if task == "rerank":
            return self._complete_rerank(sections)
        if task == "judge":
            return self._complete_judge(sections)
        return CompletionResponse(
            text="I cannot handle this request.", metadata={"task": task, "error": "unknown task"}
        )

    # ------------------------------------------------------------------
    # Heads
    # ------------------------------------------------------------------

    def _complete_text2cypher(self, sections: dict[str, str]) -> CompletionResponse:
        question = sections.get("question", "")
        generation = self.text2cypher.generate(question)
        text = generation.cypher if generation.cypher else "UNABLE_TO_TRANSLATE"
        return CompletionResponse(
            text=text,
            metadata={
                "task": "text2cypher",
                "cypher": generation.cypher,
                "confidence": generation.confidence,
                "intent": generation.intent,
                "perturbation": generation.perturbation,
                "coverage": generation.coverage,
            },
        )

    def _complete_answer(self, sections: dict[str, str]) -> CompletionResponse:
        question = sections.get("question", "")
        result_json = sections.get("result", "")
        context = sections.get("context", "")
        if result_json:
            result = self._parse_result(result_json)
            if result is not None:
                text = self.verbalizer.verbalize(question, result)
                return CompletionResponse(
                    text=text, metadata={"task": "answer", "mode": "structured"}
                )
        snippets = [line.strip("- ").strip() for line in context.splitlines() if line.strip()]
        text = self.verbalizer.verbalize_context(question, snippets)
        return CompletionResponse(text=text, metadata={"task": "answer", "mode": "context"})

    def _complete_rerank(self, sections: dict[str, str]) -> CompletionResponse:
        query = sections.get("query", "")
        passage = sections.get("passage", "")
        score = self.scorer.score(query, passage)
        return CompletionResponse(
            text=f"{score}", metadata={"task": "rerank", "score": score}
        )

    def _complete_judge(self, sections: dict[str, str]) -> CompletionResponse:
        verdict = self.judge_model.judge(
            question=sections.get("question", ""),
            candidate=sections.get("candidate", ""),
            reference=sections.get("reference", ""),
            gold_facts=set(json.loads(sections["gold_facts"])) if "gold_facts" in sections else None,
        )
        return CompletionResponse(
            text=f"score: {verdict.score} rating: {verdict.rating}\n{verdict.rationale}",
            metadata={
                "task": "judge",
                "score": verdict.score,
                "rating": verdict.rating,
                "factuality": verdict.factuality,
                "relevance": verdict.relevance,
                "informativeness": verdict.informativeness,
            },
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _parse_result(result_json: str) -> Optional[ResultSet]:
        """Rebuild a ResultSet from the JSON payload embedded in a prompt."""
        try:
            payload = json.loads(result_json)
            keys = list(payload["keys"])
            records = [Record(keys, list(values)) for values in payload["rows"]]
            return ResultSet(keys, records)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None
