"""Simulated text-to-Cypher model.

This is the repo's stand-in for prompting GPT-3.5 with the IYP prompt
chain.  It behaves like an imperfect LLM in a mechanistic, reproducible
way:

1. **Semantic parsing** — the question is matched against an intent bank
   (keyword-synonym groups + required entities).  Simple single-relation
   questions match a precise intent; structurally complex multi-hop
   questions either match only a *sub*-intent (producing a plausible but
   wrong query) or nothing at all.
2. **Uncertainty-driven perturbation** — the fraction of the question the
   matched intent actually *explains* (token coverage) drives an error
   model: low coverage means a high chance the emitted query is perturbed
   (wrong direction, wrong relationship type, dropped filter, wrong
   entity, or an outright syntax error).

Together these reproduce the failure geometry the poster reports: accuracy
degrades with structural complexity, not with domain vocabulary.
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..nlp.entities import EntityExtractor, ExtractedEntities, Gazetteer
from ..nlp.tokenize import STOPWORDS, word_tokenize

__all__ = ["CypherGeneration", "ErrorModel", "TextToCypherModel", "INTENT_NAMES"]


@dataclass
class CypherGeneration:
    """The model's output: a query (or None) plus diagnostic metadata."""

    cypher: Optional[str]
    confidence: float
    intent: Optional[str]
    perturbation: Optional[str] = None
    coverage: float = 0.0

    @property
    def failed(self) -> bool:
        """True when no query could be produced at all."""
        return self.cypher is None


@dataclass
class ErrorModel:
    """Coverage → perturbation-probability curve.

    ``probability = clamp(base + slope * (1 - coverage) ** power)``.
    Defaults are calibrated so the Figure-2b difficulty profile emerges.
    """

    base: float = 0.28
    slope: float = 1.6
    power: float = 1.6
    syntax_share: float = 0.18  # share of perturbations that break syntax

    def probability(self, coverage: float) -> float:
        raw = self.base + self.slope * max(0.0, 1.0 - coverage) ** self.power
        return max(0.0, min(0.97, raw))


# ---------------------------------------------------------------------------
# Keyword synonym groups
# ---------------------------------------------------------------------------

def _g(*words: str) -> frozenset[str]:
    return frozenset(words)


K_COUNT = _g("how many", "number of", "count", "total")
K_LIST = _g("list", "which", "what are", "show", "give", "what is", "what", "who")
K_TOP = _g("top", "most", "largest", "biggest", "highest", "best ranked", "leading")
K_COUNTRY_LOC = _g("country", "registered", "based", "located", "headquartered")
K_POPULATION = _g("population", "percentage", "percent", "share", "serves", "eyeball users")
K_PREFIX = _g("prefix", "prefixes", "announce", "announces", "originate", "originates", "originated")
K_RANK = _g("rank", "ranked", "ranking", "asrank", "position")
K_IXP = _g("ixp", "ixps", "internet exchange", "exchange point", "exchanges")
K_MEMBER = _g("member", "members", "membership", "present at", "connected")
K_ORG = _g("organization", "organisation", "company", "operator", "manages", "managed", "operates", "runs")
K_TAG = _g("tag", "tags", "tagged", "categorized", "classified", "category")
K_PEER = _g("peer", "peers", "peering", "neighbors", "neighbours")
K_DEPEND = _g("depend", "depends", "dependent", "dependencies", "hegemony", "rely", "relies")
K_CUSTOMER = _g("customer", "customers", "downstream")
K_PROVIDER = _g("provider", "providers", "upstream", "transit provider")
K_NAME = _g("name", "named", "called", "known as")
K_DOMAIN = _g("domain", "domains", "website", "websites", "site", "sites")
K_RESOLVE = _g("resolve", "resolves", "resolution", "ip address", "ip addresses", "points to")
K_HOST = _g("hostname", "hostnames", "host name", "subdomain", "subdomains", "hosts")
K_PROBE = _g("probe", "probes", "atlas")
K_FACILITY = _g("facility", "facilities", "data center", "datacenter", "data centre", "colocation")
K_WEBSITE = _g("website", "url", "web page", "homepage")
K_AS_WORD = _g("as", "ases", "asn", "autonomous system", "autonomous systems", "network", "networks")
K_THRESHOLD = _g("above", "over", "more than", "greater than", "at least")


def _quote(value: str) -> str:
    return "'" + value.replace("\\", "\\\\").replace("'", "\\'") + "'"


# ---------------------------------------------------------------------------
# Intent bank
# ---------------------------------------------------------------------------

Builder = Callable[[ExtractedEntities], str]


@dataclass(frozen=True)
class Intent:
    """One recognisable question shape."""

    name: str
    groups: tuple[frozenset[str], ...]
    requires: tuple[str, ...]
    builder: Builder
    priority: int = 0

    def required_present(self, entities: ExtractedEntities) -> bool:
        return all(getattr(entities, attribute) for attribute in self.requires)


def _build_intents() -> list[Intent]:
    intents: list[Intent] = []

    def add(name, groups, requires, priority=0):
        def decorator(builder: Builder) -> Builder:
            intents.append(Intent(name, tuple(groups), tuple(requires), builder, priority))
            return builder

        return decorator

    # ---- AS-centric, single hop (easy) --------------------------------

    @add("as_country", [K_COUNTRY_LOC], ["asns"])
    def _as_country(e):
        return (
            f"MATCH (a:AS {{asn: {e.asns[0]}}})-[:COUNTRY]->(c:Country) "
            "RETURN c.name AS country"
        )

    @add("as_population_share", [K_POPULATION], ["asns", "countries"], priority=4)
    def _as_population(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[p:POPULATION]->"
            f"(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN p.percent AS percent"
        )

    @add("as_prefix_count", [K_COUNT, K_PREFIX], ["asns"], priority=2)
    def _as_prefix_count(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:ORIGINATE]->(p:Prefix) "
            "RETURN count(p) AS prefixes"
        )

    @add("as_prefix_list", [K_PREFIX], ["asns"])
    def _as_prefix_list(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:ORIGINATE]->(p:Prefix) "
            "RETURN p.prefix AS prefix ORDER BY prefix"
        )

    @add("prefix_origin", [K_PREFIX], ["prefixes"], priority=3)
    def _prefix_origin(e):
        return (
            f"MATCH (a:AS)-[:ORIGINATE]->(:Prefix {{prefix: {_quote(e.prefixes[0])}}}) "
            "RETURN a.asn AS asn, a.name AS name"
        )

    @add("as_name", [K_NAME], ["asns"])
    def _as_name(e):
        return f"MATCH (a:AS {{asn: {e.asns[0]}}}) RETURN a.name AS name"

    @add("as_rank", [K_RANK], ["asns"], priority=1)
    def _as_rank(e):
        ranking = e.rankings[0] if e.rankings else "CAIDA ASRank"
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[r:RANK]->"
            f"(:Ranking {{name: {_quote(ranking)}}}) RETURN r.rank AS rank"
        )

    @add("as_ixps", [K_IXP], ["asns"], priority=1)
    def _as_ixps(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:MEMBER_OF]->(i:IXP) "
            "RETURN i.name AS ixp ORDER BY ixp"
        )

    @add("as_org", [K_ORG], ["asns"], priority=1)
    def _as_org(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:MANAGED_BY]->(o:Organization) "
            "RETURN o.name AS organization"
        )

    @add("as_tags", [K_TAG], ["asns"], priority=1)
    def _as_tags(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:CATEGORIZED]->(t:Tag) "
            "RETURN t.label AS tag ORDER BY tag"
        )

    @add("as_website", [K_WEBSITE], ["asns"], priority=2)
    def _as_website(e):
        return f"MATCH (:AS {{asn: {e.asns[0]}}})-[:WEBSITE]->(u:URL) RETURN u.url AS url"

    @add("as_peer_count", [K_COUNT, K_PEER], ["asns"], priority=2)
    def _as_peer_count(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:PEERS_WITH]-(b:AS) "
            "RETURN count(DISTINCT b) AS peers"
        )

    @add("as_peers_list", [K_PEER], ["asns"])
    def _as_peers(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:PEERS_WITH]-(b:AS) "
            "RETURN DISTINCT b.asn AS asn ORDER BY asn"
        )

    @add("as_providers", [K_PROVIDER], ["asns"], priority=2)
    def _as_providers(e):
        return (
            f"MATCH (p:AS)-[:PEERS_WITH {{rel: -1}}]->(:AS {{asn: {e.asns[0]}}}) "
            "RETURN p.asn AS asn, p.name AS name ORDER BY asn"
        )

    @add("as_customers", [K_CUSTOMER], ["asns"], priority=2)
    def _as_customers(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:PEERS_WITH {{rel: -1}}]->(c:AS) "
            "RETURN c.asn AS asn ORDER BY asn"
        )

    @add("as_dependencies", [K_DEPEND], ["asns"])
    def _as_dependencies(e):
        threshold = ""
        numbers = [n for n in e.numbers if isinstance(n, float) or 0 < n < 1]
        if numbers:
            threshold = f" WHERE d.hege > {numbers[0]}"
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[d:DEPENDS_ON]->(t:AS)"
            f"{threshold} RETURN t.asn AS asn, d.hege AS hegemony "
            "ORDER BY hegemony DESC"
        )

    @add("as_dependents", [K_DEPEND, _g("on as", "on it", "dependent on")], ["asns"], priority=3)
    def _as_dependents(e):
        threshold = ""
        numbers = [n for n in e.numbers if isinstance(n, float) or 0 < n < 1]
        if numbers:
            threshold = f" WHERE d.hege > {numbers[0]}"
        return (
            f"MATCH (s:AS)-[d:DEPENDS_ON]->(:AS {{asn: {e.asns[0]}}})"
            f"{threshold} RETURN s.asn AS asn, d.hege AS hegemony "
            "ORDER BY hegemony DESC"
        )

    @add("as_probes", [K_PROBE], ["asns"], priority=1)
    def _as_probes(e):
        return (
            f"MATCH (p:AtlasProbe)-[:LOCATED_IN]->(:AS {{asn: {e.asns[0]}}}) "
            "RETURN count(p) AS probes"
        )

    # ---- Country-centric ------------------------------------------------

    @add("country_as_count", [K_COUNT, K_AS_WORD], ["countries"], priority=1)
    def _country_as_count(e):
        return (
            f"MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN count(a) AS ases"
        )

    @add("country_as_list", [K_LIST, K_AS_WORD], ["countries"])
    def _country_as_list(e):
        return (
            f"MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN a.asn AS asn ORDER BY asn"
        )

    @add("country_top_prefix_as", [K_TOP, K_PREFIX], ["countries"], priority=3)
    def _country_top_prefix_as(e):
        return (
            f"MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "MATCH (a)-[:ORIGINATE]->(p:Prefix) "
            "RETURN a.asn AS asn, a.name AS name, count(p) AS prefixes "
            "ORDER BY prefixes DESC LIMIT 1"
        )

    @add("country_ixps", [K_IXP], ["countries"], priority=1)
    def _country_ixps(e):
        return (
            f"MATCH (i:IXP)-[:COUNTRY]->(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN i.name AS ixp ORDER BY ixp"
        )

    @add("country_probes", [K_PROBE], ["countries"], priority=1)
    def _country_probes(e):
        return (
            f"MATCH (p:AtlasProbe)-[:COUNTRY]->(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN count(p) AS probes"
        )

    @add("country_population_value", [K_POPULATION], ["countries"])
    def _country_population(e):
        return (
            f"MATCH (c:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN c.population AS population"
        )

    @add("country_top_population_as", [K_TOP, K_POPULATION], ["countries"], priority=4)
    def _country_top_population_as(e):
        return (
            f"MATCH (a:AS)-[p:POPULATION]->(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN a.asn AS asn, a.name AS name, p.percent AS percent "
            "ORDER BY percent DESC LIMIT 1"
        )

    # ---- IXP-centric -----------------------------------------------------

    @add("ixp_members_count", [K_COUNT, K_MEMBER], ["ixps"], priority=2)
    def _ixp_members_count(e):
        return (
            f"MATCH (a:AS)-[:MEMBER_OF]->(:IXP {{name: {_quote(e.ixps[0])}}}) "
            "RETURN count(a) AS members"
        )

    @add("ixp_members_list", [K_MEMBER], ["ixps"])
    def _ixp_members_list(e):
        return (
            f"MATCH (a:AS)-[:MEMBER_OF]->(:IXP {{name: {_quote(e.ixps[0])}}}) "
            "RETURN a.asn AS asn ORDER BY asn"
        )

    @add("ixp_facility", [K_FACILITY], ["ixps"], priority=2)
    def _ixp_facility(e):
        return (
            f"MATCH (:IXP {{name: {_quote(e.ixps[0])}}})-[:LOCATED_IN]->(f:Facility) "
            "RETURN f.name AS facility"
        )

    @add("ixp_country", [K_COUNTRY_LOC], ["ixps"], priority=1)
    def _ixp_country(e):
        return (
            f"MATCH (:IXP {{name: {_quote(e.ixps[0])}}})-[:COUNTRY]->(c:Country) "
            "RETURN c.name AS country"
        )

    # ---- Tag / organization ----------------------------------------------

    @add("tag_as_count", [K_COUNT, K_TAG], ["tags"], priority=2)
    def _tag_as_count(e):
        return (
            f"MATCH (a:AS)-[:CATEGORIZED]->(:Tag {{label: {_quote(e.tags[0])}}}) "
            "RETURN count(a) AS ases"
        )

    @add("tag_as_list", [K_TAG], ["tags"])
    def _tag_as_list(e):
        return (
            f"MATCH (a:AS)-[:CATEGORIZED]->(:Tag {{label: {_quote(e.tags[0])}}}) "
            "RETURN a.asn AS asn ORDER BY asn"
        )

    @add("org_country", [K_COUNTRY_LOC], ["organizations"])
    def _org_country(e):
        return (
            f"MATCH (:Organization {{name: {_quote(e.organizations[0])}}})-[:COUNTRY]->(c:Country) "
            "RETURN c.name AS country"
        )

    @add("org_ases", [K_AS_WORD], ["organizations"], priority=1)
    def _org_ases(e):
        return (
            f"MATCH (a:AS)-[:MANAGED_BY]->(:Organization {{name: {_quote(e.organizations[0])}}}) "
            "RETURN a.asn AS asn ORDER BY asn"
        )

    # ---- Domains -----------------------------------------------------------

    @add("domain_rank", [K_RANK], ["domains"], priority=1)
    def _domain_rank(e):
        ranking = e.rankings[0] if e.rankings else "Tranco Top 1M"
        return (
            f"MATCH (:DomainName {{name: {_quote(e.domains[0])}}})-[r:RANK]->"
            f"(:Ranking {{name: {_quote(ranking)}}}) RETURN r.rank AS rank"
        )

    @add("top_domains", [K_TOP, K_DOMAIN], [], priority=1)
    def _top_domains(e):
        limit = int(e.numbers[0]) if e.numbers else 10
        ranking = e.rankings[0] if e.rankings else "Tranco Top 1M"
        return (
            f"MATCH (d:DomainName)-[r:RANK]->(:Ranking {{name: {_quote(ranking)}}}) "
            f"RETURN d.name AS domain ORDER BY r.rank LIMIT {limit}"
        )

    @add("domain_resolve", [K_RESOLVE], ["domains"], priority=2)
    def _domain_resolve(e):
        return (
            f"MATCH (:DomainName {{name: {_quote(e.domains[0])}}})-[:RESOLVES_TO]->(i:IP) "
            "RETURN i.ip AS ip ORDER BY ip"
        )

    @add("domain_hosts", [K_HOST], ["domains"], priority=1)
    def _domain_hosts(e):
        return (
            f"MATCH (h:HostName)-[:PART_OF]->(:DomainName {{name: {_quote(e.domains[0])}}}) "
            "RETURN h.name AS hostname ORDER BY hostname"
        )

    # ---- Compound (the multi-hop shapes the parser does know) -------------

    @add("peers_population", [K_PEER, K_POPULATION], ["asns", "countries"], priority=6)
    def _peers_population(e):
        return (
            f"MATCH (:AS {{asn: {e.asns[0]}}})-[:PEERS_WITH]-(b:AS)"
            f"-[p:POPULATION]->(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN round(sum(p.percent), 1) AS percent"
        )

    @add("tag_orgs", [K_ORG, K_TAG], ["tags"], priority=5)
    def _tag_orgs(e):
        return (
            "MATCH (o:Organization)<-[:MANAGED_BY]-(a:AS)-[:CATEGORIZED]->"
            f"(:Tag {{label: {_quote(e.tags[0])}}}) "
            "RETURN DISTINCT o.name AS organization ORDER BY organization"
        )

    @add("country_ixp_members", [K_MEMBER, K_IXP], ["countries"], priority=5)
    def _country_ixp_members(e):
        return (
            "MATCH (a:AS)-[:MEMBER_OF]->(i:IXP)-[:COUNTRY]->"
            f"(:Country {{country_code: {_quote(e.countries[0])}}}) "
            "RETURN DISTINCT a.asn AS asn ORDER BY asn"
        )

    @add("domain_origin_as", [K_RESOLVE, K_PREFIX], ["domains"], priority=6)
    def _domain_origin_as(e):
        return (
            f"MATCH (:DomainName {{name: {_quote(e.domains[0])}}})-[:RESOLVES_TO]->(:IP)"
            "-[:PART_OF]->(:Prefix)<-[:ORIGINATE]-(a:AS) "
            "RETURN DISTINCT a.asn AS asn ORDER BY asn"
        )

    @add("ixp_member_dependents", [K_MEMBER, K_DEPEND], ["ixps", "asns"], priority=6)
    def _ixp_member_dependents(e):
        return (
            f"MATCH (m:AS)-[:MEMBER_OF]->(:IXP {{name: {_quote(e.ixps[0])}}}) "
            f"MATCH (m)-[:DEPENDS_ON]->(:AS {{asn: {e.asns[0]}}}) "
            "RETURN count(DISTINCT m) AS members"
        )

    return intents


INTENTS: list[Intent] = _build_intents()
INTENT_NAMES: list[str] = [intent.name for intent in INTENTS]


# ---------------------------------------------------------------------------
# Matching machinery
# ---------------------------------------------------------------------------

def _match_keyword(text: str, keyword: str) -> bool:
    if " " in keyword:
        return keyword in text
    return re.search(rf"\b{re.escape(keyword)}\b", text) is not None


def _matched_keywords(text: str, groups: tuple[frozenset[str], ...]) -> Optional[list[str]]:
    """For each group, the matched synonyms; None when any group misses."""
    matched: list[str] = []
    for group in groups:
        hits = [keyword for keyword in group if _match_keyword(text, keyword)]
        if not hits:
            return None
        matched.extend(hits)
    return matched


class TextToCypherModel:
    """The simulated LLM's text-to-Cypher head."""

    def __init__(
        self,
        gazetteer: Optional[Gazetteer] = None,
        seed: int = 0,
        error_model: Optional[ErrorModel] = None,
    ) -> None:
        self.extractor = EntityExtractor(gazetteer)
        self.seed = seed
        self.error_model = error_model or ErrorModel()

    # -- public ----------------------------------------------------------

    def generate(self, question: str) -> CypherGeneration:
        """Translate ``question`` into Cypher (possibly wrong, possibly None)."""
        normalized = " " + " ".join(word_tokenize(question)) + " "
        entities = self.extractor.extract(question)

        best: Optional[Intent] = None
        best_score = -1.0
        best_matched: list[str] = []
        for intent in INTENTS:
            if not intent.required_present(entities):
                continue
            matched = _matched_keywords(normalized, intent.groups)
            if matched is None:
                continue
            score = 2.0 * len(intent.groups) + intent.priority + 0.5 * len(intent.requires)
            if score > best_score:
                best_score = score
                best = intent
                best_matched = matched

        if best is None:
            return CypherGeneration(cypher=None, confidence=0.0, intent=None, coverage=0.0)

        coverage = self._coverage(question, best_matched, entities)
        cypher = best.builder(entities)
        rng = self._rng(question)
        probability = self.error_model.probability(coverage)
        perturbation = None
        if rng.random() < probability:
            cypher, perturbation = self._perturb(cypher, entities, rng)
        confidence = round(max(0.05, min(0.99, coverage * (1.0 - 0.3 * bool(perturbation)))), 3)
        return CypherGeneration(
            cypher=cypher,
            confidence=confidence,
            intent=best.name,
            perturbation=perturbation,
            coverage=round(coverage, 3),
        )

    # -- internals --------------------------------------------------------

    def _rng(self, question: str) -> random.Random:
        digest = hashlib.md5(f"{self.seed}:{question}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "little"))

    def _coverage(
        self, question: str, matched_keywords: list[str], entities: ExtractedEntities
    ) -> float:
        """Fraction of content tokens the matched intent explains."""
        tokens = word_tokenize(question)
        if not tokens:
            return 0.0
        explained: set[str] = set()
        for keyword in matched_keywords:
            explained.update(word_tokenize(keyword))
        for values in (
            entities.prefixes, entities.ips, entities.domains, entities.ixps,
            entities.tags, entities.organizations, entities.rankings,
        ):
            for value in values:
                explained.update(word_tokenize(str(value)))
        for asn in entities.asns:
            explained.add(str(asn))
            explained.add(f"as{asn}")
        for code in entities.countries:
            explained.add(code.lower())
            name = None
            for key, value in self.extractor.gazetteer.countries.items():
                if value == code and len(key) > 3:
                    name = key
                    break
            if name:
                explained.update(word_tokenize(name))
        for number in entities.numbers:
            explained.add(str(int(number) if float(number).is_integer() else number))

        content = [token for token in tokens if token not in STOPWORDS]
        if not content:
            return 1.0
        covered = sum(1 for token in content if token in explained)
        return covered / len(content)

    # -- perturbations ------------------------------------------------------

    _RELTYPE_CONFUSION = {
        "COUNTRY": "POPULATION",
        "POPULATION": "COUNTRY",
        "ORIGINATE": "DEPENDS_ON",
        "DEPENDS_ON": "PEERS_WITH",
        "PEERS_WITH": "DEPENDS_ON",
        "MEMBER_OF": "MANAGED_BY",
        "MANAGED_BY": "MEMBER_OF",
        "RESOLVES_TO": "PART_OF",
        "PART_OF": "RESOLVES_TO",
        "CATEGORIZED": "NAME",
        "RANK": "CATEGORIZED",
        "LOCATED_IN": "COUNTRY",
        "WEBSITE": "NAME",
        "NAME": "WEBSITE",
    }

    def _perturb(
        self, cypher: str, entities: ExtractedEntities, rng: random.Random
    ) -> tuple[str, str]:
        """Damage a query the way an over-confident LLM does."""
        kinds = ["wrong_reltype", "wrong_direction", "drop_filter", "wrong_entity"]
        weights = [0.30, 0.22, 0.25, 0.23]
        if rng.random() < self.error_model.syntax_share:
            return self._break_syntax(cypher, rng), "syntax_error"
        for _ in range(4):
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            mutated = getattr(self, f"_perturb_{kind}")(cypher, entities, rng)
            if mutated is not None and mutated != cypher:
                return mutated, kind
        return self._break_syntax(cypher, rng), "syntax_error"

    def _perturb_wrong_reltype(self, cypher, entities, rng) -> Optional[str]:
        present = [rel for rel in self._RELTYPE_CONFUSION if f":{rel}" in cypher]
        if not present:
            return None
        target = rng.choice(present)
        return cypher.replace(f":{target}", f":{self._RELTYPE_CONFUSION[target]}", 1)

    def _perturb_wrong_direction(self, cypher, entities, rng) -> Optional[str]:
        if "]->(" in cypher:
            return cypher.replace("]->(", "]-(", 1).replace(")-[", ")<-[", 1)
        if ")<-[" in cypher:
            return cypher.replace(")<-[", ")-[", 1).replace("]-(", "]->(", 1)
        return None

    def _perturb_drop_filter(self, cypher, entities, rng) -> Optional[str]:
        match = re.search(r" \{[^{}]*\}", cypher)
        if match is None:
            return None
        return cypher[: match.start()] + cypher[match.end() :]

    def _perturb_wrong_entity(self, cypher, entities, rng) -> Optional[str]:
        if entities.asns:
            asn = entities.asns[0]
            return cypher.replace(f"asn: {asn}", f"asn: {asn + rng.randint(1, 9)}", 1)
        if entities.countries:
            code = entities.countries[0]
            other = rng.choice(["US", "DE", "FR", "GB", "CN", "BR"])
            if other == code:
                other = "JP"
            return cypher.replace(f"'{code}'", f"'{other}'", 1)
        return None

    def _break_syntax(self, cypher: str, rng: random.Random) -> str:
        choice = rng.randint(0, 2)
        if choice == 0:
            return cypher.replace("RETURN", "RETRUN", 1)
        if choice == 1 and ")" in cypher:
            index = cypher.rindex(")")
            return cypher[:index] + cypher[index + 1 :]
        return cypher.replace("MATCH", "MATCHE", 1)
