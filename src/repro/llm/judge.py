"""Grounded answer judge — the GPT-4 stand-in behind the G-Eval metric.

The judge extracts *facts* (numbers, ASNs, prefixes, IPs, domains, proper
names) from the candidate answer and compares them against facts from the
reference answer and the gold query's execution results.  Criteria follow
the G-Eval setup in the paper: factuality, relevance and informativeness,
combined with a sharpening curve that produces the bimodal score
distribution the poster reports for G-Eval.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from ..embed.model import HashingEmbedding
from ..nlp.tokenize import STOPWORDS, word_tokenize

__all__ = ["JudgeVerdict", "AnswerJudge", "extract_facts"]

_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?")
_TECH_RE = re.compile(
    r"\b(?:as\d{1,7}|\d{1,3}(?:\.\d{1,3}){3}(?:/\d{1,2})?|(?:[a-z0-9\-]+\.)+[a-z]{2,6})\b",
    re.IGNORECASE,
)
_NAME_RE = re.compile(r"\b[A-Z][A-Za-z0-9\-]+(?:\s+[A-Z][A-Za-z0-9\-]+)*\b")
_NEGATIVE_PHRASES = (
    "could not find", "no matching", "no records", "not possible",
    "could not translate", "could not retrieve", "no data",
)


def _normalize_number(text: str) -> str:
    value = float(text)
    if value.is_integer():
        return str(int(value))
    return f"{value:g}"


def extract_facts(text: str) -> set[str]:
    """Extract normalised factual atoms from an answer."""
    facts: set[str] = set()
    for match in _NUMBER_RE.finditer(text):
        facts.add(_normalize_number(match.group(0)))
    for match in _TECH_RE.finditer(text):
        facts.add(match.group(0).lower())
    for match in _NAME_RE.finditer(text):
        phrase = match.group(0)
        words = [word for word in phrase.split() if word.lower() not in STOPWORDS]
        if not words:
            continue
        # Skip bare sentence-initial words like "The" / "According".
        if len(words) == 1 and words[0].lower() in (
            "the", "according", "it", "iyp", "found", "there", "top", "based", "a",
        ):
            continue
        facts.add(" ".join(words).lower())
    return facts


@dataclass
class JudgeVerdict:
    """Per-criterion judge output."""

    score: float  # final sharpened score in [0, 1]
    factuality: float
    relevance: float
    informativeness: float
    rating: int  # 1-5, G-Eval style
    rationale: str = ""
    candidate_facts: set[str] = field(default_factory=set)
    gold_facts: set[str] = field(default_factory=set)


class AnswerJudge:
    """Scores a candidate answer against reference + gold grounding."""

    #: criterion weights (paper: factuality, relevance, informativeness)
    WEIGHTS = (0.62, 0.23, 0.15)
    #: logistic sharpening — pushes scores toward the extremes (bimodality)
    SHARPNESS = 9.0
    MIDPOINT = 0.55

    def __init__(self, embedding: HashingEmbedding | None = None) -> None:
        self.embedding = embedding or HashingEmbedding()

    def judge(
        self,
        question: str,
        candidate: str,
        reference: str,
        gold_facts: set[str] | None = None,
    ) -> JudgeVerdict:
        """Evaluate ``candidate`` given the reference answer and gold facts."""
        reference_facts = extract_facts(reference)
        grounding = set(reference_facts)
        if gold_facts:
            grounding |= {fact.lower() for fact in gold_facts}
        candidate_facts = extract_facts(candidate)

        factuality = self._factuality(candidate, candidate_facts, reference_facts, grounding)
        relevance = self._relevance(question, candidate, reference)
        informativeness = self._informativeness(candidate, candidate_facts, reference_facts)

        weighted = (
            self.WEIGHTS[0] * factuality
            + self.WEIGHTS[1] * relevance
            + self.WEIGHTS[2] * informativeness
        )
        score = 1.0 / (1.0 + math.exp(-self.SHARPNESS * (weighted - self.MIDPOINT)))
        rating = max(1, min(5, 1 + round(score * 4)))
        rationale = (
            f"factuality={factuality:.2f} relevance={relevance:.2f} "
            f"informativeness={informativeness:.2f} -> weighted={weighted:.2f}"
        )
        return JudgeVerdict(
            score=round(score, 4),
            factuality=round(factuality, 4),
            relevance=round(relevance, 4),
            informativeness=round(informativeness, 4),
            rating=rating,
            rationale=rationale,
            candidate_facts=candidate_facts,
            gold_facts=grounding,
        )

    # ------------------------------------------------------------------

    def _factuality(
        self,
        candidate: str,
        candidate_facts: set[str],
        reference_facts: set[str],
        grounding: set[str],
    ) -> float:
        candidate_negative = any(phrase in candidate.lower() for phrase in _NEGATIVE_PHRASES)
        reference_empty = not reference_facts
        if reference_empty:
            # Gold answer itself reports nothing: an honest "no data" is right.
            return 1.0 if candidate_negative or not candidate_facts else 0.35
        if candidate_negative or not candidate_facts:
            return 0.05  # the graph had an answer; the candidate gave none
        supported = sum(1 for fact in candidate_facts if fact in grounding)
        precision = supported / len(candidate_facts)
        recalled = sum(1 for fact in reference_facts if fact in candidate_facts)
        recall = recalled / len(reference_facts)
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def _relevance(self, question: str, candidate: str, reference: str) -> float:
        to_question = self.embedding.similarity(question, candidate)
        to_reference = self.embedding.similarity(reference, candidate)
        blended = 0.35 * to_question + 0.65 * to_reference
        return max(0.0, min(1.0, blended * 1.25))

    def _informativeness(
        self, candidate: str, candidate_facts: set[str], reference_facts: set[str]
    ) -> float:
        tokens = word_tokenize(candidate)
        if not tokens:
            return 0.0
        expected = max(1, len(reference_facts))
        density = min(1.0, len(candidate_facts) / expected)
        brevity = min(1.0, len(tokens) / 6.0)
        return 0.7 * density + 0.3 * brevity
