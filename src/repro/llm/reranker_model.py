"""Shallow relevance scorer backing the LLMReranker retrieval stage."""

from __future__ import annotations

from ..embed.model import HashingEmbedding
from ..nlp.similarity import token_f1
from ..nlp.tokenize import STOPWORDS, word_tokenize

__all__ = ["RelevanceScorer"]


class RelevanceScorer:
    """Scores (query, passage) relevance on a 0-10 scale.

    Blends embedding cosine with content-word overlap — cheap, monotone,
    and deterministic; the properties the paper's "shallow LLM-based
    scorer" provides for context re-ranking.
    """

    def __init__(self, embedding: HashingEmbedding | None = None) -> None:
        self.embedding = embedding or HashingEmbedding()

    def score(self, query: str, passage: str) -> float:
        """Relevance of ``passage`` to ``query`` in [0, 10]."""
        if not passage.strip():
            return 0.0
        semantic = max(0.0, self.embedding.similarity(query, passage))
        query_content = [t for t in word_tokenize(query) if t not in STOPWORDS]
        passage_tokens = set(word_tokenize(passage))
        if query_content:
            lexical = sum(1 for t in query_content if t in passage_tokens) / len(query_content)
        else:
            lexical = 0.0
        overlap_f1 = token_f1(passage, query)
        blended = 0.45 * semantic + 0.40 * lexical + 0.15 * overlap_f1
        return round(10.0 * min(1.0, blended), 3)

    def rank(self, query: str, passages: list[str]) -> list[tuple[int, float]]:
        """Indices and scores of ``passages`` sorted by decreasing relevance."""
        scored = [(index, self.score(query, passage)) for index, passage in enumerate(passages)]
        return sorted(scored, key=lambda pair: (-pair[1], pair[0]))
