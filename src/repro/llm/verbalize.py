"""Result verbalizer: turns Cypher result sets into natural-language answers.

This is the generation stage's "LLM".  Phrasing is picked deterministically
from template banks, keyed by a hash of (seed, question) — so the ChatIYP
answer and the validation model's reference answer (different seeds) state
the same facts with different surface forms, exactly the regime where BLEU
under-rewards correct answers (the poster's Finding 1).
"""

from __future__ import annotations

import hashlib
import random

from ..cypher.result import Record, ResultSet, render_value

__all__ = ["ResultVerbalizer"]

_MAX_LIST_ITEMS = 12
_MAX_ROWS = 5


def _humanize(column: str) -> str:
    """Turn a column key into a readable phrase."""
    column = column.split(".")[-1]
    column = column.replace("_", " ").strip()
    return column or "value"


def _join_values(values: list[str]) -> str:
    if not values:
        return ""
    if len(values) == 1:
        return values[0]
    return ", ".join(values[:-1]) + " and " + values[-1]


class ResultVerbalizer:
    """Deterministic, template-bank natural-language generation."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _rng(self, question: str) -> random.Random:
        digest = hashlib.md5(f"verbalize:{self.seed}:{question}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "little"))

    # ------------------------------------------------------------------

    def verbalize(self, question: str, result: ResultSet) -> str:
        """Produce the answer text for ``result``."""
        rng = self._rng(question)
        if not result.records:
            return rng.choice(
                [
                    "I could not find any matching information in the IYP graph.",
                    "The IYP graph contains no records matching this question.",
                    "No matching data was found in the Internet Yellow Pages.",
                ]
            )
        if len(result.keys) == 1:
            return self._single_column(question, result, rng)
        if len(result.records) == 1:
            return self._single_row(result.records[0], rng)
        return self._table(result, rng)

    def verbalize_context(self, question: str, snippets: list[str]) -> str:
        """Fallback answer from vector-retrieved node descriptions.

        Used when symbolic translation failed: honest about its indirect
        provenance, and summarises the closest graph context instead.
        """
        rng = self._rng(question)
        if not snippets:
            return "I could not retrieve relevant information from the IYP graph."
        lead = rng.choice(
            [
                "I could not translate this question into a precise graph query, "
                "but the most closely related information in IYP is:",
                "A direct query was not possible; the closest matching IYP records are:",
                "Based on the most similar entries in the IYP graph:",
            ]
        )
        shown = snippets[:3]
        return lead + " " + " ".join(f"{snippet}." for snippet in shown)

    # ------------------------------------------------------------------

    def _single_column(self, question: str, result: ResultSet, rng: random.Random) -> str:
        column = _humanize(result.keys[0])
        values = [render_value(record[0]) for record in result.records]
        if len(values) == 1:
            value = values[0]
            templates = [
                f"The {column} is {value}.",
                f"{value} is the {column}.",
                f"According to the IYP graph, the {column} is {value}.",
                f"The answer is {value}.",
            ]
            if "percent" in result.keys[0].lower() or "percent" in question.lower():
                templates.append(f"It accounts for {value}% of the population.")
                templates.append(f"The share is {value}%.")
            return rng.choice(templates)
        shown = values[:_MAX_LIST_ITEMS]
        more = len(values) - len(shown)
        joined = _join_values(shown)
        suffix = f" and {more} more" if more > 0 else ""
        templates = [
            f"The {column}s are: {joined}{suffix}.",
            f"There are {len(values)} results: {joined}{suffix}.",
            f"IYP lists the following {column}s: {joined}{suffix}.",
        ]
        return rng.choice(templates)

    def _single_row(self, record: Record, rng: random.Random) -> str:
        pairs = [
            f"{_humanize(key)} {render_value(value)}"
            for key, value in record.items()
            if value is not None
        ]
        joined = _join_values(pairs)
        templates = [
            f"The result is: {joined}.",
            f"IYP reports {joined}.",
            f"According to the graph, {joined}.",
        ]
        return rng.choice(templates)

    def _table(self, result: ResultSet, rng: random.Random) -> str:
        rows = []
        for record in result.records[:_MAX_ROWS]:
            pairs = ", ".join(
                f"{_humanize(key)} {render_value(value)}" for key, value in record.items()
            )
            rows.append(f"({pairs})")
        more = len(result.records) - len(rows)
        suffix = f"; {more} further rows omitted" if more > 0 else ""
        lead = rng.choice(
            [
                f"Found {len(result.records)} results.",
                f"The query returned {len(result.records)} rows.",
                f"{len(result.records)} matching records were found.",
            ]
        )
        return f"{lead} Top results: " + "; ".join(rows) + suffix + "."
