"""Simulated LLM backbone: text-to-Cypher, verbalizer, judge, reranker."""

from .base import LLM, ChatMessage, CompletionResponse
from .judge import AnswerJudge, JudgeVerdict, extract_facts
from .reranker_model import RelevanceScorer
from .simulated import SimulatedLLM
from .text2cypher import CypherGeneration, ErrorModel, TextToCypherModel
from .verbalize import ResultVerbalizer

__all__ = [
    "LLM",
    "ChatMessage",
    "CompletionResponse",
    "SimulatedLLM",
    "TextToCypherModel",
    "CypherGeneration",
    "ErrorModel",
    "ResultVerbalizer",
    "AnswerJudge",
    "JudgeVerdict",
    "extract_facts",
    "RelevanceScorer",
]
