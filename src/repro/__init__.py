"""ChatIYP reproduction: natural-language access to the Internet Yellow Pages.

Quickstart::

    from repro import ChatIYP

    bot = ChatIYP()
    response = bot.ask("What is the percentage of Japan's population in AS2497?")
    print(response.answer)   # natural-language answer
    print(response.cypher)   # the generated Cypher, for transparency

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.graph` / :mod:`repro.cypher` — in-memory property graph +
  Cypher engine (the Neo4j substitute);
* :mod:`repro.iyp` — synthetic Internet Yellow Pages dataset;
* :mod:`repro.embed` / :mod:`repro.llm` — deterministic embeddings and the
  simulated LLM backbone;
* :mod:`repro.rag` — retrievers, reranker, synthesizer, pipeline;
* :mod:`repro.core` — the ChatIYP system itself;
* :mod:`repro.eval` — CypherEval benchmark, metrics, evaluation harness;
* :mod:`repro.server` — HTTP API and CLI chat.
"""

from .core.chatiyp import ChatIYP, ChatResponse
from .core.config import ChatIYPConfig

__version__ = "1.0.0"

__all__ = ["ChatIYP", "ChatResponse", "ChatIYPConfig", "__version__"]
