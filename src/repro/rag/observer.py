"""Observer/middleware hooks of the stage-execution kernel.

A :class:`PipelineObserver` receives a callback around every stage the
kernel runs — ``on_stage_start`` / ``on_stage_end`` / ``on_error`` — which
is the seam for tracing, metrics, logging, or any cross-cutting concern
that should not live inside the stages themselves.  Observer failures are
contained: a raising observer is logged and skipped, never allowed to
break a query.

Two production-shaped implementations ship with the kernel:

* :class:`TracingObserver` — records one structured span per stage run
  (ordered, with duration and the error that ended the stage, if any);
* :class:`MetricsRegistry` — a cumulative timing/counter registry keyed by
  stage name, cheap enough to leave attached in serving paths (the HTTP
  server exposes its :meth:`~MetricsRegistry.snapshot` under ``/metrics``).
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .errors import PipelineError
    from .stages import QueryContext

__all__ = [
    "PipelineObserver",
    "StageSpan",
    "TracingObserver",
    "StageStats",
    "OperatorStats",
    "MetricsRegistry",
]

logger = logging.getLogger(__name__)


class PipelineObserver:
    """Base observer: every hook is a no-op, override what you need."""

    def on_stage_start(self, stage: str, ctx: "QueryContext") -> None:
        """Called immediately before ``stage`` runs."""

    def on_stage_end(self, stage: str, ctx: "QueryContext", elapsed_ms: float) -> None:
        """Called after ``stage`` ran, with its wall-clock duration."""

    def on_error(self, stage: str, error: "PipelineError", ctx: "QueryContext") -> None:
        """Called when ``stage`` recorded (or raised) a pipeline error."""


class _ObserverFanout:
    """Dispatches kernel events to many observers, containing failures."""

    def __init__(self, observers: Iterable[PipelineObserver]) -> None:
        self.observers = tuple(observers)

    def emit(self, hook: str, *args) -> None:
        for observer in self.observers:
            try:
                getattr(observer, hook)(*args)
            except Exception:  # noqa: BLE001 - observers must never break a query
                logger.warning(
                    "pipeline observer %s.%s failed", type(observer).__name__, hook,
                    exc_info=True,
                )


@dataclass
class StageSpan:
    """One recorded stage execution."""

    stage: str
    index: int
    elapsed_ms: float = 0.0
    error: Optional[str] = None
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {"stage": self.stage, "index": self.index, "elapsed_ms": self.elapsed_ms}
        if self.error is not None:
            payload["error"] = self.error
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload


class TracingObserver(PipelineObserver):
    """Collects an ordered span per stage run — a poor man's trace.

    Thread-safe: concurrent requests sharing one observer interleave their
    spans in the recorded order without losing or corrupting any — span
    and open-table mutation happens under an internal lock.
    """

    def __init__(self) -> None:
        self.spans: list[StageSpan] = []
        self._open: dict[str, StageSpan] = {}
        self._lock = threading.Lock()

    def on_stage_start(self, stage: str, ctx: "QueryContext") -> None:
        with self._lock:
            span = StageSpan(stage=stage, index=len(self.spans) + len(self._open))
            self._open[stage] = span

    def on_stage_end(self, stage: str, ctx: "QueryContext", elapsed_ms: float) -> None:
        with self._lock:
            span = self._open.pop(stage, None) or StageSpan(
                stage=stage, index=len(self.spans)
            )
            span.elapsed_ms = elapsed_ms
            self.spans.append(span)

    def on_error(self, stage: str, error: "PipelineError", ctx: "QueryContext") -> None:
        with self._lock:
            span = self._open.get(stage)
            if span is not None:
                span.error = type(error).__name__
            else:  # error surfaced outside an open span (e.g. re-raised later)
                self.spans.append(
                    StageSpan(
                        stage=stage, index=len(self.spans), error=type(error).__name__
                    )
                )

    def to_dicts(self) -> list[dict]:
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def reset(self) -> None:
        with self._lock:
            self.spans.clear()
            self._open.clear()


@dataclass
class StageStats:
    """Cumulative latency/throughput aggregate for one stage."""

    calls: int = 0
    errors: int = 0
    total_ms: float = 0.0
    min_ms: float = float("inf")
    max_ms: float = 0.0

    def record(self, elapsed_ms: float) -> None:
        self.calls += 1
        self.total_ms += elapsed_ms
        self.min_ms = min(self.min_ms, elapsed_ms)
        self.max_ms = max(self.max_ms, elapsed_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.calls if self.calls else 0.0

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "errors": self.errors,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "min_ms": round(self.min_ms, 3) if self.calls else 0.0,
            "max_ms": round(self.max_ms, 3),
        }


@dataclass
class OperatorStats:
    """Cumulative per-physical-operator aggregate from Cypher profiles.

    One entry per operator *name* (LabelScan, Expand, TopK, ...), fed by
    the executed operator trees that profiled retrievals attach to
    ``diagnostics["cypher_profile"]``.  Rows and self-time accumulate so
    the registry answers "where do symbolic queries spend their time"
    without keeping any per-query state.
    """

    calls: int = 0
    rows: int = 0
    total_ms: float = 0.0

    def record(self, rows: int, elapsed_ms: float) -> None:
        self.calls += 1
        self.rows += rows
        self.total_ms += elapsed_ms

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "rows": self.rows,
            "total_ms": round(self.total_ms, 3),
        }


class MetricsRegistry(PipelineObserver):
    """Timing/counter registry fed by kernel callbacks.

    Per-stage :class:`StageStats` plus free-form named counters
    (``increment``), so stages and policies can count routing decisions
    without knowing how the numbers are consumed.  When the symbolic stage
    surfaces an executed operator tree (``diagnostics["cypher_profile"]``)
    the registry also folds every operator into per-name
    :class:`OperatorStats` histograms.

    Thread-safe: counter increments and stage-stat mutation happen under an
    internal lock, so concurrent ``/ask`` requests never lose or duplicate
    updates and ``snapshot()`` always returns a consistent view.
    """

    def __init__(self) -> None:
        self.stages: dict[str, StageStats] = {}
        self.counters: dict[str, int] = {}
        self.operators: dict[str, OperatorStats] = {}
        self._lock = threading.Lock()

    # -- observer hooks ----------------------------------------------------

    def on_stage_end(self, stage: str, ctx: "QueryContext", elapsed_ms: float) -> None:
        with self._lock:
            self.stages.setdefault(stage, StageStats()).record(elapsed_ms)
        profile = ctx.diagnostics.get("cypher_profile") if stage == "symbolic" else None
        if profile is not None:
            self.record_profile(profile)

    def record_operator(self, name: str, rows: int, elapsed_ms: float) -> None:
        """Fold one executed operator into its per-name aggregate."""
        with self._lock:
            self.operators.setdefault(name, OperatorStats()).record(rows, elapsed_ms)

    def record_profile(self, profile: dict) -> None:
        """Walk an executed operator tree, recording every node.

        ``self_time_ms`` is used (not inclusive ``time_ms``) so summing the
        aggregates never double-counts a parent and its children.
        """
        self.record_operator(
            str(profile.get("operator", "?")),
            int(profile.get("rows", 0)),
            float(profile.get("self_time_ms", profile.get("time_ms", 0.0))),
        )
        for child in profile.get("children", ()):  # depth-first, order moot
            self.record_profile(child)

    def on_error(self, stage: str, error: "PipelineError", ctx: "QueryContext") -> None:
        with self._lock:
            self.stages.setdefault(stage, StageStats()).errors += 1
            self._increment_locked(f"error.{error.kind}", 1)

    # -- registry ----------------------------------------------------------

    def _increment_locked(self, counter: str, by: int) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + by

    def increment(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._increment_locked(counter, by)

    def snapshot(self) -> dict:
        """JSON-friendly dump of every stage aggregate and counter."""
        with self._lock:
            snapshot = {
                "stages": {
                    name: stats.to_dict() for name, stats in sorted(self.stages.items())
                },
                "counters": dict(sorted(self.counters.items())),
            }
            # Only present once at least one profiled query ran, so the
            # payload shape is unchanged for non-profiling deployments.
            if self.operators:
                snapshot["operators"] = {
                    name: stats.to_dict()
                    for name, stats in sorted(self.operators.items())
                }
            return snapshot

    def reset(self) -> None:
        with self._lock:
            self.stages.clear()
            self.counters.clear()
            self.operators.clear()
