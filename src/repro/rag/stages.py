"""Stage-execution kernel of the RAG pipeline.

The Figure-1 flow is decomposed into four composable stages —

``SymbolicRetrievalStage`` → ``FallbackRoutingStage`` → ``RerankStage``
→ ``SynthesisStage``

— each a :class:`Stage` transforming an immutable-ish :class:`QueryContext`
record.  The :class:`StagePipeline` kernel runs the sequence, times every
stage, and notifies the attached :class:`~repro.rag.observer.PipelineObserver`
hooks around each one.  Stages never share mutable state: context evolution
goes through :meth:`QueryContext.evolve`, and retriever-owned metadata is
deep-copied before it enters the diagnostics, so callers can mutate a
response's diagnostics without corrupting retriever or LLM internals.
"""

from __future__ import annotations

import copy
import logging
import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Protocol, runtime_checkable

from ..cypher.result import ResultSet, render_value
from ..faults import fault_point
from ..serving.breaker import CircuitBreaker
from ..serving.deadline import Deadline
from ..serving.retry import RetryPolicy
from .errors import (
    CircuitOpen,
    DeadlineExceeded,
    ExecutionError,
    PipelineError,
    classify_symbolic_failure,
)
from .observer import PipelineObserver, _ObserverFanout
from .reranker import LLMReranker
from .retriever import Retriever
from .routing import RoutingPolicy, VectorRetrieve
from .synthesizer import ResponseSynthesizer
from .types import NodeWithScore, RetrievalResult

__all__ = [
    "QueryContext",
    "Stage",
    "SymbolicRetrievalStage",
    "FallbackRoutingStage",
    "RerankStage",
    "SynthesisStage",
    "StagePipeline",
    "mark_degraded",
]

# Stable logger name: pipeline events stayed on "repro.rag.pipeline" when the
# engine was split into stages, so existing log-capture consumers keep working.
logger = logging.getLogger("repro.rag.pipeline")


def mark_degraded(diagnostics: dict[str, Any], reason: str) -> dict[str, Any]:
    """Return ``diagnostics`` with ``reason`` appended to the degraded list.

    ``diagnostics["degraded"]`` is the machine-readable record of every
    graceful-degradation decision a request hit (skipped stages, breaker
    reroutes, partial synthesis); callers surface it in API responses and
    count it in metrics.
    """
    degraded = list(diagnostics.get("degraded", ()))
    if reason not in degraded:
        degraded.append(reason)
    return {**diagnostics, "degraded": degraded}


@dataclass(frozen=True)
class QueryContext:
    """Everything one question accumulates on its way through the stages.

    Frozen: stages return an evolved copy via :meth:`evolve` instead of
    mutating in place, so an observer always sees a consistent snapshot
    and a stage cannot leak partial writes into its successors.
    """

    question: str
    #: raw outputs of the two retrieval paths (``None`` until produced)
    symbolic: Optional[RetrievalResult] = None
    semantic: Optional[RetrievalResult] = None
    #: the retrieval chosen by routing (feeds synthesis)
    retrieval: Optional[RetrievalResult] = None
    #: candidate context before reranking / surviving context after
    candidates: list[NodeWithScore] = field(default_factory=list)
    context: list[NodeWithScore] = field(default_factory=list)
    answer: Optional[str] = None
    source: str = ""
    cypher: Optional[str] = None
    result: Optional[ResultSet] = None
    #: first taxonomy error hit on the way (stages record, never raise)
    error: Optional[PipelineError] = None
    sparse: bool = False
    fallback_used: bool = False
    diagnostics: dict[str, Any] = field(default_factory=dict)
    #: per-stage wall-clock timings (ms), filled by the kernel
    timings: dict[str, float] = field(default_factory=dict)
    #: per-request time budget (``None`` = unbounded); stages check the
    #: remaining time and degrade gracefully once it is exhausted
    deadline: Optional[Deadline] = None

    def evolve(self, **changes: Any) -> "QueryContext":
        """Return a copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)


@runtime_checkable
class Stage(Protocol):
    """One pipeline step: context in, evolved context out."""

    name: str

    def run(self, ctx: QueryContext) -> QueryContext:
        """Transform ``ctx``; record expected failures on ``ctx.error``."""
        ...


class SymbolicRetrievalStage:
    """Text-to-Cypher translation + execution (the paper's symbolic path).

    Serving hardening hooks: when the request deadline is already blown the
    stage skips translation entirely (recording :class:`DeadlineExceeded`
    so routing degrades to the vector path), and an optional
    :class:`~repro.serving.breaker.CircuitBreaker` gates the attempt —
    execution-class failures feed the breaker, and while it is open every
    symbolic attempt is skipped with :class:`CircuitOpen` recorded.
    """

    name = "symbolic"

    def __init__(
        self,
        retriever: Retriever,
        sparse_row_threshold: int = 0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.retriever = retriever
        self.sparse_row_threshold = sparse_row_threshold
        self.breaker = breaker

    def _skip(
        self, ctx: QueryContext, error: PipelineError, reason: str
    ) -> QueryContext:
        """Degrade: record ``error`` without attempting symbolic retrieval."""
        symbolic = RetrievalResult(source="text2cypher", error=error.kind)
        diagnostics = mark_degraded(
            {
                **ctx.diagnostics,
                "symbolic_error": error.kind,
                "fallback_used": False,
                "error_class": error.to_dict(),
            },
            reason,
        )
        return ctx.evolve(
            symbolic=symbolic,
            error=error,
            sparse=True,
            source=symbolic.source,
            diagnostics=diagnostics,
        )

    def run(self, ctx: QueryContext) -> QueryContext:
        if ctx.deadline is not None and ctx.deadline.expired:
            return self._skip(
                ctx,
                DeadlineExceeded("deadline exhausted before symbolic retrieval"),
                "symbolic_skipped_deadline",
            )
        if self.breaker is not None and not self.breaker.allow():
            return self._skip(
                ctx,
                CircuitOpen("symbolic circuit breaker is open"),
                "symbolic_skipped_breaker_open",
            )
        if ctx.deadline is not None and getattr(self.retriever, "supports_deadline", False):
            # Deadline-aware retrievers check the clock cooperatively
            # between operator next() calls inside the engine.
            symbolic = self.retriever.retrieve(ctx.question, deadline=ctx.deadline)
        else:
            symbolic = self.retriever.retrieve(ctx.question)
        if symbolic.error is not None:
            logger.debug(
                "symbolic retrieval failed for %r: %s", ctx.question, symbolic.error
            )
        error = classify_symbolic_failure(symbolic, self.sparse_row_threshold)
        if self.breaker is not None:
            # Execution-class failures are infrastructure signals; a clean
            # run heals the breaker.  Translation misses and sparse results
            # say nothing about engine health, so they stay neutral.
            if isinstance(error, ExecutionError):
                self.breaker.record_failure()
            elif error is None:
                self.breaker.record_success()
            else:
                self.breaker.record_neutral()
        sparse = symbolic.result is not None and (
            len(symbolic.result.records) <= self.sparse_row_threshold
        )
        generation = copy.deepcopy(dict(symbolic.metadata))
        # The executed operator tree is a top-level diagnostic (observers
        # aggregate per-operator stats from it), not generation metadata.
        cypher_profile = generation.pop("cypher_profile", None)
        diagnostics = {
            **ctx.diagnostics,
            # deep copy: diagnostics must be safe to mutate post-hoc without
            # reaching back into retriever/LLM-owned structures
            "generation": generation,
            "symbolic_error": symbolic.error,
            "fallback_used": False,
        }
        if cypher_profile is not None:
            diagnostics["cypher_profile"] = cypher_profile
        if error is not None:
            diagnostics["error_class"] = error.to_dict()
        return ctx.evolve(
            symbolic=symbolic,
            cypher=symbolic.cypher,
            source=symbolic.source,
            error=error,
            sparse=sparse,
            diagnostics=diagnostics,
        )


class FallbackRoutingStage:
    """Applies the :class:`RoutingPolicy` to pick the generation route."""

    name = "routing"

    def __init__(self, policy: RoutingPolicy, vector_retrieve: VectorRetrieve = None) -> None:
        self.policy = policy
        self.vector_retrieve = vector_retrieve

    def run(self, ctx: QueryContext) -> QueryContext:
        decision = self.policy.route(ctx, self.vector_retrieve)
        diagnostics = {**ctx.diagnostics, **copy.deepcopy(decision.diagnostics)}
        for reason in decision.degraded:
            diagnostics = mark_degraded(diagnostics, reason)
        if decision.fallback_used:
            logger.debug(
                "falling back to vector retrieval for %r (sparse=%s)",
                ctx.question,
                ctx.sparse,
            )
            diagnostics["fallback_used"] = True
        diagnostics["route"] = self.policy.name
        semantic = ctx.semantic
        if decision.fallback_used or decision.retrieval.source == "vector":
            semantic = decision.retrieval
        return ctx.evolve(
            semantic=semantic,
            retrieval=decision.retrieval,
            candidates=list(decision.candidates),
            source=decision.source,
            cypher=decision.cypher,
            result=decision.result,
            fallback_used=decision.fallback_used,
            diagnostics=diagnostics,
        )


class RerankStage:
    """LLM re-scoring of the routed candidates — exactly once per query.

    Reranking is the cheapest stage to shed: when the request deadline is
    blown the stage passes candidates through untouched (recording
    ``rerank_skipped_deadline``), and transient reranker failures are
    retried under the optional :class:`~repro.serving.retry.RetryPolicy`.
    """

    name = "rerank"

    def __init__(
        self,
        reranker: Optional[LLMReranker],
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.reranker = reranker
        self.retry = retry

    def run(self, ctx: QueryContext) -> QueryContext:
        if self.reranker is None:
            return ctx.evolve(context=list(ctx.candidates))
        if ctx.deadline is not None and ctx.deadline.expired:
            return ctx.evolve(
                context=list(ctx.candidates),
                diagnostics=mark_degraded(ctx.diagnostics, "rerank_skipped_deadline"),
            )
        candidates = list(ctx.candidates)
        if self.retry is not None:
            context = self.retry.run(
                self.reranker.rerank, ctx.question, candidates, deadline=ctx.deadline
            )
        else:
            context = self.reranker.rerank(ctx.question, candidates)
        return ctx.evolve(context=context)


class SynthesisStage:
    """Answer generation from the routed retrieval + surviving context.

    On a blown deadline the stage degrades to a *partial answer* built
    directly from the structured rows / context snippets already in hand —
    no LLM call — and records ``synthesis_partial_deadline``.  Transient
    synthesizer failures are retried under the optional
    :class:`~repro.serving.retry.RetryPolicy`.
    """

    name = "synthesis"

    #: how many rows/snippets a degraded partial answer may surface
    _PARTIAL_LIMIT = 3

    def __init__(
        self,
        synthesizer: ResponseSynthesizer,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.synthesizer = synthesizer
        self.retry = retry

    def _partial_answer(self, ctx: QueryContext) -> str:
        """Cheapest viable answer from whatever the pipeline gathered."""
        if ctx.result is not None and ctx.result.records:
            rows = [
                ", ".join(
                    f"{key}: {render_value(value)}" for key, value in record.items()
                )
                for record in ctx.result.records[: self._PARTIAL_LIMIT]
            ]
            return "Partial answer (deadline exceeded): " + "; ".join(rows)
        snippets = [item.node.text for item in ctx.context[: self._PARTIAL_LIMIT]]
        if not snippets:
            snippets = [item.node.text for item in ctx.candidates[: self._PARTIAL_LIMIT]]
        if snippets:
            return "Partial answer (deadline exceeded): " + " ".join(snippets)
        return (
            "The request deadline was exceeded before an answer could be "
            "generated. Please retry with a larger budget."
        )

    def run(self, ctx: QueryContext) -> QueryContext:
        if ctx.deadline is not None and ctx.deadline.expired:
            return ctx.evolve(
                answer=self._partial_answer(ctx),
                diagnostics=mark_degraded(
                    ctx.diagnostics, "synthesis_partial_deadline"
                ),
            )
        retrieval = ctx.retrieval or RetrievalResult(source=ctx.source)
        if self.retry is not None:
            answer = self.retry.run(
                self.synthesizer.synthesize,
                ctx.question,
                retrieval,
                ctx.context,
                deadline=ctx.deadline,
            )
        else:
            answer = self.synthesizer.synthesize(ctx.question, retrieval, ctx.context)
        return ctx.evolve(answer=answer)


class StagePipeline:
    """The kernel: runs stages in order, timing and observing each one."""

    def __init__(
        self,
        stages: Iterable[Stage],
        observers: Iterable[PipelineObserver] = (),
    ) -> None:
        self.stages = list(stages)
        self._fanout = _ObserverFanout(observers)

    def run(self, ctx: QueryContext) -> QueryContext:
        for stage in self.stages:
            # Fault-injection site ("stage.<name>"): latency between stages
            # is the cleanest way to drive deadline-degradation paths —
            # sleeping here burns budget without touching any stage logic.
            fault_point(f"stage.{stage.name}")
            self._fanout.emit("on_stage_start", stage.name, ctx)
            error_before = ctx.error
            started = time.perf_counter()
            try:
                ctx = stage.run(ctx)
            except PipelineError as exc:
                # A stage may raise taxonomy errors instead of recording
                # them; normalise to the recorded form and keep going.
                ctx = ctx.evolve(error=exc)
            except Exception as exc:
                wrapped = PipelineError(f"{type(exc).__name__}: {exc}")
                self._fanout.emit("on_error", stage.name, wrapped, ctx)
                raise
            elapsed_ms = round((time.perf_counter() - started) * 1000.0, 4)
            ctx.timings[stage.name] = elapsed_ms
            if ctx.error is not None and ctx.error is not error_before:
                self._fanout.emit("on_error", stage.name, ctx.error, ctx)
            self._fanout.emit("on_stage_end", stage.name, ctx, elapsed_ms)
        return ctx
