"""Stage-execution kernel of the RAG pipeline.

The Figure-1 flow is decomposed into four composable stages —

``SymbolicRetrievalStage`` → ``FallbackRoutingStage`` → ``RerankStage``
→ ``SynthesisStage``

— each a :class:`Stage` transforming an immutable-ish :class:`QueryContext`
record.  The :class:`StagePipeline` kernel runs the sequence, times every
stage, and notifies the attached :class:`~repro.rag.observer.PipelineObserver`
hooks around each one.  Stages never share mutable state: context evolution
goes through :meth:`QueryContext.evolve`, and retriever-owned metadata is
deep-copied before it enters the diagnostics, so callers can mutate a
response's diagnostics without corrupting retriever or LLM internals.
"""

from __future__ import annotations

import copy
import logging
import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Protocol, runtime_checkable

from ..cypher.result import ResultSet
from .errors import PipelineError, classify_symbolic_failure
from .observer import PipelineObserver, _ObserverFanout
from .reranker import LLMReranker
from .retriever import Retriever
from .routing import RoutingPolicy, VectorRetrieve
from .synthesizer import ResponseSynthesizer
from .types import NodeWithScore, RetrievalResult

__all__ = [
    "QueryContext",
    "Stage",
    "SymbolicRetrievalStage",
    "FallbackRoutingStage",
    "RerankStage",
    "SynthesisStage",
    "StagePipeline",
]

# Stable logger name: pipeline events stayed on "repro.rag.pipeline" when the
# engine was split into stages, so existing log-capture consumers keep working.
logger = logging.getLogger("repro.rag.pipeline")


@dataclass(frozen=True)
class QueryContext:
    """Everything one question accumulates on its way through the stages.

    Frozen: stages return an evolved copy via :meth:`evolve` instead of
    mutating in place, so an observer always sees a consistent snapshot
    and a stage cannot leak partial writes into its successors.
    """

    question: str
    #: raw outputs of the two retrieval paths (``None`` until produced)
    symbolic: Optional[RetrievalResult] = None
    semantic: Optional[RetrievalResult] = None
    #: the retrieval chosen by routing (feeds synthesis)
    retrieval: Optional[RetrievalResult] = None
    #: candidate context before reranking / surviving context after
    candidates: list[NodeWithScore] = field(default_factory=list)
    context: list[NodeWithScore] = field(default_factory=list)
    answer: Optional[str] = None
    source: str = ""
    cypher: Optional[str] = None
    result: Optional[ResultSet] = None
    #: first taxonomy error hit on the way (stages record, never raise)
    error: Optional[PipelineError] = None
    sparse: bool = False
    fallback_used: bool = False
    diagnostics: dict[str, Any] = field(default_factory=dict)
    #: per-stage wall-clock timings (ms), filled by the kernel
    timings: dict[str, float] = field(default_factory=dict)

    def evolve(self, **changes: Any) -> "QueryContext":
        """Return a copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)


@runtime_checkable
class Stage(Protocol):
    """One pipeline step: context in, evolved context out."""

    name: str

    def run(self, ctx: QueryContext) -> QueryContext:
        """Transform ``ctx``; record expected failures on ``ctx.error``."""
        ...


class SymbolicRetrievalStage:
    """Text-to-Cypher translation + execution (the paper's symbolic path)."""

    name = "symbolic"

    def __init__(self, retriever: Retriever, sparse_row_threshold: int = 0) -> None:
        self.retriever = retriever
        self.sparse_row_threshold = sparse_row_threshold

    def run(self, ctx: QueryContext) -> QueryContext:
        symbolic = self.retriever.retrieve(ctx.question)
        if symbolic.error is not None:
            logger.debug(
                "symbolic retrieval failed for %r: %s", ctx.question, symbolic.error
            )
        error = classify_symbolic_failure(symbolic, self.sparse_row_threshold)
        sparse = symbolic.result is not None and (
            len(symbolic.result.records) <= self.sparse_row_threshold
        )
        diagnostics = {
            **ctx.diagnostics,
            # deep copy: diagnostics must be safe to mutate post-hoc without
            # reaching back into retriever/LLM-owned structures
            "generation": copy.deepcopy(dict(symbolic.metadata)),
            "symbolic_error": symbolic.error,
            "fallback_used": False,
        }
        if error is not None:
            diagnostics["error_class"] = error.to_dict()
        return ctx.evolve(
            symbolic=symbolic,
            cypher=symbolic.cypher,
            source=symbolic.source,
            error=error,
            sparse=sparse,
            diagnostics=diagnostics,
        )


class FallbackRoutingStage:
    """Applies the :class:`RoutingPolicy` to pick the generation route."""

    name = "routing"

    def __init__(self, policy: RoutingPolicy, vector_retrieve: VectorRetrieve = None) -> None:
        self.policy = policy
        self.vector_retrieve = vector_retrieve

    def run(self, ctx: QueryContext) -> QueryContext:
        decision = self.policy.route(ctx, self.vector_retrieve)
        diagnostics = {**ctx.diagnostics, **copy.deepcopy(decision.diagnostics)}
        if decision.fallback_used:
            logger.debug(
                "falling back to vector retrieval for %r (sparse=%s)",
                ctx.question,
                ctx.sparse,
            )
            diagnostics["fallback_used"] = True
        diagnostics["route"] = self.policy.name
        semantic = ctx.semantic
        if decision.fallback_used or decision.retrieval.source == "vector":
            semantic = decision.retrieval
        return ctx.evolve(
            semantic=semantic,
            retrieval=decision.retrieval,
            candidates=list(decision.candidates),
            source=decision.source,
            cypher=decision.cypher,
            result=decision.result,
            fallback_used=decision.fallback_used,
            diagnostics=diagnostics,
        )


class RerankStage:
    """LLM re-scoring of the routed candidates — exactly once per query."""

    name = "rerank"

    def __init__(self, reranker: Optional[LLMReranker]) -> None:
        self.reranker = reranker

    def run(self, ctx: QueryContext) -> QueryContext:
        if self.reranker is None:
            return ctx.evolve(context=list(ctx.candidates))
        context = self.reranker.rerank(ctx.question, list(ctx.candidates))
        return ctx.evolve(context=context)


class SynthesisStage:
    """Answer generation from the routed retrieval + surviving context."""

    name = "synthesis"

    def __init__(self, synthesizer: ResponseSynthesizer) -> None:
        self.synthesizer = synthesizer

    def run(self, ctx: QueryContext) -> QueryContext:
        retrieval = ctx.retrieval or RetrievalResult(source=ctx.source)
        answer = self.synthesizer.synthesize(ctx.question, retrieval, ctx.context)
        return ctx.evolve(answer=answer)


class StagePipeline:
    """The kernel: runs stages in order, timing and observing each one."""

    def __init__(
        self,
        stages: Iterable[Stage],
        observers: Iterable[PipelineObserver] = (),
    ) -> None:
        self.stages = list(stages)
        self._fanout = _ObserverFanout(observers)

    def run(self, ctx: QueryContext) -> QueryContext:
        for stage in self.stages:
            self._fanout.emit("on_stage_start", stage.name, ctx)
            error_before = ctx.error
            started = time.perf_counter()
            try:
                ctx = stage.run(ctx)
            except PipelineError as exc:
                # A stage may raise taxonomy errors instead of recording
                # them; normalise to the recorded form and keep going.
                ctx = ctx.evolve(error=exc)
            except Exception as exc:
                wrapped = PipelineError(f"{type(exc).__name__}: {exc}")
                self._fanout.emit("on_error", stage.name, wrapped, ctx)
                raise
            elapsed_ms = round((time.perf_counter() - started) * 1000.0, 4)
            ctx.timings[stage.name] = elapsed_ms
            if ctx.error is not None and ctx.error is not error_before:
                self._fanout.emit("on_error", stage.name, ctx.error, ctx)
            self._fanout.emit("on_stage_end", stage.name, ctx, elapsed_ms)
        return ctx
