"""LLMReranker — re-ranks retrieval candidates with a shallow LLM scorer.

Given candidates from the symbolic and semantic retrievers, each passage is
scored against the query through the backbone LLM (``[TASK: rerank]``
prompts) and the best ``top_n`` survive into generation (paper §2:
"improve context selection before generation").
"""

from __future__ import annotations

from typing import Callable

from ..llm.base import LLM
from .types import NodeWithScore

__all__ = ["LLMReranker", "default_rerank_prompt"]


def default_rerank_prompt(query: str, passage: str) -> str:
    """Prompt asking the backbone to score passage relevance 0-10."""
    return (
        "[TASK: rerank]\n"
        "Score the relevance of the passage to the query from 0 to 10.\n"
        f"[QUERY]\n{query}\n"
        f"[PASSAGE]\n{passage}\n"
    )


class LLMReranker:
    """Scores and filters candidate context nodes."""

    def __init__(
        self,
        llm: LLM,
        top_n: int = 6,
        max_candidates: int = 24,
        prompt_builder: Callable[[str, str], str] | None = None,
    ) -> None:
        self.llm = llm
        self.top_n = top_n
        self.max_candidates = max_candidates
        self.prompt_builder = prompt_builder or default_rerank_prompt

    def rerank(self, query: str, candidates: list[NodeWithScore]) -> list[NodeWithScore]:
        """Return the ``top_n`` candidates by LLM relevance score.

        Stable for ties (keeps original retrieval order), deduplicates
        identical node ids, and never scores more than ``max_candidates``.
        """
        seen: set[str] = set()
        unique: list[NodeWithScore] = []
        for candidate in candidates:
            if candidate.node.node_id in seen:
                continue
            seen.add(candidate.node.node_id)
            unique.append(candidate)
        unique = unique[: self.max_candidates]

        rescored: list[NodeWithScore] = []
        for candidate in unique:
            completion = self.llm.complete(self.prompt_builder(query, candidate.node.text))
            score = completion.metadata.get("score")
            if score is None:
                try:
                    score = float(completion.text.strip().split()[0])
                except (ValueError, IndexError):
                    score = 0.0
            rescored.append(NodeWithScore(node=candidate.node, score=float(score)))
        rescored.sort(key=lambda item: -item.score)
        return rescored[: self.top_n]
