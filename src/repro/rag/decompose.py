"""Sub-question decomposition — the paper's future-work direction, built.

The poster's Finding 2 identifies multi-hop structural complexity as
ChatIYP's failure mode and "opens the door for further future research".
This module implements the obvious next step: decompose a compound
question into simple sub-questions the reliable single-relation intents
can answer, run each through the normal pipeline, and combine the
structured results programmatically.

``QuestionDecomposer`` recognises compound shapes (peer-of + population,
tag + organization, IXPs-in-country + membership, membership + dependency)
and emits a :class:`DecompositionPlan`; ``DecomposingQueryEngine`` wraps a
:class:`~repro.rag.pipeline.RetrieverQueryEngine` and falls back to it
untouched whenever no plan applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..nlp.entities import EntityExtractor, Gazetteer
from .pipeline import PipelineResponse, RetrieverQueryEngine

__all__ = ["DecompositionPlan", "QuestionDecomposer", "DecomposingQueryEngine"]


@dataclass
class DecompositionPlan:
    """A two-stage sub-question plan.

    ``first`` is asked once; the values in ``item_column`` of its result
    feed ``per_item_template`` (one sub-question per item, capped at
    ``max_items``); ``combine`` says how per-item results merge:

    * ``"sum"`` — sum each per-item scalar, report the rounded total;
    * ``"collect_distinct"`` — union the per-item first columns;
    * ``"count_containing"`` — count items whose result contains
      ``match_value`` in its first column.
    """

    name: str
    first: str
    item_column: int
    per_item_template: str
    combine: str
    match_value: Any = None
    max_items: int = 40
    unit: str = ""
    # Self-verification: substrings the generated Cypher of each stage must
    # contain (the relationship the sub-question is about). A mismatch
    # triggers a re-ask with a rephrased (coverage-neutral) question.
    first_expect: tuple[str, ...] = ()
    per_item_expect: tuple[str, ...] = ()


class QuestionDecomposer:
    """Rule-based decomposition head for compound IYP questions."""

    def __init__(self, gazetteer: Optional[Gazetteer] = None) -> None:
        self.extractor = EntityExtractor(gazetteer)

    def decompose(self, question: str) -> Optional[DecompositionPlan]:
        """Return a plan for ``question``, or None when it looks simple."""
        lowered = question.lower()
        entities = self.extractor.extract(question)

        def has(*words: str) -> bool:
            return all(word in lowered for word in words)

        country = entities.countries[0] if entities.countries else None
        country_name = self._country_name(country) if country else None
        asn = entities.asns[0] if entities.asns else None

        if has("peer") and ("population" in lowered or "share" in lowered) and asn and country:
            return DecompositionPlan(
                name="peers_population",
                first=f"Which ASes peer with AS{asn}?",
                item_column=0,
                per_item_template=(
                    f"What share of {country_name}'s population does AS{{item}} serve?"
                ),
                combine="sum",
                unit="percent",
                first_expect=("PEERS_WITH", str(asn)),
                per_item_expect=("POPULATION", "{item}"),
            )
        if ("organization" in lowered or "companies" in lowered or "organisations" in lowered) \
                and ("tag" in lowered or "categorized" in lowered) and entities.tags:
            tag = entities.tags[0]
            return DecompositionPlan(
                name="orgs_of_tagged_ases",
                first=f"Which ASes are categorized as {tag}?",
                item_column=0,
                per_item_template="What organization manages AS{item}?",
                combine="collect_distinct",
                unit="organizations",
                first_expect=("CATEGORIZED", tag),
                per_item_expect=("MANAGED_BY", "{item}"),
            )
        if has("member") and ("ixp" in lowered or "exchange" in lowered) and country \
                and not entities.ixps:
            return DecompositionPlan(
                name="members_of_ixps_in_country",
                first=f"Which IXPs operate in {country_name}?",
                item_column=0,
                per_item_template="Which ASes are members of {item}?",
                combine="collect_distinct",
                unit="ASes",
                first_expect=("COUNTRY", country),
                per_item_expect=("MEMBER_OF", "{item}"),
            )
        if has("member") and ("depend" in lowered or "rely" in lowered) \
                and entities.ixps and asn:
            ixp = entities.ixps[0]
            return DecompositionPlan(
                name="ixp_members_depending_on_as",
                first=f"Which ASes are members of {ixp}?",
                item_column=0,
                per_item_template="Which ASes does AS{item} depend on?",
                combine="count_containing",
                match_value=asn,
                unit="members",
                first_expect=("MEMBER_OF", ixp),
                per_item_expect=("DEPENDS_ON", "{item}"),
            )
        return None

    def _country_name(self, code: str) -> str:
        for name, mapped in self.extractor.gazetteer.countries.items():
            if mapped == code and len(name) > 3:
                return name.title()
        return code


class DecomposingQueryEngine:
    """Wraps a pipeline with sub-question decomposition for hard questions."""

    def __init__(
        self,
        pipeline: RetrieverQueryEngine,
        decomposer: QuestionDecomposer,
    ) -> None:
        self.pipeline = pipeline
        self.decomposer = decomposer

    def query(self, question: str, deadline: Any = None) -> PipelineResponse:
        plan = self.decomposer.decompose(question)
        if plan is None:
            return self.pipeline.query(question, deadline=deadline)
        return self._execute_plan(question, plan, deadline=deadline)

    # ------------------------------------------------------------------

    #: coverage-neutral rephrasings used to re-roll a failed translation
    #: (stopword-only additions leave the semantic-parser coverage intact)
    _RETRY_DECORATIONS = ("{q}", "And {q}", "{q} please", "And {q} please")

    def _ask_checked(
        self, question: str, expect: tuple[str, ...], deadline: Any = None
    ) -> PipelineResponse:
        """Ask through the pipeline, re-asking when validation fails.

        Validation: the generated Cypher must mention every expected
        fragment — the relationship type the sub-question is about *and*
        the entity literal (catching dropped or swapped filters) — and
        execution must have produced a result set. Each retry rephrases
        the question with stopword-only decoration, deterministically
        re-rolling the backbone's error model.
        """
        response = None
        fragment_valid: Optional[PipelineResponse] = None
        for decoration in self._RETRY_DECORATIONS:
            response = self.pipeline.query(
                decoration.format(q=question), deadline=deadline
            )
            if not expect:
                return response
            cypher = response.cypher or ""
            if all(frag in cypher for frag in expect):
                if response.result is not None:
                    return response
                # Right query, empty answer (the fallback kicked in): a
                # legitimate "no rows" outcome — remember it in case no
                # attempt produces rows.
                fragment_valid = fragment_valid or response
        if fragment_valid is not None:
            return fragment_valid
        # Every attempt produced a wrong query; suppress its result so a
        # mistranslation cannot poison the combination step.
        assert response is not None
        response.result = None
        return response

    def _execute_plan(
        self, question: str, plan: DecompositionPlan, deadline: Any = None
    ) -> PipelineResponse:
        first_response = self._ask_checked(plan.first, plan.first_expect, deadline)
        sub_cyphers = [f"-- {plan.first}\n{first_response.cypher or '<fallback>'}"]
        if first_response.result is None or not first_response.result.records:
            # Can't enumerate items; degrade gracefully to the plain pipeline.
            response = self.pipeline.query(question, deadline=deadline)
            response.diagnostics["decomposition"] = {
                "plan": plan.name, "status": "first_step_empty",
            }
            return response

        items = first_response.result.values(plan.item_column)[: plan.max_items]
        truncated = len(first_response.result.records) > plan.max_items

        per_item: list[tuple[Any, PipelineResponse]] = []
        for item in items:
            sub_question = plan.per_item_template.format(item=item)
            expect = tuple(frag.format(item=item) for frag in plan.per_item_expect)
            sub_response = self._ask_checked(sub_question, expect, deadline)
            per_item.append((item, sub_response))
            sub_cyphers.append(
                f"-- {sub_question}\n{sub_response.cypher or '<fallback>'}"
            )

        answer, value = self._combine(plan, per_item, truncated)
        diagnostics: dict[str, Any] = {
            "decomposition": {
                "plan": plan.name,
                "sub_questions": 1 + len(per_item),
                "combined_value": value,
                "truncated": truncated,
            },
            "fallback_used": False,
        }
        return PipelineResponse(
            answer=answer,
            cypher="\n".join(sub_cyphers),
            retrieval_source="decomposed",
            context=first_response.context,
            result=None,
            diagnostics=diagnostics,
        )

    def _combine(
        self,
        plan: DecompositionPlan,
        per_item: list[tuple[Any, PipelineResponse]],
        truncated: bool,
    ) -> tuple[str, Any]:
        note = " (largest contributors only)" if truncated else ""
        if plan.combine == "sum":
            total = 0.0
            for _, response in per_item:
                value = self._scalar(response)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    total += float(value)
            total = round(total, 1)
            return (
                f"The combined {plan.unit} is {total}{note}.",
                total,
            )
        if plan.combine == "collect_distinct":
            collected: list[Any] = []
            for _, response in per_item:
                if response.result is not None:
                    for value in response.result.values(0):
                        if value is not None and value not in collected:
                            collected.append(value)
            collected.sort(key=str)
            shown = ", ".join(str(v) for v in collected[:12])
            more = len(collected) - min(len(collected), 12)
            suffix = f" and {more} more" if more > 0 else ""
            return (
                f"The {plan.unit} are: {shown}{suffix}.",
                collected,
            )
        if plan.combine == "count_containing":
            count = 0
            for _, response in per_item:
                if response.result is None:
                    continue
                if any(value == plan.match_value for value in response.result.values(0)):
                    count += 1
            return (
                f"The number of matching {plan.unit} is {count}{note}.",
                count,
            )
        raise ValueError(f"unknown combine mode {plan.combine!r}")

    @staticmethod
    def _scalar(response: PipelineResponse) -> Any:
        if response.result is None or not response.result.records:
            return None
        return response.result.records[0][0]
