"""Response synthesizer — generation stage (paper §2, stage 3).

The question plus retrieved context go to the backbone LLM, which produces
the natural-language answer.  Structured rows from the symbolic path are
embedded as a JSON payload; semantic-fallback snippets go in as plain
context lines.
"""

from __future__ import annotations

import json
from typing import Callable

from ..cypher.result import ResultSet
from ..llm.base import LLM
from .types import NodeWithScore, RetrievalResult

__all__ = ["ResponseSynthesizer", "default_answer_prompt"]


def default_answer_prompt(question: str, result_json: str, context: str) -> str:
    """Prompt carrying either a structured result payload or context lines."""
    parts = [
        "[TASK: answer]",
        "Answer the question from the retrieved IYP graph information.",
        f"[QUESTION]\n{question}",
    ]
    if result_json:
        parts.append(f"[RESULT]\n{result_json}")
    if context:
        parts.append(f"[CONTEXT]\n{context}")
    return "\n".join(parts) + "\n"


class ResponseSynthesizer:
    """Builds the generation prompt and returns the model's answer text."""

    def __init__(
        self,
        llm: LLM,
        prompt_builder: Callable[[str, str, str], str] | None = None,
        max_rows: int = 30,
    ) -> None:
        self.llm = llm
        self.prompt_builder = prompt_builder or default_answer_prompt
        self.max_rows = max_rows

    def synthesize(
        self,
        question: str,
        retrieval: RetrievalResult,
        context_nodes: list[NodeWithScore] | None = None,
    ) -> str:
        """Generate the answer for ``question`` given retrieval output."""
        result_json = ""
        if retrieval.result is not None:
            result_json = self._serialize_result(retrieval.result)
        nodes = context_nodes if context_nodes is not None else retrieval.nodes
        context = "\n".join(f"- {item.node.text}" for item in nodes)
        prompt = self.prompt_builder(question, result_json, context)
        return self.llm.complete(prompt).text

    def _serialize_result(self, result: ResultSet) -> str:
        from ..cypher.result import render_value

        rows = []
        for record in result.records[: self.max_rows]:
            row = []
            for value in record.values():
                if value is None or isinstance(value, (bool, int, float, str)):
                    row.append(value)
                elif isinstance(value, list) and all(
                    item is None or isinstance(item, (bool, int, float, str))
                    for item in value
                ):
                    row.append(value)
                else:
                    row.append(render_value(value))
            rows.append(row)
        return json.dumps({"keys": result.keys, "rows": rows})
