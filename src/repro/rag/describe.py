"""Graph-node description corpus for the vector retriever.

``VectorContextRetriever`` needs "dense embeddings for node descriptions"
(paper §2).  This module renders each interesting graph node into a short
textual description including one-hop context, mirroring how graph-RAG
frameworks flatten node neighbourhoods into embeddable passages.
"""

from __future__ import annotations

from collections import Counter

from ..graph.model import Node
from ..graph.store import GraphStore

__all__ = ["describe_node", "build_description_corpus", "DESCRIBED_LABELS"]

#: labels worth indexing (skip pure leaf-annotation nodes like Name/URL)
DESCRIBED_LABELS = (
    "AS", "IXP", "Country", "Organization", "Prefix", "DomainName",
    "Facility", "Tag", "Ranking",
)

_REL_PHRASES = {
    ("out", "COUNTRY"): "registered in {}",
    ("out", "ORIGINATE"): "originates {}",
    ("out", "MEMBER_OF"): "member of {}",
    ("out", "MANAGED_BY"): "managed by {}",
    ("out", "CATEGORIZED"): "categorized as {}",
    ("out", "DEPENDS_ON"): "depends on {}",
    ("out", "PEERS_WITH"): "peers with {}",
    ("out", "POPULATION"): "serves population in {}",
    ("out", "LOCATED_IN"): "located in {}",
    ("out", "RESOLVES_TO"): "resolves to {}",
    ("out", "PART_OF"): "part of {}",
    ("in", "ORIGINATE"): "originated by {}",
    ("in", "MEMBER_OF"): "has member {}",
    ("in", "MANAGED_BY"): "manages {}",
    ("in", "PEERS_WITH"): "peers with {}",
    ("in", "DEPENDS_ON"): "depended on by {}",
    ("in", "LOCATED_IN"): "hosts {}",
    ("in", "PART_OF"): "contains {}",
    ("in", "COUNTRY"): "home of {}",
}

_MAX_NEIGHBOURS_PER_PHRASE = 4


def _entity_name(node: Node) -> str:
    """A human-readable handle for a node."""
    if "AS" in node.labels and "asn" in node.properties:
        name = node.properties.get("name", "")
        return f"AS{node.properties['asn']}" + (f" ({name})" if name else "")
    for key in ("name", "prefix", "ip", "label", "country_code", "url", "id"):
        if key in node.properties:
            return str(node.properties[key])
    return f"node {node.node_id}"


def describe_node(store: GraphStore, node: Node) -> str:
    """One-sentence description of ``node`` with one-hop context."""
    label = sorted(node.labels)[0]
    header = f"{_entity_name(node)} is a {label} node"
    if "Country" in node.labels and "name" in node.properties:
        header = (
            f"{node.properties['name']} ({node.properties.get('country_code', '')}) "
            "is a Country node"
        )
    phrases: list[str] = []
    grouped: dict[tuple[str, str], list[str]] = {}
    counts: Counter[tuple[str, str]] = Counter()
    for rel in store.relationships_of(node.node_id, "both"):
        direction = "out" if rel.start_id == node.node_id else "in"
        key = (direction, rel.rel_type)
        if key not in _REL_PHRASES:
            continue
        counts[key] += 1
        if counts[key] > _MAX_NEIGHBOURS_PER_PHRASE:
            continue
        other = store.node(rel.other_end(node.node_id))
        grouped.setdefault(key, []).append(_entity_name(other))
    for key, names in grouped.items():
        extra = counts[key] - len(names)
        rendered = ", ".join(names) + (f" and {extra} more" if extra > 0 else "")
        phrases.append(_REL_PHRASES[key].format(rendered))
    if phrases:
        return header + "; " + "; ".join(phrases)
    return header


def build_description_corpus(
    store: GraphStore,
    labels: tuple[str, ...] = DESCRIBED_LABELS,
) -> list[tuple[str, str, dict]]:
    """(id, description, metadata) triples for every node of ``labels``."""
    corpus: list[tuple[str, str, dict]] = []
    for label in labels:
        for node in store.nodes_by_label(label):
            corpus.append(
                (
                    f"graph-node-{node.node_id}",
                    describe_node(store, node),
                    {"graph_node_id": node.node_id, "label": label},
                )
            )
    return corpus
