"""Typed error taxonomy of the staged pipeline.

Replaces the stringly-typed ``RetrievalResult.error`` inspection that used
to be scattered through the orchestration code.  Each failure a query can
hit on its way through the stages maps to exactly one class:

* :class:`SymbolicTranslationError` — the LLM produced no Cypher at all;
* :class:`ExecutionError` — generated Cypher failed to parse or run;
* :class:`EmptyResult` — the query ran but returned no more rows than the
  configured sparsity threshold, so the router treats it as a miss;
* :class:`DeadlineExceeded` — the per-request time budget ran out before
  the stage could run (serving hardening; the stage degrades instead);
* :class:`CircuitOpen` — the symbolic path's circuit breaker refused the
  attempt, so the router falls back to vector retrieval.

The classes are exceptions so callers *may* raise them, but the pipeline
itself never throws for expected failures: stages record the instance on
``QueryContext.error`` and observers see it through ``on_error``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .types import RetrievalResult

__all__ = [
    "PipelineError",
    "SymbolicTranslationError",
    "ExecutionError",
    "ResourceExhausted",
    "EmptyResult",
    "DeadlineExceeded",
    "CircuitOpen",
    "classify_symbolic_failure",
]


class PipelineError(Exception):
    """Base of the pipeline error taxonomy."""

    #: short machine-readable class tag (stable across renames)
    kind = "pipeline_error"

    def __init__(self, message: str = "", cypher: Optional[str] = None) -> None:
        super().__init__(message)
        self.cypher = cypher

    def to_dict(self) -> dict:
        """JSON-friendly rendering for diagnostics payloads."""
        return {"kind": self.kind, "type": type(self).__name__, "message": str(self)}


class SymbolicTranslationError(PipelineError):
    """The backbone could not translate the question into Cypher."""

    kind = "translation"


class ExecutionError(PipelineError):
    """The generated Cypher failed at parse or execution time."""

    kind = "execution"


class ResourceExhausted(ExecutionError):
    """The query blew through the engine's intermediate-row budget.

    A subclass of :class:`ExecutionError` (it still counts as a breaker
    failure and routes to the vector fallback) with its own ``kind`` so
    dashboards can tell runaway scans from plain bad Cypher.
    """

    kind = "resource_exhausted"


class EmptyResult(PipelineError):
    """The query executed but produced no usable rows (sparse result)."""

    kind = "empty_result"


class DeadlineExceeded(PipelineError):
    """The request's time budget ran out before the stage could run.

    Raised nowhere: stages that find the deadline blown record this and
    degrade to the cheapest viable route (vector-only retrieval, skipped
    rerank, or a partial answer) instead of hanging.
    """

    kind = "deadline"


class CircuitOpen(PipelineError):
    """The symbolic path's circuit breaker is open; the attempt was skipped.

    Recorded so the router falls back to vector retrieval while the
    breaker cools down; never counts as a breaker failure itself.
    """

    kind = "circuit_open"


def classify_symbolic_failure(
    retrieval: "RetrievalResult", sparse_row_threshold: int = 0
) -> Optional[PipelineError]:
    """Map a symbolic :class:`RetrievalResult` onto the taxonomy.

    Returns ``None`` for a clean, non-sparse retrieval.  Sparsity follows
    the engine's historical rule: a result set with at most
    ``sparse_row_threshold`` rows counts as :class:`EmptyResult`.
    """
    if retrieval.error == "translation_failed":
        return SymbolicTranslationError("the question could not be translated")
    if retrieval.error is not None:
        # The retriever renders engine errors as "<TypeName>: <message>";
        # two runtime types get their own taxonomy slots.
        if retrieval.error.startswith("CypherDeadlineExceeded"):
            return DeadlineExceeded(retrieval.error)
        if retrieval.error.startswith("ResourceExhausted"):
            return ResourceExhausted(retrieval.error, cypher=retrieval.cypher)
        return ExecutionError(retrieval.error, cypher=retrieval.cypher)
    if retrieval.result is not None and (
        len(retrieval.result.records) <= sparse_row_threshold
    ):
        return EmptyResult(
            f"query returned {len(retrieval.result.records)} row(s) "
            f"(threshold {sparse_row_threshold})",
            cypher=retrieval.cypher,
        )
    return None
