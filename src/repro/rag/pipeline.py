"""RetrieverQueryEngine — orchestrates the full RAG pipeline (Figure 1).

Flow, exactly as the paper describes:

1. the **TextToCypherRetriever** translates and executes a graph query;
2. when symbolic translation fails, or returns sparse results, the
   **VectorContextRetriever** fetches semantically nearby node
   descriptions instead;
3. the **LLMReranker** re-scores the retrieval candidates;
4. the **ResponseSynthesizer** generates the answer, returning the refined
   Cypher query alongside for transparency.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Optional

from ..cypher.result import ResultSet
from .reranker import LLMReranker
from .synthesizer import ResponseSynthesizer
from .text2cypher_retriever import TextToCypherRetriever
from .types import NodeWithScore
from .vector_retriever import VectorContextRetriever

__all__ = ["PipelineResponse", "RetrieverQueryEngine"]

logger = logging.getLogger(__name__)


@dataclass
class PipelineResponse:
    """The pipeline's output: answer text plus full provenance."""

    answer: str
    cypher: Optional[str]
    retrieval_source: str
    context: list[NodeWithScore] = field(default_factory=list)
    result: Optional[ResultSet] = None
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def used_fallback(self) -> bool:
        """True when the semantic fallback produced the context."""
        return self.retrieval_source == "vector"


class RetrieverQueryEngine:
    """Composable query engine over the three retrieval stages."""

    def __init__(
        self,
        text2cypher: TextToCypherRetriever,
        vector: Optional[VectorContextRetriever] = None,
        reranker: Optional[LLMReranker] = None,
        synthesizer: Optional[ResponseSynthesizer] = None,
        vector_fallback: bool = True,
        sparse_row_threshold: int = 0,
    ) -> None:
        if synthesizer is None:
            raise ValueError("a ResponseSynthesizer is required")
        self.text2cypher = text2cypher
        self.vector = vector
        self.reranker = reranker
        self.synthesizer = synthesizer
        self.vector_fallback = vector_fallback
        self.sparse_row_threshold = sparse_row_threshold

    def query(self, question: str) -> PipelineResponse:
        """Run the full pipeline for one question."""
        symbolic = self.text2cypher.retrieve(question)
        diagnostics: dict[str, Any] = {
            "generation": dict(symbolic.metadata),
            "symbolic_error": symbolic.error,
            "fallback_used": False,
        }

        if symbolic.error is not None:
            logger.debug("symbolic retrieval failed for %r: %s", question, symbolic.error)
        sparse = symbolic.result is not None and (
            len(symbolic.result.records) <= self.sparse_row_threshold
        )
        if symbolic.succeeded and not sparse:
            context = symbolic.nodes
            if self.reranker is not None and context:
                context = self.reranker.rerank(question, context)
            answer = self.synthesizer.synthesize(question, symbolic, context)
            return PipelineResponse(
                answer=answer,
                cypher=symbolic.cypher,
                retrieval_source=symbolic.source,
                context=context,
                result=symbolic.result,
                diagnostics=diagnostics,
            )

        diagnostics["sparse"] = sparse
        if self.vector is not None and self.vector_fallback:
            logger.debug(
                "falling back to vector retrieval for %r (sparse=%s)", question, sparse
            )
            diagnostics["fallback_used"] = True
            semantic = self.vector.retrieve(question)
            context = semantic.nodes
            if self.reranker is not None and context:
                context = self.reranker.rerank(question, context)
            answer = self.synthesizer.synthesize(question, semantic, context)
            return PipelineResponse(
                answer=answer,
                cypher=symbolic.cypher,  # surfaced even when it failed, for transparency
                retrieval_source=semantic.source,
                context=context,
                result=None,
                diagnostics=diagnostics,
            )

        # No fallback configured: answer from whatever the symbolic path has.
        answer = self.synthesizer.synthesize(question, symbolic, symbolic.nodes)
        return PipelineResponse(
            answer=answer,
            cypher=symbolic.cypher,
            retrieval_source=symbolic.source,
            context=symbolic.nodes,
            result=symbolic.result,
            diagnostics=diagnostics,
        )
