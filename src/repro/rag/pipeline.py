"""RetrieverQueryEngine — orchestrates the full RAG pipeline (Figure 1).

Flow, exactly as the paper describes:

1. the **TextToCypherRetriever** translates and executes a graph query;
2. when symbolic translation fails, or returns sparse results, the
   **VectorContextRetriever** fetches semantically nearby node
   descriptions instead;
3. the **LLMReranker** re-scores the retrieval candidates;
4. the **ResponseSynthesizer** generates the answer, returning the refined
   Cypher query alongside for transparency.

Since the staged refactor the engine is a thin composition root: it builds
the four :mod:`~repro.rag.stages` stages around a pluggable
:class:`~repro.rag.routing.RoutingPolicy` and hands them to the
:class:`~repro.rag.stages.StagePipeline` kernel, which times each stage and
drives the attached :class:`~repro.rag.observer.PipelineObserver` hooks.
The public ``query()`` API and :class:`PipelineResponse` shape are
unchanged; per-stage timings appear under ``diagnostics["stage_timings"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..cypher.result import ResultSet
from ..serving.breaker import CircuitBreaker
from ..serving.deadline import Deadline
from ..serving.retry import RetryPolicy
from .observer import PipelineObserver
from .reranker import LLMReranker
from .routing import RoutingPolicy, SymbolicFirstPolicy, VectorRetrieve
from .stages import (
    FallbackRoutingStage,
    QueryContext,
    RerankStage,
    Stage,
    StagePipeline,
    SymbolicRetrievalStage,
    SynthesisStage,
)
from .synthesizer import ResponseSynthesizer
from .text2cypher_retriever import TextToCypherRetriever
from .types import NodeWithScore
from .vector_retriever import VectorContextRetriever

__all__ = ["PipelineResponse", "RetrieverQueryEngine"]


@dataclass
class PipelineResponse:
    """The pipeline's output: answer text plus full provenance."""

    answer: str
    cypher: Optional[str]
    retrieval_source: str
    context: list[NodeWithScore] = field(default_factory=list)
    result: Optional[ResultSet] = None
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def used_fallback(self) -> bool:
        """True when the semantic fallback produced the context."""
        return self.retrieval_source == "vector"


class RetrieverQueryEngine:
    """Composable query engine over the staged retrieval pipeline."""

    def __init__(
        self,
        text2cypher: Optional[TextToCypherRetriever],
        vector: Optional[VectorContextRetriever] = None,
        reranker: Optional[LLMReranker] = None,
        synthesizer: Optional[ResponseSynthesizer] = None,
        vector_fallback: bool = True,
        sparse_row_threshold: int = 0,
        routing_policy: Optional[RoutingPolicy] = None,
        observers: Iterable[PipelineObserver] = (),
        breaker: Optional[CircuitBreaker] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if synthesizer is None:
            raise ValueError("a ResponseSynthesizer is required")
        self.routing_policy = routing_policy or SymbolicFirstPolicy()
        if text2cypher is None and self.routing_policy.uses_symbolic:
            raise ValueError(
                f"routing policy {self.routing_policy.name!r} requires a "
                "TextToCypherRetriever"
            )
        self.text2cypher = text2cypher
        self.vector = vector
        self.reranker = reranker
        self.synthesizer = synthesizer
        self.vector_fallback = vector_fallback
        self.sparse_row_threshold = sparse_row_threshold
        self.observers = list(observers)
        # Serving hardening (all optional): a circuit breaker guarding the
        # symbolic path and a retry policy for the LLM-facing stages.
        self.breaker = breaker
        self.retry_policy = retry_policy

    # ------------------------------------------------------------------

    def _vector_retrieve(self) -> VectorRetrieve:
        """The vector hook handed to routing (None when disabled)."""
        if self.vector is None:
            return None
        if not self.vector_fallback and self.routing_policy.uses_symbolic:
            return None
        return self.vector.retrieve

    def build_stages(self) -> list[Stage]:
        """The stage sequence for the current configuration.

        Rebuilt per query so swapping ``reranker``/``vector``/policy on a
        live engine takes effect immediately; stage construction is a few
        attribute assignments, far below retrieval cost.
        """
        stages: list[Stage] = []
        if self.text2cypher is not None and self.routing_policy.uses_symbolic:
            stages.append(
                SymbolicRetrievalStage(
                    self.text2cypher, self.sparse_row_threshold, breaker=self.breaker
                )
            )
        stages.append(FallbackRoutingStage(self.routing_policy, self._vector_retrieve()))
        stages.append(RerankStage(self.reranker, retry=self.retry_policy))
        stages.append(SynthesisStage(self.synthesizer, retry=self.retry_policy))
        return stages

    def query(
        self, question: str, deadline: Optional[Deadline] = None
    ) -> PipelineResponse:
        """Run the full staged pipeline for one question.

        ``deadline`` (optional) is the request's remaining time budget; a
        blown budget degrades stages gracefully instead of hanging, with
        every degradation recorded under ``diagnostics["degraded"]``.
        """
        kernel = StagePipeline(self.build_stages(), self.observers)
        ctx = kernel.run(QueryContext(question=question, deadline=deadline))
        diagnostics = dict(ctx.diagnostics)
        diagnostics["stage_timings"] = dict(ctx.timings)
        return PipelineResponse(
            answer=ctx.answer if ctx.answer is not None else "",
            cypher=ctx.cypher,
            retrieval_source=ctx.source,
            context=list(ctx.context),
            result=ctx.result,
            diagnostics=diagnostics,
        )
