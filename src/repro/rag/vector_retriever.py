"""VectorContextRetriever — the semantic retrieval path (paper §2).

When structured queries fail or return sparse results, dense embeddings of
node descriptions fetch textual context of nearby graph nodes via vector
similarity.  Useful for vague questions and the robustness fallback.
"""

from __future__ import annotations

from ..embed.vector_store import VectorStore
from ..graph.store import GraphStore
from ..nlp.tokenize import STOPWORDS, word_tokenize
from .describe import DESCRIBED_LABELS, build_description_corpus
from .retriever import Retriever
from .types import NodeWithScore, RetrievalResult, TextNode

__all__ = ["VectorContextRetriever"]


class VectorContextRetriever(Retriever):
    """Hybrid retrieval over graph-node descriptions.

    Dense cosine similarity provides recall; a lexical boost on distinctive
    query tokens (entity handles like ``AS2497`` or ``203.0.113.0/24``)
    provides the precision dense hashing alone lacks — the usual
    dense + sparse hybrid of production RAG stacks.

    Entry texts are tokenized **once, at index time**: the lexical boost
    consults a per-entry frozen token set instead of re-running
    ``word_tokenize`` on every hit of every query (profiling under
    concurrent load showed that recomputation as the retriever's hottest
    line).  Entries indexed after construction are tokenized lazily on
    first hit and memoised.
    """

    #: fetch this many dense candidates per requested result before boosting
    _OVERSAMPLE = 4
    _LEXICAL_WEIGHT = 0.6

    def __init__(
        self,
        store: GraphStore,
        vector_store: VectorStore | None = None,
        top_k: int = 8,
        labels: tuple[str, ...] = DESCRIBED_LABELS,
    ) -> None:
        self.graph_store = store
        self.top_k = top_k
        self.vector_store = vector_store or VectorStore()
        if len(self.vector_store) == 0:
            self.vector_store.add_batch(build_description_corpus(store, labels))
        # Token sets are derived purely from entry text, so precomputing
        # them cannot change scores — tests assert equality with the
        # recompute-per-hit path.  dict writes are atomic under the GIL;
        # worst case two threads tokenize the same new entry once each.
        self._entry_tokens: dict[str, frozenset[str]] = {
            entry.entry_id: frozenset(word_tokenize(entry.text))
            for entry in self.vector_store.entries()
        }

    @property
    def name(self) -> str:
        return "vector"

    def _tokens_for(self, entry_id: str, text: str) -> frozenset[str]:
        """The entry's cached token set (tokenizing + memoising on miss)."""
        tokens = self._entry_tokens.get(entry_id)
        if tokens is None:
            tokens = frozenset(word_tokenize(text))
            self._entry_tokens[entry_id] = tokens
        return tokens

    def retrieve(self, query: str) -> RetrievalResult:
        hits = self.vector_store.search(
            query, top_k=self.top_k * self._OVERSAMPLE, min_score=0.02
        )
        distinctive = {
            token
            for token in word_tokenize(query)
            if token not in STOPWORDS and (len(token) > 3 or any(c.isdigit() for c in token))
        }
        scored: list[NodeWithScore] = []
        for hit in hits:
            score = hit.score
            if distinctive:
                text_tokens = self._tokens_for(hit.entry_id, hit.text)
                overlap = len(distinctive & text_tokens) / len(distinctive)
                score += self._LEXICAL_WEIGHT * overlap
            scored.append(
                NodeWithScore(
                    node=TextNode(node_id=hit.entry_id, text=hit.text, metadata=hit.metadata),
                    score=round(score, 6),
                )
            )
        scored.sort(key=lambda item: -item.score)
        return RetrievalResult(nodes=scored[: self.top_k], source=self.name)
