"""Pluggable routing policies for the staged pipeline.

The :class:`FallbackRoutingStage` delegates the "which retrieval feeds
generation?" decision to a :class:`RoutingPolicy`.  Three policies ship:

* :class:`SymbolicFirstPolicy` — the paper's Figure-1 behaviour: use the
  symbolic result when it succeeded and is not sparse, otherwise fall back
  to vector retrieval when one is available;
* :class:`VectorOnlyPolicy` — skip symbolic translation entirely (the
  ``vector_only`` baseline expressed as a route);
* :class:`HybridMergePolicy` — always run both retrievers and merge their
  candidates (symbolic rows first, deduplicated by node id), letting the
  reranker arbitrate between structured and semantic evidence.

Policies are deterministic: same question, same graph, same decision.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from .types import NodeWithScore, RetrievalResult

if TYPE_CHECKING:  # pragma: no cover
    from ..cypher.result import ResultSet
    from .stages import QueryContext

__all__ = [
    "RouteDecision",
    "RoutingPolicy",
    "SymbolicFirstPolicy",
    "VectorOnlyPolicy",
    "HybridMergePolicy",
    "make_routing_policy",
]

#: signature of the vector-retrieval hook handed to policies (``None`` when
#: no vector retriever is configured or the fallback is disabled)
VectorRetrieve = Optional[Callable[[str], RetrievalResult]]


@dataclass
class RouteDecision:
    """Everything downstream stages need to know about the chosen route."""

    source: str
    retrieval: RetrievalResult
    candidates: list[NodeWithScore]
    result: Optional["ResultSet"] = None
    cypher: Optional[str] = None
    fallback_used: bool = False
    #: extra keys merged into the response diagnostics by the routing stage
    diagnostics: dict = field(default_factory=dict)
    #: graceful-degradation markers this decision incurred (e.g. a skipped
    #: semantic arm under a blown deadline); appended to
    #: ``diagnostics["degraded"]`` by the routing stage
    degraded: tuple = ()


class RoutingPolicy(ABC):
    """Decides which retrieval(s) feed the rerank/synthesis stages."""

    #: set False for policies that never consult the symbolic retriever —
    #: the engine then skips the symbolic stage (and tolerates its absence)
    uses_symbolic: bool = True

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier recorded in diagnostics (``route`` key)."""

    @abstractmethod
    def route(self, ctx: "QueryContext", vector_retrieve: VectorRetrieve) -> RouteDecision:
        """Choose the route for ``ctx``; must not mutate the context."""


class SymbolicFirstPolicy(RoutingPolicy):
    """Symbolic result when clean, vector fallback on failure/sparsity."""

    @property
    def name(self) -> str:
        return "symbolic-first"

    def route(self, ctx: "QueryContext", vector_retrieve: VectorRetrieve) -> RouteDecision:
        symbolic = ctx.symbolic or RetrievalResult(source="text2cypher")
        if symbolic.succeeded and not ctx.sparse:
            return RouteDecision(
                source=symbolic.source,
                retrieval=symbolic,
                candidates=list(symbolic.nodes),
                result=symbolic.result,
                cypher=symbolic.cypher,
            )
        if vector_retrieve is not None:
            semantic = vector_retrieve(ctx.question)
            return RouteDecision(
                source=semantic.source,
                retrieval=semantic,
                candidates=list(semantic.nodes),
                result=None,
                cypher=symbolic.cypher,  # surfaced even when it failed, for transparency
                fallback_used=True,
                diagnostics={"sparse": bool(ctx.sparse)},
            )
        # No fallback configured: answer from whatever the symbolic path has.
        return RouteDecision(
            source=symbolic.source,
            retrieval=symbolic,
            candidates=list(symbolic.nodes),
            result=symbolic.result,
            cypher=symbolic.cypher,
            diagnostics={"sparse": bool(ctx.sparse)},
        )


class VectorOnlyPolicy(RoutingPolicy):
    """Every question answered from vector-retrieved node descriptions."""

    uses_symbolic = False

    @property
    def name(self) -> str:
        return "vector-only"

    def route(self, ctx: "QueryContext", vector_retrieve: VectorRetrieve) -> RouteDecision:
        if vector_retrieve is None:
            raise ValueError("VectorOnlyPolicy requires a vector retriever")
        semantic = vector_retrieve(ctx.question)
        return RouteDecision(
            source=semantic.source,
            retrieval=semantic,
            candidates=list(semantic.nodes),
            result=None,
            cypher=None,
        )


class HybridMergePolicy(RoutingPolicy):
    """Merge symbolic rows and semantic snippets into one candidate pool.

    Symbolic candidates keep their position ahead of semantic ones (they
    carry executed facts), duplicates are dropped by node id, and the
    structured result set survives whenever the symbolic query succeeded —
    so synthesis still sees exact values while the reranker can pull in
    semantic context the rows lack.
    """

    @property
    def name(self) -> str:
        return "hybrid-merge"

    def route(self, ctx: "QueryContext", vector_retrieve: VectorRetrieve) -> RouteDecision:
        symbolic = ctx.symbolic or RetrievalResult(source="text2cypher")
        symbolic_ok = symbolic.succeeded and not ctx.sparse
        degraded: tuple = ()
        # Deadline degradation: when the budget is blown and the symbolic
        # side already has usable rows, skip the semantic arm — merging is
        # an enrichment, not a requirement, and vector retrieval is the
        # expensive half of this policy.
        if (
            symbolic_ok
            and vector_retrieve is not None
            and ctx.deadline is not None
            and ctx.deadline.expired
        ):
            vector_retrieve = None
            degraded = ("hybrid_semantic_skipped_deadline",)
        semantic = vector_retrieve(ctx.question) if vector_retrieve is not None else None

        merged: list[NodeWithScore] = []
        seen: set[str] = set()
        pools = [symbolic.nodes] if symbolic_ok else []
        if semantic is not None:
            pools.append(semantic.nodes)
        for pool in pools:
            for candidate in pool:
                if candidate.node.node_id in seen:
                    continue
                seen.add(candidate.node.node_id)
                merged.append(candidate)

        if symbolic_ok and semantic is not None:
            source = "hybrid"
        elif symbolic_ok:
            source = symbolic.source
        else:
            source = semantic.source if semantic is not None else symbolic.source
        retrieval = RetrievalResult(
            nodes=merged,
            source=source,
            cypher=symbolic.cypher,
            result=symbolic.result if symbolic_ok else None,
        )
        return RouteDecision(
            source=source,
            retrieval=retrieval,
            candidates=merged,
            result=retrieval.result,
            cypher=symbolic.cypher,
            fallback_used=not symbolic_ok and semantic is not None,
            diagnostics={"sparse": bool(ctx.sparse)} if not symbolic_ok else {},
            degraded=degraded,
        )


_POLICIES = {
    "symbolic-first": SymbolicFirstPolicy,
    "vector-only": VectorOnlyPolicy,
    "hybrid-merge": HybridMergePolicy,
}


def make_routing_policy(name: str) -> RoutingPolicy:
    """Instantiate a policy by its registry name (see ``_POLICIES``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
