"""Shared data types of the retrieval framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..cypher.result import ResultSet

__all__ = ["TextNode", "NodeWithScore", "RetrievalResult"]


@dataclass(frozen=True)
class TextNode:
    """A retrievable text unit (a graph node's description, or a result row)."""

    node_id: str
    text: str
    metadata: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)


@dataclass(frozen=True)
class NodeWithScore:
    """A retrieved node plus its retrieval score."""

    node: TextNode
    score: float

    def __repr__(self) -> str:
        return f"NodeWithScore({self.node.node_id!r}, {self.score:.3f})"


@dataclass
class RetrievalResult:
    """Everything one retriever produced for a query.

    ``source`` identifies the retriever ("text2cypher" / "vector").  For the
    symbolic path, ``cypher`` and ``result`` carry the executed query and
    its structured rows; ``error`` records why execution failed, which the
    pipeline uses to decide on the semantic fallback.
    """

    nodes: list[NodeWithScore] = field(default_factory=list)
    source: str = ""
    cypher: Optional[str] = None
    result: Optional[ResultSet] = None
    error: Optional[str] = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when retrieval executed without error."""
        return self.error is None

    @property
    def is_sparse(self) -> bool:
        """True when the retriever came back (nearly) empty."""
        if self.error is not None:
            return True
        if self.result is not None:
            return len(self.result.records) == 0
        return len(self.nodes) == 0
