"""Mini retrieval-augmented-generation framework (LlamaIndex substitute)."""

from .decompose import DecomposingQueryEngine, DecompositionPlan, QuestionDecomposer
from .describe import DESCRIBED_LABELS, build_description_corpus, describe_node
from .pipeline import PipelineResponse, RetrieverQueryEngine
from .reranker import LLMReranker, default_rerank_prompt
from .retriever import Retriever
from .synthesizer import ResponseSynthesizer, default_answer_prompt
from .text2cypher_retriever import TextToCypherRetriever, default_text2cypher_prompt
from .types import NodeWithScore, RetrievalResult, TextNode
from .vector_retriever import VectorContextRetriever

__all__ = [
    "Retriever",
    "TextNode",
    "NodeWithScore",
    "RetrievalResult",
    "TextToCypherRetriever",
    "VectorContextRetriever",
    "LLMReranker",
    "ResponseSynthesizer",
    "RetrieverQueryEngine",
    "PipelineResponse",
    "DecomposingQueryEngine",
    "DecompositionPlan",
    "QuestionDecomposer",
    "describe_node",
    "build_description_corpus",
    "DESCRIBED_LABELS",
    "default_text2cypher_prompt",
    "default_rerank_prompt",
    "default_answer_prompt",
]
