"""Mini retrieval-augmented-generation framework (LlamaIndex substitute)."""

from .decompose import DecomposingQueryEngine, DecompositionPlan, QuestionDecomposer
from .describe import DESCRIBED_LABELS, build_description_corpus, describe_node
from .errors import (
    CircuitOpen,
    DeadlineExceeded,
    EmptyResult,
    ExecutionError,
    PipelineError,
    SymbolicTranslationError,
    classify_symbolic_failure,
)
from .observer import (
    MetricsRegistry,
    PipelineObserver,
    StageSpan,
    StageStats,
    TracingObserver,
)
from .pipeline import PipelineResponse, RetrieverQueryEngine
from .reranker import LLMReranker, default_rerank_prompt
from .retriever import Retriever
from .routing import (
    HybridMergePolicy,
    RouteDecision,
    RoutingPolicy,
    SymbolicFirstPolicy,
    VectorOnlyPolicy,
    make_routing_policy,
)
from .stages import (
    FallbackRoutingStage,
    QueryContext,
    RerankStage,
    Stage,
    StagePipeline,
    SymbolicRetrievalStage,
    SynthesisStage,
)
from .synthesizer import ResponseSynthesizer, default_answer_prompt
from .text2cypher_retriever import TextToCypherRetriever, default_text2cypher_prompt
from .types import NodeWithScore, RetrievalResult, TextNode
from .vector_retriever import VectorContextRetriever

__all__ = [
    "Retriever",
    "TextNode",
    "NodeWithScore",
    "RetrievalResult",
    "TextToCypherRetriever",
    "VectorContextRetriever",
    "LLMReranker",
    "ResponseSynthesizer",
    "RetrieverQueryEngine",
    "PipelineResponse",
    "DecomposingQueryEngine",
    "DecompositionPlan",
    "QuestionDecomposer",
    # stage-execution kernel
    "Stage",
    "QueryContext",
    "StagePipeline",
    "SymbolicRetrievalStage",
    "FallbackRoutingStage",
    "RerankStage",
    "SynthesisStage",
    # routing policies
    "RoutingPolicy",
    "RouteDecision",
    "SymbolicFirstPolicy",
    "VectorOnlyPolicy",
    "HybridMergePolicy",
    "make_routing_policy",
    # observability
    "PipelineObserver",
    "TracingObserver",
    "StageSpan",
    "MetricsRegistry",
    "StageStats",
    # error taxonomy
    "PipelineError",
    "SymbolicTranslationError",
    "ExecutionError",
    "EmptyResult",
    "DeadlineExceeded",
    "CircuitOpen",
    "classify_symbolic_failure",
    "describe_node",
    "build_description_corpus",
    "DESCRIBED_LABELS",
    "default_text2cypher_prompt",
    "default_rerank_prompt",
    "default_answer_prompt",
]
