"""Retriever interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

from .types import RetrievalResult

__all__ = ["Retriever"]


class Retriever(ABC):
    """One retrieval strategy: query text in, scored context out."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in provenance records."""

    @abstractmethod
    def retrieve(self, query: str) -> RetrievalResult:
        """Retrieve context for ``query``; never raises on query failure —
        failures are reported through ``RetrievalResult.error``."""
