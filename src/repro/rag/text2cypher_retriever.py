"""TextToCypherRetriever — the symbolic retrieval path (paper §2, stage 2).

An LLM maps the user question to a Cypher query (through the injected
prompt chain); the query runs against the graph engine and the structured
rows come back as retrieval context.  Failures — untranslatable questions,
syntax errors from the generated query, runtime errors — are captured in
the result so the pipeline can fall back to semantic retrieval.
"""

from __future__ import annotations

import logging
from typing import Callable

from ..cypher.errors import CypherError
from ..cypher.executor import CypherEngine
from ..cypher.result import ResultSet, render_value
from ..llm.base import LLM
from .retriever import Retriever
from .types import NodeWithScore, RetrievalResult, TextNode

__all__ = ["TextToCypherRetriever", "default_text2cypher_prompt"]

logger = logging.getLogger(__name__)

_MAX_CONTEXT_ROWS = 25


def default_text2cypher_prompt(question: str, schema: str) -> str:
    """Generic text-to-Cypher prompt (ChatIYP injects its own IYP chain)."""
    return (
        "[TASK: text2cypher]\n"
        "Translate the question into a Cypher query over the graph schema.\n"
        f"[SCHEMA]\n{schema}\n"
        f"[QUESTION]\n{question}\n"
    )


class TextToCypherRetriever(Retriever):
    """LLM → Cypher → graph execution → structured context."""

    #: the symbolic stage passes its request deadline into retrieve()
    supports_deadline = True

    def __init__(
        self,
        engine: CypherEngine,
        llm: LLM,
        schema_text: str = "",
        prompt_builder: Callable[[str, str], str] | None = None,
        capture_plan: bool = False,
        capture_profile: bool = False,
        row_budget: int | None = None,
    ) -> None:
        self.engine = engine
        self.llm = llm
        self.schema_text = schema_text
        self.prompt_builder = prompt_builder or default_text2cypher_prompt
        # When on, successful retrievals carry the engine's EXPLAIN text in
        # metadata["plan"] — chosen anchors, directions and row estimates
        # for the generated query (cheap: the AST is already cached).
        self.capture_plan = capture_plan
        # When on, every execution runs profiled and retrievals carry the
        # executed operator tree (rows + wall-time per operator) in
        # metadata["cypher_profile"].
        self.capture_profile = capture_profile
        # Intermediate-row budget forwarded to every execution (None =
        # engine default); overruns surface as a ResourceExhausted error.
        self.row_budget = row_budget

    @property
    def name(self) -> str:
        return "text2cypher"

    def retrieve(self, query: str, deadline=None) -> RetrievalResult:
        prompt = self.prompt_builder(query, self.schema_text)
        completion = self.llm.complete(prompt)
        cypher = completion.metadata.get("cypher")
        generation_meta = {
            key: completion.metadata.get(key)
            for key in ("confidence", "intent", "perturbation", "coverage")
        }
        if not cypher:
            return RetrievalResult(
                source=self.name,
                error="translation_failed",
                metadata=generation_meta,
            )
        logger.debug("generated cypher for %r: %s", query, cypher)
        try:
            result = self.engine.execute(
                cypher,
                deadline=deadline,
                row_budget=self.row_budget,
                profile=self.capture_profile,
            )
        except CypherError as exc:
            logger.debug("generated cypher failed: %s", exc)
            return RetrievalResult(
                source=self.name,
                cypher=cypher,
                error=f"{type(exc).__name__}: {exc}",
                metadata=generation_meta,
            )
        if self.capture_plan:
            generation_meta["plan"] = self.engine.explain(cypher)
        if self.capture_profile and result.profile is not None:
            generation_meta["cypher_profile"] = result.profile
        return RetrievalResult(
            nodes=self._result_nodes(result),
            source=self.name,
            cypher=cypher,
            result=result,
            metadata=generation_meta,
        )

    @staticmethod
    def _result_nodes(result: ResultSet) -> list[NodeWithScore]:
        """Render result rows into scored text nodes (symbolic hits score 1.0)."""
        nodes = []
        for index, record in enumerate(result.records[:_MAX_CONTEXT_ROWS]):
            text = ", ".join(
                f"{key}: {render_value(value)}" for key, value in record.items()
            )
            nodes.append(
                NodeWithScore(
                    node=TextNode(node_id=f"row-{index}", text=text, metadata={"row": index}),
                    score=1.0,
                )
            )
        return nodes
