"""repro.chaos — fault-injected soak testing of the serving stack.

``python -m repro.chaos --requests 300 --workers 8 --seed 7 --plan
benchmarks/plans/smoke.json`` drives a multi-threaded load of
deterministic questions through an in-process :class:`~repro.core.ChatIYP`
while the :mod:`repro.faults` injector fails LLM calls, engine
executions, vector searches, caches, single-flight leaders and admission
slots — and audits serving invariants after every request (termination,
batch integrity, degradation honesty, breaker legality, admission
ceiling).  Violations exit non-zero with a seed + plan replay dump.
"""

from .invariants import (
    DEGRADED_MARKERS,
    LEGAL_BREAKER_TRANSITIONS,
    InvariantChecker,
    Violation,
)
from .runner import ChaosReport, ChaosRunner, RequestSpec, write_violation_dump

__all__ = [
    "DEGRADED_MARKERS",
    "LEGAL_BREAKER_TRANSITIONS",
    "ChaosReport",
    "ChaosRunner",
    "InvariantChecker",
    "RequestSpec",
    "Violation",
    "write_violation_dump",
]
