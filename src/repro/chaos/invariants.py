"""Serving invariants the chaos soak audits after every request.

Each check is deliberately *timing-insensitive in the pass direction*: a
healthy system can never flake a check because of scheduling jitter, and
every bound is widened by exactly the delay the fault injector itself
added (tracked, not estimated).  The five invariant families:

1. **Termination** — every admitted request completes within its deadline
   plus a grace bound plus whatever latency was injected while it ran.
2. **Batch integrity** — positional batch results are never lost,
   duplicated or reordered, and each outcome answers its own question.
3. **Degradation honesty** — ``diagnostics["degraded"]`` markers come
   from the known vocabulary, a partial-synthesis marker matches a
   partial answer, and a degraded answer is never served from (or found
   in) the answer cache.
4. **Breaker legality** — every observed circuit-breaker transition is an
   edge of the three-state machine.
5. **Admission ceiling** — concurrently admitted requests never exceed
   ``max_concurrency``.

Additionally, any exception that escapes a request without an
:class:`~repro.faults.errors.InjectedFault` on its chain is a crash —
the system fell over on its own, which is always a violation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

from ..faults import is_injected
from ..parallel import BatchOutcome
from ..serving.breaker import BreakerState

__all__ = [
    "DEGRADED_MARKERS",
    "LEGAL_BREAKER_TRANSITIONS",
    "Violation",
    "InvariantChecker",
]

#: every graceful-degradation marker a stage or routing policy may emit
DEGRADED_MARKERS = frozenset(
    {
        "symbolic_skipped_deadline",
        "symbolic_skipped_breaker_open",
        "hybrid_semantic_skipped_deadline",
        "rerank_skipped_deadline",
        "synthesis_partial_deadline",
    }
)

#: legal edges of the breaker state machine.  open→closed covers the race
#: where a half-open probe is still in flight when a concurrent failure
#: re-opens the breaker, and the probe then succeeds.
LEGAL_BREAKER_TRANSITIONS = frozenset(
    {
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        (BreakerState.OPEN, BreakerState.CLOSED),
    }
)

_PARTIAL_ANSWER_PREFIXES = (
    "Partial answer (deadline exceeded):",
    "The request deadline was exceeded",
)


@dataclass
class Violation:
    """One broken invariant, with everything needed to replay it."""

    invariant: str
    detail: str
    request: Optional[int] = None
    question: Optional[Any] = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"invariant": self.invariant, "detail": self.detail}
        if self.request is not None:
            payload["request"] = self.request
        if self.question is not None:
            payload["question"] = self.question
        return payload


@dataclass
class InvariantChecker:
    """Thread-safe accumulator of invariant checks and violations."""

    max_concurrency: int
    violations: list[Violation] = field(default_factory=list)
    checks: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _active: int = 0
    _max_active: int = 0
    _breaker_transitions: list[tuple[BreakerState, BreakerState]] = field(
        default_factory=list
    )

    # -- recording ---------------------------------------------------------

    def _fail(
        self,
        invariant: str,
        detail: str,
        request: Optional[int] = None,
        question: Optional[Any] = None,
    ) -> None:
        with self._lock:
            self.violations.append(
                Violation(
                    invariant=invariant,
                    detail=detail,
                    request=request,
                    question=question,
                )
            )

    def _count(self) -> None:
        with self._lock:
            self.checks += 1

    # -- admission ceiling -------------------------------------------------

    @contextmanager
    def admitted_section(self) -> Iterator[None]:
        """Wrap the admitted portion of a request; audits the ceiling."""
        with self._lock:
            self._active += 1
            self._max_active = max(self._max_active, self._active)
            active = self._active
        if active > self.max_concurrency:
            self._fail(
                "admission_ceiling",
                f"{active} requests concurrently admitted "
                f"(max_concurrency={self.max_concurrency})",
            )
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1

    @property
    def max_observed_concurrency(self) -> int:
        with self._lock:
            return self._max_active

    # -- termination -------------------------------------------------------

    def check_termination(
        self,
        index: int,
        wall_ms: float,
        budget_ms: float,
        grace_ms: float,
        injected_ms: float,
        question: Optional[Any] = None,
    ) -> None:
        self._count()
        bound = budget_ms + grace_ms + injected_ms
        if wall_ms > bound:
            self._fail(
                "termination",
                f"request took {wall_ms:.1f} ms, bound was {bound:.1f} ms "
                f"(deadline {budget_ms:.0f} + grace {grace_ms:.0f} + "
                f"injected {injected_ms:.1f})",
                request=index,
                question=question,
            )

    # -- crash / error classification --------------------------------------

    def check_exception(
        self, index: int, exc: BaseException, question: Optional[Any] = None
    ) -> None:
        """A request raised: injected faults are expected, crashes are not."""
        self._count()
        if not is_injected(exc):
            self._fail(
                "no_unexpected_crash",
                f"{type(exc).__name__}: {exc}",
                request=index,
                question=question,
            )

    # -- degradation honesty -----------------------------------------------

    def check_response(
        self, index: int, response: Any, question: Optional[Any] = None
    ) -> None:
        self._count()
        diagnostics = getattr(response, "diagnostics", {}) or {}
        degraded = list(diagnostics.get("degraded", ()))
        unknown = [marker for marker in degraded if marker not in DEGRADED_MARKERS]
        if unknown:
            self._fail(
                "degraded_markers_known",
                f"unknown degraded markers {unknown!r}",
                request=index,
                question=question,
            )
        if len(set(degraded)) != len(degraded):
            self._fail(
                "degraded_markers_unique",
                f"duplicate degraded markers {degraded!r}",
                request=index,
                question=question,
            )
        if diagnostics.get("cache_hit") and degraded:
            self._fail(
                "degraded_never_cached",
                f"cache hit served a degraded answer (markers {degraded!r})",
                request=index,
                question=question,
            )
        if "synthesis_partial_deadline" in degraded:
            answer = getattr(response, "answer", "") or ""
            if not answer.startswith(_PARTIAL_ANSWER_PREFIXES):
                self._fail(
                    "degraded_markers_accurate",
                    "synthesis_partial_deadline marker without a partial "
                    f"answer (answer starts {answer[:60]!r})",
                    request=index,
                    question=question,
                )

    # -- batch integrity ---------------------------------------------------

    def check_batch(
        self,
        index: int,
        questions: Sequence[str],
        outcomes: Sequence[BatchOutcome],
    ) -> None:
        self._count()
        if len(outcomes) != len(questions):
            self._fail(
                "batch_positional",
                f"{len(questions)} questions in, {len(outcomes)} outcomes out",
                request=index,
                question=list(questions),
            )
            return
        indexes = [outcome.index for outcome in outcomes]
        if indexes != list(range(len(questions))):
            self._fail(
                "batch_positional",
                f"outcome indexes {indexes!r} are not positional",
                request=index,
                question=list(questions),
            )
        for position, outcome in enumerate(outcomes):
            if outcome.ok and outcome.value is not None:
                answered = getattr(outcome.value, "question", None)
                if answered is not None and answered != questions[position]:
                    self._fail(
                        "batch_positional",
                        f"slot {position} answered {answered!r} "
                        f"instead of {questions[position]!r}",
                        request=index,
                        question=list(questions),
                    )

    # -- breaker legality --------------------------------------------------

    def record_breaker_transition(
        self, old: BreakerState, new: BreakerState
    ) -> None:
        with self._lock:
            self._breaker_transitions.append((old, new))
        if (old, new) not in LEGAL_BREAKER_TRANSITIONS:
            self._fail(
                "breaker_transitions_legal",
                f"illegal breaker transition {old.value} -> {new.value}",
            )

    @property
    def breaker_transitions(self) -> list[tuple[BreakerState, BreakerState]]:
        with self._lock:
            return list(self._breaker_transitions)

    # -- final sweeps ------------------------------------------------------

    def sweep_cache(self, cache: Any) -> None:
        """After the soak: no cached value may carry degraded markers."""
        if cache is None:
            return
        self._count()
        for key, value in cache.entries():
            diagnostics = getattr(value, "diagnostics", {}) or {}
            degraded = list(diagnostics.get("degraded", ()))
            if degraded:
                self._fail(
                    "degraded_never_cached",
                    f"cache entry {key!r} carries degraded markers {degraded!r}",
                )
