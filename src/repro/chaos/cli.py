"""``python -m repro.chaos`` — the chaos soak CLI.

Runs a multi-threaded soak against an in-process ChatIYP under a fault
plan and exits non-zero on any invariant violation, dumping seed, plan
and the offending requests for exact replay.

Examples::

    # the CI smoke: 300 requests, 8 workers, seeded, default plan
    python -m repro.chaos --requests 300 --workers 8 --seed 7 \\
        --plan benchmarks/plans/smoke.json

    # fault-free soak (all injection sites are no-ops)
    python -m repro.chaos --requests 100 --workers 4
"""

from __future__ import annotations

import argparse
import json
import sys

from ..faults import FaultPlan
from .runner import ChaosRunner, write_violation_dump

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Chaos soak: fault-injected load with invariant auditing",
    )
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--plan", default=None, help="fault plan JSON file (omit for a fault-free soak)"
    )
    parser.add_argument("--size", default="small", choices=("small", "medium", "large"))
    parser.add_argument(
        "--deadline-ms", type=float, default=300.0,
        help="per-request budget; blown budgets must degrade, not hang",
    )
    parser.add_argument(
        "--grace-ms", type=float, default=1_500.0,
        help="slack on top of the deadline before a request counts as hung",
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=None,
        help="admission slots (default workers//2 so the queue is exercised)",
    )
    parser.add_argument(
        "--batch-every", type=int, default=10,
        help="every Nth request goes through ask_batch (0 disables batches)",
    )
    parser.add_argument(
        "--dump", default="chaos_violation.json",
        help="where to write the replay dump on violation",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print the (non-reproducible) observed stats to stderr",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    plan = FaultPlan.from_file(args.plan) if args.plan else None
    runner = ChaosRunner(
        requests=args.requests,
        workers=args.workers,
        seed=args.seed,
        plan=plan,
        dataset_size=args.size,
        deadline_ms=args.deadline_ms,
        grace_ms=args.grace_ms,
        max_concurrency=args.max_concurrency,
        batch_every=args.batch_every,
    )
    report = runner.run()
    # The summary is the reproducibility contract: bit-identical across
    # runs for a fixed seed + plan.  Observed stats go to stderr only.
    print(json.dumps(report.summary, indent=2, sort_keys=True))
    if args.verbose:
        print(json.dumps(report.observed, indent=2, sort_keys=True), file=sys.stderr)
    if not report.ok:
        dump_path = write_violation_dump(args.dump, runner, report.violations)
        print(
            f"chaos: {len(report.violations)} invariant violation(s); "
            f"replay dump written to {dump_path}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
