"""The chaos soak: hammer an in-process ChatIYP under an active fault plan
and audit serving invariants after every request.

Determinism contract (the part CI gates on): with a fixed ``--seed`` and
``--plan`` the *summary* is bit-reproducible across runs —

* the per-request question stream is a pure function of the seed
  (``question_digest``);
* the per-request fault schedule is a pure function of the plan seed and
  the request index (``schedule_digest``, computed from the injector's
  side-effect-free :meth:`~repro.faults.FaultInjector.schedule`);
* a healthy soak reports an empty ``violations`` list.

Wall-clock observations (latencies, cache-hit counts, breaker trips) are
inherently scheduling-dependent, so they live in a separate ``observed``
payload that is *not* part of the reproducibility contract.

Every invariant bound is widened by exactly the latency the injector
reports having added while the request ran, so a correct system cannot
flake the soak no matter how aggressive the plan is.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any, Optional, Union

from ..core.chatiyp import ChatIYP
from ..core.config import ChatIYPConfig
from ..faults import SITE_CATALOGUE, FaultInjector, FaultPlan, activated
from ..serving import AdmissionController
from .invariants import InvariantChecker, Violation

__all__ = ["RequestSpec", "ChaosReport", "ChaosRunner", "write_violation_dump"]

#: question templates instantiated with dataset ASNs (all translatable by
#: the simulated backbone) plus two deliberately untranslatable probes
_TEMPLATES = (
    "Which country is AS{asn} registered in?",
    "How many prefixes does AS{asn} originate?",
    "What organization manages AS{asn}?",
)
_UNTRANSLATABLE = (
    "What is the meaning of life?",
    "Tell me a story about the moon landing.",
)


@dataclass(frozen=True)
class RequestSpec:
    """What request ``index`` will do — a pure function of the seed."""

    index: int
    batch: bool
    questions: tuple[str, ...]


@dataclass
class ChaosReport:
    """Outcome of one soak: the reproducible summary + loose observations."""

    summary: dict[str, Any]
    observed: dict[str, Any]
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def write_violation_dump(
    path: Union[str, Path],
    runner: "ChaosRunner",
    violations: list[Violation],
) -> Path:
    """Persist everything needed for an exact replay of a failed soak."""
    dump = {
        "seed": runner.seed,
        "requests": runner.requests,
        "workers": runner.workers,
        "deadline_ms": runner.deadline_ms,
        "grace_ms": runner.grace_ms,
        "dataset_size": runner.dataset_size,
        "plan": runner.plan.to_dict() if runner.plan else None,
        "violations": [violation.to_dict() for violation in violations],
        "offending_requests": [
            runner.request_spec(violation.request).questions
            for violation in violations
            if violation.request is not None
        ],
        "replay": (
            f"python -m repro.chaos --requests {runner.requests} "
            f"--workers {runner.workers} --seed {runner.seed}"
            + (" --plan <this plan>" if runner.plan else "")
        ),
    }
    target = Path(path)
    target.write_text(json.dumps(dump, indent=2, sort_keys=True) + "\n")
    return target


class ChaosRunner:
    """Multi-threaded soak against an in-process :class:`ChatIYP`."""

    def __init__(
        self,
        requests: int = 300,
        workers: int = 8,
        seed: int = 7,
        plan: Optional[FaultPlan] = None,
        dataset_size: str = "small",
        deadline_ms: float = 300.0,
        grace_ms: float = 1_500.0,
        max_concurrency: Optional[int] = None,
        batch_every: int = 10,
        batch_size: int = 3,
        batch_workers: int = 2,
    ) -> None:
        if requests < 1:
            raise ValueError("requests must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.requests = requests
        self.workers = workers
        self.seed = seed
        self.plan = plan
        self.dataset_size = dataset_size
        self.deadline_ms = float(deadline_ms)
        self.grace_ms = float(grace_ms)
        # Fewer slots than workers so the admission queue is actually
        # exercised (queue time does not count against request deadlines —
        # budgets start at admission, exactly like the HTTP server's).
        self.max_concurrency = (
            max_concurrency if max_concurrency is not None else max(1, workers // 2)
        )
        self.batch_every = batch_every
        self.batch_size = batch_size
        self.batch_workers = batch_workers
        self._pool: Optional[tuple[str, ...]] = None

    # -- deterministic request stream --------------------------------------

    def _draw(self, *parts: Any) -> int:
        token = "|".join(str(part) for part in (self.seed, *parts))
        return int.from_bytes(sha256(token.encode()).digest()[:8], "big")

    def question_pool(self, chat: Optional[ChatIYP] = None) -> tuple[str, ...]:
        """Deterministic question pool over the dataset's ASNs."""
        if self._pool is None:
            if chat is None:
                chat = self.build_chat()
            asns = chat.dataset.asns[:12]
            pool = [
                template.format(asn=asn)
                for asn in asns
                for template in _TEMPLATES
            ]
            pool.extend(_UNTRANSLATABLE)
            self._pool = tuple(pool)
        return self._pool

    def request_spec(self, index: int) -> RequestSpec:
        """The (pure) plan for request ``index``: single ask or batch."""
        pool = self._pool
        if pool is None:
            raise RuntimeError("question_pool() must be built before request_spec()")
        batch = self.batch_every > 0 and index % self.batch_every == 0
        if batch:
            questions = tuple(
                pool[self._draw("q", index, slot) % len(pool)]
                for slot in range(self.batch_size)
            )
        else:
            questions = (pool[self._draw("q", index) % len(pool)],)
        return RequestSpec(index=index, batch=batch, questions=questions)

    # -- digests (the reproducibility contract) ----------------------------

    def question_digest(self) -> str:
        hasher = sha256()
        for index in range(self.requests):
            spec = self.request_spec(index)
            hasher.update(
                f"{index}|{int(spec.batch)}|{'||'.join(spec.questions)}\n".encode()
            )
        return hasher.hexdigest()[:16]

    def schedule_digest(self, invocations: int = 6) -> Optional[str]:
        """Digest of every request's fault schedule (pure preview)."""
        if self.plan is None:
            return None
        injector = FaultInjector(self.plan)
        hasher = sha256()
        for index in range(self.requests):
            for site in SITE_CATALOGUE:
                for invocation, action in enumerate(
                    injector.schedule(site, scope=index, invocations=invocations)
                ):
                    if action is not None:
                        hasher.update(
                            f"{index}|{site}|{invocation}|"
                            f"{action.spec_index}|{action.kind}\n".encode()
                        )
        return hasher.hexdigest()[:16]

    # -- system under test -------------------------------------------------

    def build_chat(self) -> ChatIYP:
        config = ChatIYPConfig(
            seed=0,
            dataset_size=self.dataset_size,
            answer_cache_size=128,
            # Breaker on and twitchy: the soak is exactly the deployment
            # shape the breaker exists for.
            breaker_failure_threshold=3,
            breaker_reset_ms=150.0,
            llm_retry_attempts=2,
            llm_retry_backoff_ms=5.0,
            coalesce_inflight=True,
        )
        return ChatIYP(config=config)

    # -- the soak ----------------------------------------------------------

    def run(self) -> ChaosReport:
        chat = self.build_chat()
        self.question_pool(chat)
        checker = InvariantChecker(max_concurrency=self.max_concurrency)
        if chat.breaker is not None:
            chat.breaker.subscribe(checker.record_breaker_transition)
        admission = AdmissionController(
            max_concurrency=self.max_concurrency,
            max_queue_depth=self.requests,
            queue_timeout_s=60.0,
        )
        observed = {
            "completed": 0,
            "errored": 0,
            "shed": 0,
            "degraded_responses": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "batch_requests": 0,
        }
        observed_lock = threading.Lock()

        def note(key: str, by: int = 1) -> None:
            with observed_lock:
                observed[key] += by

        injector_box: list[Optional[FaultInjector]] = [None]
        next_index = iter(range(self.requests))
        index_lock = threading.Lock()

        def take_index() -> Optional[int]:
            with index_lock:
                return next(next_index, None)

        def injected_ms() -> float:
            injector = injector_box[0]
            return injector.total_injected_ms if injector is not None else 0.0

        def run_request(index: int) -> None:
            spec = self.request_spec(index)
            injector = injector_box[0]
            scope = injector.scope(index) if injector is not None else nullcontext()
            with scope:
                if not admission.acquire():
                    note("shed")
                    return
                try:
                    with checker.admitted_section():
                        injected_before = injected_ms()
                        started = time.perf_counter()
                        try:
                            if spec.batch:
                                note("batch_requests")
                                outcomes = chat.ask_batch(
                                    list(spec.questions),
                                    deadline_ms=self.deadline_ms,
                                    workers=self.batch_workers,
                                )
                            else:
                                response = chat.ask(
                                    spec.questions[0], deadline_ms=self.deadline_ms
                                )
                        except BaseException as exc:  # noqa: BLE001 - audited below
                            note("errored")
                            checker.check_exception(
                                index, exc, question=spec.questions[0]
                            )
                            return
                        wall_ms = (time.perf_counter() - started) * 1000.0
                        injected_delta = injected_ms() - injected_before
                        checker.check_termination(
                            index,
                            wall_ms,
                            self.deadline_ms,
                            self.grace_ms,
                            injected_delta,
                            question=spec.questions[0],
                        )
                        if spec.batch:
                            checker.check_batch(index, spec.questions, outcomes)
                            for position, outcome in enumerate(outcomes):
                                if outcome.ok:
                                    self._note_response(note, outcome.value)
                                    checker.check_response(
                                        index,
                                        outcome.value,
                                        question=spec.questions[position],
                                    )
                                else:
                                    note("errored")
                                    checker.check_exception(
                                        index,
                                        outcome.error,
                                        question=spec.questions[position],
                                    )
                            note("completed")
                        else:
                            self._note_response(note, response)
                            checker.check_response(
                                index, response, question=spec.questions[0]
                            )
                            note("completed")
                finally:
                    admission.release()

        def worker_loop() -> None:
            while True:
                index = take_index()
                if index is None:
                    return
                run_request(index)

        soak_started = time.perf_counter()
        plan_context = (
            activated(self.plan) if self.plan is not None else nullcontext(None)
        )
        with plan_context as injector:
            injector_box[0] = injector
            threads = [
                threading.Thread(target=worker_loop, name=f"chaos-{i}", daemon=True)
                for i in range(self.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            checker.sweep_cache(chat.answer_cache)
            injector_snapshot = injector.snapshot() if injector is not None else None
        soak_seconds = time.perf_counter() - soak_started

        summary = {
            "harness": "repro.chaos",
            "requests": self.requests,
            "workers": self.workers,
            "seed": self.seed,
            "deadline_ms": self.deadline_ms,
            "grace_ms": self.grace_ms,
            "max_concurrency": self.max_concurrency,
            "batch_every": self.batch_every,
            "batch_size": self.batch_size,
            "dataset_size": self.dataset_size,
            "plan": self.plan.name if self.plan else None,
            "plan_seed": self.plan.seed if self.plan else None,
            "plan_digest": self.plan.digest() if self.plan else None,
            "schedule_digest": self.schedule_digest(),
            "question_digest": self.question_digest(),
            "invariants": [
                "admission_ceiling",
                "batch_positional",
                "breaker_transitions_legal",
                "degraded_markers_accurate",
                "degraded_never_cached",
                "no_unexpected_crash",
                "termination",
            ],
            "violations": [violation.to_dict() for violation in checker.violations],
            "ok": not checker.violations,
        }
        observed.update(
            {
                "soak_seconds": round(soak_seconds, 3),
                "checks": checker.checks,
                "max_observed_concurrency": checker.max_observed_concurrency,
                "breaker": chat.breaker.snapshot() if chat.breaker else None,
                "breaker_transitions": [
                    f"{old.value}->{new.value}"
                    for old, new in checker.breaker_transitions
                ],
                "faults": injector_snapshot,
                "serving": chat.serving_snapshot(),
            }
        )
        return ChaosReport(
            summary=summary,
            observed=observed,
            violations=list(checker.violations),
        )

    @staticmethod
    def _note_response(note: Any, response: Any) -> None:
        diagnostics = getattr(response, "diagnostics", {}) or {}
        if diagnostics.get("degraded"):
            note("degraded_responses")
        if diagnostics.get("cache_hit"):
            note("cache_hits")
        if diagnostics.get("coalesced"):
            note("coalesced")
