"""repro.faults — deterministic, seed-reproducible fault injection.

Named injection sites are threaded through the serving hot paths (LLM
heads, Cypher engine, vector store, answer cache, single-flight,
admission control, stage boundaries); a :class:`FaultPlan` activated via
:func:`activate` / :func:`activated` drives latency spikes, injected
errors, garbage translations and admission shedding through them.  With
no plan active every site is a single ``None`` check.

Quickstart::

    from repro.faults import FaultPlan, activated

    plan = FaultPlan.from_file("benchmarks/plans/smoke.json")
    with activated(plan):
        chat.ask("Which country is AS2497 registered in?")

The chaos soak harness (``python -m repro.chaos``) builds on this layer;
see docs/architecture.md § "Fault injection and chaos testing".
"""

from .errors import (
    InjectedCypherError,
    InjectedFault,
    InjectedTimeout,
    InjectedTransientError,
    is_injected,
)
from .injector import (
    SITE_CATALOGUE,
    FaultAction,
    FaultInjector,
    activate,
    activated,
    active_injector,
    deactivate,
    fault_point,
)
from .plan import ERROR_CLASSES, KINDS, FaultPlan, FaultSpec

__all__ = [
    "ERROR_CLASSES",
    "KINDS",
    "SITE_CATALOGUE",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedCypherError",
    "InjectedFault",
    "InjectedTimeout",
    "InjectedTransientError",
    "activate",
    "activated",
    "active_injector",
    "deactivate",
    "fault_point",
    "is_injected",
]
