"""The fault injector and the ``fault_point`` hook threaded through hot paths.

Design constraints, in order:

1. **Zero overhead when inactive.**  Every hot path calls
   :func:`fault_point` unconditionally; with no plan active that is one
   module-global load and a ``None`` check — no locks, no dict lookups,
   no clock reads.
2. **Deterministic per (seed, scope, site, invocation).**  Whether a
   fault fires at the *k*-th invocation of a site within a scope is a
   pure function of the plan seed — never of wall-clock time, thread
   identity, or the global RNG.  The chaos runner scopes each request to
   its index, so request *i*'s fault schedule is identical across runs
   regardless of thread interleaving, and :meth:`FaultInjector.schedule`
   can preview it without executing anything.
3. **Faults travel organic failure paths.**  ``error`` specs raise
   exceptions from :mod:`repro.faults.errors` that the targeted layer
   already catches (or deliberately doesn't); ``latency`` specs sleep
   through an injectable sleeper; mutation kinds (``garbage``, ``shed``)
   are returned to the call site, which interprets them.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Union

from .errors import InjectedCypherError, InjectedTimeout, InjectedTransientError
from .plan import FaultPlan

__all__ = [
    "SITE_CATALOGUE",
    "FaultAction",
    "FaultInjector",
    "fault_point",
    "activate",
    "deactivate",
    "activated",
    "active_injector",
]

#: Every named injection site threaded through the codebase.  Keep in sync
#: with docs/architecture.md § "Fault injection and chaos testing".
SITE_CATALOGUE = (
    "llm.text2cypher",   # simulated backbone, translation head
    "llm.answer",        # simulated backbone, synthesis head
    "llm.rerank",        # simulated backbone, rerank head (fires per candidate)
    "llm.judge",         # simulated backbone, judge head (eval only)
    "graph.execute",     # CypherEngine.execute — the symbolic hot path
    "graph.csr.build",   # GraphStore.csr_snapshot — columnar snapshot build
    "vector.search",     # VectorStore.search — the semantic hot path
    "cache.get",         # AnswerCache lookup
    "singleflight.begin",  # SingleFlight registration (leader handoff)
    "serving.execute",   # ChatIYP._execute — one full pipeline run
    "admission.acquire",  # AdmissionController slot acquisition
    "stage.symbolic",    # StagePipeline, before each stage
    "stage.routing",
    "stage.rerank",
    "stage.synthesis",
)


@dataclass(frozen=True)
class FaultAction:
    """One decided injection: what fires at which site invocation."""

    site: str
    kind: str
    spec_index: int
    invocation: int
    latency_ms: float = 0.0
    error: str = "transient"
    payload: Optional[str] = None

    def make_error(self) -> Exception:
        message = (
            f"injected {self.error} fault at {self.site} "
            f"(spec {self.spec_index}, invocation {self.invocation})"
        )
        if self.error == "timeout":
            return InjectedTimeout(message)
        if self.error == "cypher":
            return InjectedCypherError(message)
        return InjectedTransientError(message)


class FaultInjector:
    """Executes a :class:`FaultPlan` at named sites, deterministically."""

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._scope = threading.local()
        #: per (scope, site) invocation counters
        self._counters: dict[tuple[Any, str], int] = {}
        #: per-site fire counts (observability only)
        self._fires: dict[str, int] = {}
        self._injected_ms = 0.0

    # -- scoping -----------------------------------------------------------

    @contextmanager
    def scope(self, token: Any) -> Iterator[None]:
        """Attribute this thread's decisions to ``token`` (request index).

        Scopes make decisions *per-request* deterministic: two runs give
        request ``i`` the same fault schedule no matter how threads
        interleave.  Unscoped threads share the ``None`` scope.
        """
        previous = getattr(self._scope, "token", None)
        self._scope.token = token
        try:
            yield
        finally:
            self._scope.token = previous

    @property
    def current_scope(self) -> Any:
        return getattr(self._scope, "token", None)

    # -- deterministic decisions -------------------------------------------

    def _draw(self, scope: Any, site: str, spec_index: int, invocation: int) -> float:
        """Uniform [0, 1) draw, a pure function of its arguments + seed."""
        token = f"{self.plan.seed}|{scope}|{site}|{spec_index}|{invocation}"
        digest = hashlib.sha256(token.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decide_at(
        self, site: str, scope: Any, invocation: int
    ) -> Optional[FaultAction]:
        """The pure decision function: no side effects, no counters.

        First matching spec whose window is open and whose draw lands
        under its probability wins (spec order is priority order).
        """
        for spec_index, spec in self.plan.specs_for(site):
            if not spec.active_at(invocation):
                continue
            if self._draw(scope, site, spec_index, invocation) < spec.probability:
                return FaultAction(
                    site=site,
                    kind=spec.kind,
                    spec_index=spec_index,
                    invocation=invocation,
                    latency_ms=spec.latency_ms,
                    error=spec.error,
                    payload=spec.payload,
                )
        return None

    def schedule(
        self, site: str, scope: Any = None, invocations: int = 8
    ) -> list[Optional[FaultAction]]:
        """Preview the first ``invocations`` decisions for a site/scope.

        Because :meth:`decide_at` is pure, this is exactly what a run
        would inject — the chaos runner hashes it into the reproducible
        ``schedule_digest``.
        """
        return [self.decide_at(site, scope, k) for k in range(invocations)]

    # -- execution ---------------------------------------------------------

    def fire(self, site: str) -> Optional[FaultAction]:
        """Consume one invocation of ``site`` and perform its fault, if any.

        ``latency`` sleeps here (and is accounted in
        :attr:`total_injected_ms`); ``error`` raises; mutation kinds are
        returned for the call site to interpret.  Returns ``None`` when
        nothing fires.
        """
        if not self.plan.specs_for(site):
            return None
        scope = getattr(self._scope, "token", None)
        with self._lock:
            key = (scope, site)
            invocation = self._counters.get(key, 0)
            self._counters[key] = invocation + 1
        action = self.decide_at(site, scope, invocation)
        if action is None:
            return None
        with self._lock:
            self._fires[site] = self._fires.get(site, 0) + 1
            if action.kind == "latency":
                self._injected_ms += action.latency_ms
        if action.kind == "latency":
            if action.latency_ms > 0:
                self._sleep(action.latency_ms / 1000.0)
            return action
        if action.kind == "error":
            raise action.make_error()
        return action

    # -- introspection -----------------------------------------------------

    @property
    def total_injected_ms(self) -> float:
        """Cumulative injected sleep across all threads and scopes.

        Monotone; the chaos runner brackets a request with before/after
        reads to bound how much *external* delay the request may have
        absorbed (an over-estimate under concurrency, which only loosens
        the termination bound — never a false violation).
        """
        with self._lock:
            return self._injected_ms

    def snapshot(self) -> dict:
        """JSON-friendly state dump for ``/metrics``."""
        with self._lock:
            return {
                "plan": self.plan.name,
                "plan_digest": self.plan.digest(),
                "seed": self.plan.seed,
                "specs": len(self.plan.specs),
                "fires": dict(sorted(self._fires.items())),
                "injected_latency_ms": round(self._injected_ms, 3),
            }


# -- global activation -----------------------------------------------------
#
# The injector is process-global by design: injection sites live deep in
# layers (engine, vector store, cache) that must not grow injector
# plumbing through every constructor.  `fault_point` reads one module
# global; with no plan active the whole layer is a None check.

_active: Optional[FaultInjector] = None


def fault_point(site: str) -> Optional[FaultAction]:
    """The hook hot paths call.  No-op (``None``) unless a plan is active."""
    injector = _active
    if injector is None:
        return None
    return injector.fire(site)


def activate(plan: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Install ``plan`` (or a prebuilt injector) as the process-wide injector."""
    global _active
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    _active = injector
    return injector


def deactivate() -> None:
    """Remove the active injector; every site reverts to a no-op."""
    global _active
    _active = None


def active_injector() -> Optional[FaultInjector]:
    """The currently active injector, if any."""
    return _active


@contextmanager
def activated(plan: Union[FaultPlan, FaultInjector]) -> Iterator[FaultInjector]:
    """``with activated(plan) as injector:`` — deactivates on exit,
    restoring whatever was active before."""
    previous = _active
    injector = activate(plan)
    try:
        yield injector
    finally:
        if previous is None:
            deactivate()
        else:
            activate(previous)
