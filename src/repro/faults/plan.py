"""Fault plans: the declarative, serialisable half of the injection layer.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultSpec`
rules.  Each spec targets one injection *site* (exact name or a trailing
``*`` glob like ``llm.*``) and describes what to inject when its
deterministic per-invocation draw lands under ``probability``:

* ``latency`` — sleep ``latency_ms`` before the guarded operation;
* ``error`` — raise an injected exception of class ``error``
  (``transient`` | ``timeout`` | ``cypher``);
* ``garbage`` — hand the call site a corruption directive it interprets
  itself (the text-to-Cypher head substitutes unparsable Cypher);
* ``shed`` — the admission controller refuses the slot.

Plans are plain JSON so a violating soak can dump the exact plan next to
its seed for bit-exact replay; :meth:`FaultPlan.digest` is the canonical
identity used by CI artifacts and reproducibility checks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

__all__ = ["FaultSpec", "FaultPlan", "KINDS", "ERROR_CLASSES"]

KINDS = ("latency", "error", "garbage", "shed")
ERROR_CLASSES = ("transient", "timeout", "cypher")


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, what, how often, and over which window."""

    site: str
    kind: str
    probability: float = 1.0
    latency_ms: float = 0.0
    error: str = "transient"
    payload: Optional[str] = None
    #: fire only from the ``after``-th invocation of the site (per scope) …
    after: int = 0
    #: … up to (exclusive) the ``until``-th; ``None`` = forever
    until: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("spec.site must be a non-empty site name")
        if self.kind not in KINDS:
            raise ValueError(f"spec.kind must be one of {KINDS}, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"spec.probability must be in [0, 1], got {self.probability!r}")
        if self.latency_ms < 0:
            raise ValueError(f"spec.latency_ms must be >= 0, got {self.latency_ms!r}")
        if self.error not in ERROR_CLASSES:
            raise ValueError(
                f"spec.error must be one of {ERROR_CLASSES}, got {self.error!r}"
            )
        if self.after < 0:
            raise ValueError(f"spec.after must be >= 0, got {self.after!r}")
        if self.until is not None and self.until <= self.after:
            raise ValueError(
                f"spec.until ({self.until!r}) must be greater than spec.after "
                f"({self.after!r})"
            )

    def matches(self, site: str) -> bool:
        """Exact match, or trailing-``*`` prefix glob (``llm.*``)."""
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def active_at(self, invocation: int) -> bool:
        """Is the spec's firing window open at this site invocation?"""
        if invocation < self.after:
            return False
        return self.until is None or invocation < self.until

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
        }
        if self.kind == "latency":
            payload["latency_ms"] = self.latency_ms
        if self.kind == "error":
            payload["error"] = self.error
        if self.payload is not None:
            payload["payload"] = self.payload
        if self.after:
            payload["after"] = self.after
        if self.until is not None:
            payload["until"] = self.until
        return payload

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "FaultSpec":
        known = {spec_field for spec_field in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**raw)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    name: str = "unnamed"
    _site_index: dict[str, tuple[tuple[int, FaultSpec], ...]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def specs_for(self, site: str) -> tuple[tuple[int, FaultSpec], ...]:
        """``(spec_index, spec)`` pairs matching ``site`` (memoised)."""
        cached = self._site_index.get(site)
        if cached is None:
            cached = tuple(
                (index, spec)
                for index, spec in enumerate(self.specs)
                if spec.matches(site)
            )
            self._site_index[site] = cached
        return cached

    @property
    def max_latency_ms(self) -> float:
        """Largest single injected sleep any spec can add."""
        return max((spec.latency_ms for spec in self.specs), default=0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def digest(self) -> str:
        """Canonical content identity (order-sensitive, whitespace-free)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(raw).__name__}")
        specs_raw = raw.get("specs", [])
        if not isinstance(specs_raw, list):
            raise ValueError("fault plan 'specs' must be a list")
        specs = tuple(FaultSpec.from_dict(spec) for spec in specs_raw)
        return cls(
            seed=int(raw.get("seed", 0)),
            specs=specs,
            name=str(raw.get("name", "unnamed")),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--plan`` CLI form)."""
        text = Path(path).read_text()
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault plan JSON in {path}: {exc}") from exc
        plan = cls.from_dict(raw)
        if plan.name == "unnamed":
            plan = cls(seed=plan.seed, specs=plan.specs, name=Path(path).stem)
        return plan
