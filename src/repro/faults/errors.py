"""Exception vocabulary of the fault-injection layer.

Injected failures must be *distinguishable* from organic ones — the chaos
harness treats a request that died of an :class:`InjectedFault` as an
expected outcome, while any other uncaught exception is an invariant
violation (the system crashed on its own).  They must also be
*catchable by the layer they target*: an injected engine failure has to
travel the same ``except CypherError`` path a real one would, which is why
:class:`InjectedCypherError` inherits from the engine's own
:class:`~repro.cypher.errors.CypherRuntimeError`.
"""

from __future__ import annotations

from ..cypher.errors import CypherRuntimeError

__all__ = [
    "InjectedFault",
    "InjectedTransientError",
    "InjectedTimeout",
    "InjectedCypherError",
    "is_injected",
]


class InjectedFault(Exception):
    """Base class of every deliberately injected failure."""


class InjectedTransientError(InjectedFault):
    """A transient infrastructure hiccup (retryable by policy)."""


class InjectedTimeout(InjectedFault, TimeoutError):
    """An injected timeout — also a :class:`TimeoutError` for callers
    that key off the builtin hierarchy."""


class InjectedCypherError(CypherRuntimeError, InjectedFault):
    """An injected engine failure.

    Travels the organic path: the symbolic retriever catches it as a
    :class:`~repro.cypher.errors.CypherError`, the taxonomy maps it to
    ``ExecutionError``, and the circuit breaker counts it as a failure.
    """


def is_injected(exc: BaseException) -> bool:
    """True when ``exc`` (or anything on its cause/context chain) was
    raised by the fault injector."""
    seen: set[int] = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        if isinstance(current, InjectedFault):
            return True
        seen.add(id(current))
        current = current.__cause__ or current.__context__
    return False
