"""Thread-safe bounded LRU cache over full pipeline answers.

Cache keys bind three things so a hit is always safe to serve:

* the **normalized question** (casefolded, whitespace-collapsed) — trivial
  phrasing differences share an entry;
* the **config fingerprint** — two ChatIYP instances with different knobs
  never share answers;
* the **graph statistics version** — a monotone counter the store bumps on
  every mutation, so writing to the graph invalidates every cached answer
  without any explicit flush.

The cache stores whatever value the caller hands it (ChatIYP stores
:class:`~repro.core.chatiyp.ChatResponse` objects) and returns it as-is;
callers that mutate returned values must copy first (ChatIYP does).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

from ..faults import fault_point

__all__ = ["AnswerCache", "normalize_question"]


def normalize_question(question: str) -> str:
    """Canonical cache form: casefold + collapse internal whitespace."""
    return " ".join(question.casefold().split())


class AnswerCache:
    """Bounded LRU keyed by (question, config fingerprint, graph version)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def key(question: str, fingerprint: str, version: int) -> tuple:
        """Build the composite cache key for one lookup."""
        return (normalize_question(question), fingerprint, version)

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``."""
        # Fault-injection site: a slow (or failing) cache tier in front of
        # the pipeline. Fires before the lock so injected latency never
        # serialises other readers.
        fault_point("cache.get")
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the least-recent on overflow."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def entries(self) -> list[tuple[Hashable, Any]]:
        """Point-in-time ``(key, value)`` snapshot (recency untouched).

        For audits and debugging — the chaos harness sweeps it to verify
        no degraded answer was ever cached.
        """
        with self._lock:
            return list(self._entries.items())

    def stats(self) -> dict:
        """JSON-friendly snapshot for ``/metrics``."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": round(self._hits / lookups, 4) if lookups else 0.0,
            }
