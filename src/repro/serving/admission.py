"""Admission control: a concurrency gate with queue-depth load shedding.

The HTTP server asks for a slot before doing any work.  At most
``max_concurrency`` requests run at once; up to ``max_queue_depth``
further requests wait (bounded by ``queue_timeout_s``); everything beyond
that is shed immediately so the server answers ``503`` + ``Retry-After``
in microseconds instead of stacking threads until something falls over.

Implemented on a condition variable rather than a semaphore so the waiting
depth is observable and boundable — a plain semaphore hides the queue.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from ..faults import fault_point

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-concurrency gate with an explicitly bounded wait queue."""

    def __init__(
        self,
        max_concurrency: int = 8,
        max_queue_depth: int = 16,
        queue_timeout_s: float = 1.0,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._accepted = 0
        self._shed = 0

    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Try to take a slot; ``False`` means the request must be shed.

        Sheds immediately when the wait queue is full, otherwise waits up
        to ``timeout`` (default ``queue_timeout_s``) for capacity.
        """
        # Fault-injection site: slot starvation. A "shed" action refuses
        # the request outright (counted as a shed, exactly as a saturated
        # queue would); injected latency delays entry to the gate.
        action = fault_point("admission.acquire")
        if action is not None and action.kind == "shed":
            with self._cond:
                self._shed += 1
            return False
        wait_budget = self.queue_timeout_s if timeout is None else timeout
        with self._cond:
            if self._active < self.max_concurrency:
                self._active += 1
                self._accepted += 1
                return True
            if self._waiting >= self.max_queue_depth or wait_budget <= 0:
                self._shed += 1
                return False
            self._waiting += 1
            try:
                granted = self._cond.wait_for(
                    lambda: self._active < self.max_concurrency, timeout=wait_budget
                )
            finally:
                self._waiting -= 1
            if not granted:
                self._shed += 1
                return False
            self._active += 1
            self._accepted += 1
            return True

    def try_acquire(self) -> bool:
        """Take a slot only if one is immediately free; never queues.

        Unlike :meth:`acquire` with a zero timeout, a refusal here is not
        counted as a shed — callers use this to *opportunistically* widen
        a batch fan-out, and an unavailable extra slot just means the
        batch runs narrower, not that a request was refused.
        """
        with self._cond:
            if self._active < self.max_concurrency:
                self._active += 1
                self._accepted += 1
                return True
            return False

    def release(self) -> None:
        """Return a slot taken by a successful :meth:`acquire`."""
        with self._cond:
            if self._active <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._active -= 1
            self._cond.notify()

    @contextmanager
    def slot(self, timeout: Optional[float] = None) -> Iterator[bool]:
        """``with controller.slot() as admitted:`` — releases automatically."""
        admitted = self.acquire(timeout)
        try:
            yield admitted
        finally:
            if admitted:
                self.release()

    def snapshot(self) -> dict:
        """JSON-friendly state dump for ``/metrics``."""
        with self._cond:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "max_concurrency": self.max_concurrency,
                "max_queue_depth": self.max_queue_depth,
                "accepted": self._accepted,
                "shed": self._shed,
            }
