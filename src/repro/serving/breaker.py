"""Circuit breaker guarding the symbolic retrieval path.

Classic three-state machine:

* **closed** — requests flow; consecutive recorded failures are counted,
  and reaching ``failure_threshold`` trips the breaker open;
* **open** — :meth:`CircuitBreaker.allow` refuses (the pipeline routes to
  the vector path instead) until ``reset_after_ms`` of cooldown passed;
* **half-open** — after the cooldown, a single probe request is allowed
  through; success closes the breaker, failure re-opens it and restarts
  the cooldown.

Only *infrastructure-shaped* failures should be recorded (execution
errors, timeouts) — a question the model simply cannot translate says
nothing about the health of the engine, so the pipeline never records
translation misses here.

The clock is injectable (tests drive cooldowns deterministically) and the
state machine is lock-protected — ``allow``/``record_*`` are called from
every server worker thread.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, Optional

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker with half-open recovery probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_ms: float = 30_000.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[BreakerState, BreakerState], None]] = None,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after_ms = float(reset_after_ms)
        self._clock = clock
        self._listeners: list[Callable[[BreakerState, BreakerState], None]] = []
        if on_transition is not None:
            self._listeners.append(on_transition)
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._trips = 0

    # -- state machine -----------------------------------------------------

    def _transition(self, new_state: BreakerState) -> None:
        old, self._state = self._state, new_state
        if new_state is BreakerState.OPEN:
            self._trips += 1
            self._opened_at = self._clock()
        if new_state is not BreakerState.HALF_OPEN:
            self._probe_in_flight = False
        if old is not new_state:
            for listener in self._listeners:
                try:
                    listener(old, new_state)
                except Exception:  # noqa: BLE001 - callbacks must never break serving
                    pass

    def allow(self) -> bool:
        """May a symbolic attempt proceed right now?

        In the open state this also performs the open → half-open
        transition once the cooldown elapsed, claiming the probe slot for
        the caller that observed it first.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                elapsed_ms = (self._clock() - self._opened_at) * 1000.0
                if elapsed_ms < self.reset_after_ms:
                    return False
                self._transition(BreakerState.HALF_OPEN)
                self._probe_in_flight = True
                return True
            # half-open: exactly one probe at a time
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """A guarded attempt succeeded; half-open success closes the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state is not BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED)

    def record_neutral(self) -> None:
        """A guarded attempt ended without an infrastructure signal.

        Translation misses and sparse results neither heal nor trip the
        breaker, but a half-open probe that ends this way must hand its
        probe slot back so the next attempt can still probe recovery.
        """
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probe_in_flight = False

    def record_failure(self) -> None:
        """A guarded attempt failed; may trip (or re-open) the breaker."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._transition(BreakerState.OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(BreakerState.OPEN)

    # -- introspection -----------------------------------------------------

    def subscribe(
        self, listener: Callable[[BreakerState, BreakerState], None]
    ) -> None:
        """Add a ``(old, new)`` transition listener.

        Listeners fire under the breaker lock and must be fast and
        re-entrancy-free (the chaos harness uses this to audit that every
        observed transition is legal).  Exceptions are swallowed.
        """
        with self._lock:
            self._listeners.append(listener)

    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        """JSON-friendly state dump for ``/metrics``."""
        with self._lock:
            return {
                "state": self._state.value,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_after_ms": self.reset_after_ms,
                "trips": self._trips,
            }
