"""Per-request deadline budgets.

A :class:`Deadline` is created once at request admission and threaded
through the stage pipeline on the :class:`~repro.rag.stages.QueryContext`.
Stages consult :meth:`Deadline.expired` / :meth:`Deadline.remaining_ms`
and degrade gracefully (skip rerank, partial synthesis, vector-only
routing) instead of blowing the budget.

The clock is injectable so tests can drive expiry deterministically; the
default is :func:`time.monotonic`, which is only consulted when a deadline
is actually configured — the deterministic no-deadline path never touches
a clock.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Deadline"]


class Deadline:
    """A monotonic time budget for one request."""

    __slots__ = ("budget_ms", "_clock", "_expires_at")

    def __init__(
        self, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget_ms <= 0:
            raise ValueError(f"budget_ms must be positive, got {budget_ms!r}")
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self._expires_at = clock() + self.budget_ms / 1000.0

    @classmethod
    def start(
        cls, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Begin a ``budget_ms`` budget now (alias of the constructor)."""
        return cls(budget_ms, clock=clock)

    def remaining_ms(self) -> float:
        """Milliseconds left in the budget (never negative)."""
        return max(0.0, (self._expires_at - self._clock()) * 1000.0)

    @property
    def expired(self) -> bool:
        """True once the budget is exhausted."""
        return self._clock() >= self._expires_at

    def __repr__(self) -> str:
        return (
            f"Deadline(budget_ms={self.budget_ms:.1f}, "
            f"remaining_ms={self.remaining_ms():.1f})"
        )
