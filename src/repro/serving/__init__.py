"""Serving-hardening primitives for production-shaped deployments.

The :mod:`repro.serving` layer packages the mechanisms a bounded-latency,
concurrent ChatIYP deployment needs, independent of any particular
transport:

* :class:`Deadline` — a monotonic per-request time budget threaded through
  the stage pipeline so every stage can check remaining time and degrade
  instead of hanging;
* :class:`AnswerCache` — a thread-safe bounded LRU over full answers,
  keyed by normalized question + config fingerprint + graph statistics
  version (graph mutations invalidate automatically);
* :class:`CircuitBreaker` — classic closed/open/half-open breaker that
  trips the symbolic path after repeated execution failures and probes
  recovery after a cooldown;
* :class:`AdmissionController` — a concurrency semaphore with queue-depth
  load shedding, backing the HTTP server's ``503`` + ``Retry-After``;
* :class:`RetryPolicy` — seeded jittered exponential backoff for
  transient LLM-stage failures, deadline-aware.

Everything here is stdlib-only, thread-safe, and deterministic unless a
wall-clock-dependent feature (deadline, breaker cooldown) is actually
switched on.
"""

from .admission import AdmissionController
from .breaker import BreakerState, CircuitBreaker
from .cache import AnswerCache, normalize_question
from .deadline import Deadline
from .retry import RetryPolicy

__all__ = [
    "AdmissionController",
    "AnswerCache",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "normalize_question",
]
