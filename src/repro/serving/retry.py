"""Retry with seeded, jittered exponential backoff.

Wraps the LLM-facing pipeline stages (rerank, synthesis) against
*transient* failures — a raised exception is retried up to ``attempts``
total tries with exponentially growing, jittered sleeps between tries.
Expected pipeline outcomes (the error taxonomy recorded on the context)
are not exceptions and are never retried.

Determinism contract: jitter comes from a :class:`random.Random` seeded at
construction, never the global RNG, and the RNG is only consumed when a
failure actually occurs — the happy path stays bit-stable.  Sleeping is
injectable for tests, and a :class:`~repro.serving.deadline.Deadline`
caps both whether to retry at all and how long a backoff may sleep: a
backoff is **never allowed to overshoot the remaining budget** (a retry
that sleeps past the deadline just converts a transient failure into a
guaranteed deadline miss).  Every time the cap actually binds, the
policy counts it (:attr:`RetryPolicy.deadline_capped`) and notifies the
optional ``on_deadline_capped`` hook — ChatIYP wires it to the
``retry.deadline_capped`` metrics counter.
"""

from __future__ import annotations

import random
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .deadline import Deadline

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Bounded retry loop with full-jitter exponential backoff."""

    def __init__(
        self,
        attempts: int = 2,
        backoff_ms: float = 25.0,
        multiplier: float = 2.0,
        max_backoff_ms: float = 1_000.0,
        jitter: float = 0.5,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        on_deadline_capped: Optional[Callable[[], None]] = None,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.backoff_ms = backoff_ms
        self.multiplier = multiplier
        self.max_backoff_ms = max_backoff_ms
        self.jitter = jitter
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._retries = 0
        self._deadline_capped = 0
        self._on_deadline_capped = on_deadline_capped

    @property
    def retries(self) -> int:
        """Total retry sleeps performed (for metrics/tests)."""
        return self._retries

    @property
    def deadline_capped(self) -> int:
        """How often a backoff sleep was cut short by the request deadline."""
        return self._deadline_capped

    def _backoff_for(self, attempt: int, deadline: Optional["Deadline"]) -> float:
        base = min(self.backoff_ms * (self.multiplier ** attempt), self.max_backoff_ms)
        with self._rng_lock:
            factor = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        backoff = base * max(0.0, factor)
        if deadline is not None:
            remaining = deadline.remaining_ms()
            if backoff > remaining:
                # Never sleep past the request budget: the capped retry may
                # still make it, an overshooting one is a guaranteed miss.
                backoff = remaining
                with self._rng_lock:
                    self._deadline_capped += 1
                if self._on_deadline_capped is not None:
                    try:
                        self._on_deadline_capped()
                    except Exception:  # noqa: BLE001 - hooks must never break retries
                        pass
        return backoff

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        deadline: Optional["Deadline"] = None,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        **kwargs: Any,
    ) -> Any:
        """Call ``fn`` with retries; re-raises the last failure."""
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except retry_on:
                final_try = attempt == self.attempts - 1
                if final_try or (deadline is not None and deadline.expired):
                    raise
                with self._rng_lock:
                    self._retries += 1
                backoff_ms = self._backoff_for(attempt, deadline)
                if backoff_ms > 0:
                    self._sleep(backoff_ms / 1000.0)
        raise AssertionError("unreachable")  # pragma: no cover
