"""Schema introspection over a :class:`~repro.graph.store.GraphStore`.

The ChatIYP prompt chain injects a textual description of the graph schema
(labels, relationship patterns, property keys) into the text-to-Cypher
prompt, exactly as LlamaIndex's Neo4j integration does.  This module derives
that description from a live store.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from .store import GraphStore

__all__ = ["GraphSchema", "SchemaRelationship", "introspect_schema"]


@dataclass(frozen=True)
class SchemaRelationship:
    """One relationship pattern ``(:Start)-[:TYPE]->(:End)`` with its count."""

    start_label: str
    rel_type: str
    end_label: str
    count: int = 0
    property_keys: tuple[str, ...] = ()

    def pattern(self) -> str:
        """Render as a Cypher-style pattern string."""
        return f"(:{self.start_label})-[:{self.rel_type}]->(:{self.end_label})"


@dataclass
class GraphSchema:
    """Aggregate schema view: labels, their properties, and edge patterns."""

    node_labels: dict[str, int] = field(default_factory=dict)
    node_properties: dict[str, tuple[str, ...]] = field(default_factory=dict)
    relationships: list[SchemaRelationship] = field(default_factory=list)

    def describe(self, max_relationships: int | None = None) -> str:
        """Render the schema as the prompt text injected into the LLM.

        The format intentionally matches what graph-RAG frameworks feed to
        text-to-Cypher models: one line per label with its properties,
        followed by one line per relationship pattern.
        """
        lines = ["Node labels and properties:"]
        for label in sorted(self.node_labels):
            keys = ", ".join(self.node_properties.get(label, ()))
            lines.append(f"  (:{label} {{{keys}}})  # {self.node_labels[label]} nodes")
        lines.append("Relationship patterns:")
        rels = self.relationships
        if max_relationships is not None:
            rels = rels[:max_relationships]
        for rel in rels:
            props = ""
            if rel.property_keys:
                props = " {" + ", ".join(rel.property_keys) + "}"
            lines.append(f"  {rel.pattern()}{props}  # {rel.count} edges")
        return "\n".join(lines)

    def has_label(self, label: str) -> bool:
        """Return True if ``label`` exists in the schema."""
        return label in self.node_labels

    def relationship_types(self) -> list[str]:
        """Distinct relationship type names, sorted."""
        return sorted({rel.rel_type for rel in self.relationships})


def introspect_schema(store: GraphStore) -> GraphSchema:
    """Build a :class:`GraphSchema` by scanning ``store``.

    Relationship patterns are aggregated per (start label, type, end label)
    triple; nodes with several labels contribute one pattern per label pair.
    """
    schema = GraphSchema()
    label_property_keys: dict[str, set[str]] = defaultdict(set)
    for node in store.all_nodes():
        for label in node.labels:
            schema.node_labels[label] = schema.node_labels.get(label, 0) + 1
            label_property_keys[label].update(node.properties)
    schema.node_properties = {
        label: tuple(sorted(keys)) for label, keys in label_property_keys.items()
    }

    pattern_counts: Counter[tuple[str, str, str]] = Counter()
    pattern_props: dict[tuple[str, str, str], set[str]] = defaultdict(set)
    for rel in store.all_relationships():
        start = store.node(rel.start_id)
        end = store.node(rel.end_id)
        for start_label in sorted(start.labels):
            for end_label in sorted(end.labels):
                key = (start_label, rel.rel_type, end_label)
                pattern_counts[key] += 1
                pattern_props[key].update(rel.properties)
    schema.relationships = [
        SchemaRelationship(
            start_label=start,
            rel_type=rel_type,
            end_label=end,
            count=count,
            property_keys=tuple(sorted(pattern_props[(start, rel_type, end)])),
        )
        for (start, rel_type, end), count in sorted(pattern_counts.items())
    ]
    return schema
