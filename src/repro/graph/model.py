"""Core data model of the property graph store.

The model mirrors Neo4j's: a graph is a set of *nodes*, each carrying one or
more *labels* and a property map, connected by directed, typed
*relationships* that carry their own property map.  Property values are
restricted to the Cypher value space (``None``, booleans, integers, floats,
strings, and homogeneous lists thereof).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "Node",
    "Relationship",
    "Path",
    "validate_property_value",
    "validate_properties",
]

_SCALAR_TYPES = (bool, int, float, str)


def validate_property_value(value: Any) -> Any:
    """Validate (and return) a single property value.

    Raises:
        TypeError: if the value is outside the supported value space.
    """
    if value is None or isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        return [validate_property_value(item) for item in value]
    raise TypeError(
        f"unsupported property value type: {type(value).__name__!s} ({value!r})"
    )


def validate_properties(properties: Mapping[str, Any] | None) -> dict[str, Any]:
    """Validate a property map, dropping ``None`` values like Neo4j does."""
    if not properties:
        return {}
    validated = {}
    for key, value in properties.items():
        if not isinstance(key, str) or not key:
            raise TypeError(f"property keys must be non-empty strings, got {key!r}")
        value = validate_property_value(value)
        if value is not None:
            validated[key] = value
    return validated


class Node:
    """A graph node: identity, labels and a property map.

    Nodes are created through :class:`~repro.graph.store.GraphStore`; their
    identity (``node_id``) is unique within one store.  Equality and hashing
    are by identity, matching Cypher semantics where two distinct nodes with
    identical labels and properties are still different entities.
    """

    __slots__ = ("node_id", "labels", "properties")

    def __init__(
        self,
        node_id: int,
        labels: Iterable[str],
        properties: Mapping[str, Any] | None = None,
    ) -> None:
        self.node_id = node_id
        self.labels = frozenset(labels)
        self.properties = validate_properties(properties)

    def get(self, key: str, default: Any = None) -> Any:
        """Return property ``key`` or ``default``."""
        return self.properties.get(key, default)

    def has_label(self, label: str) -> bool:
        """Return True if the node carries ``label``."""
        return label in self.labels

    def __getitem__(self, key: str) -> Any:
        return self.properties[key]

    def __contains__(self, key: str) -> bool:
        return key in self.properties

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.node_id == self.node_id

    def __hash__(self) -> int:
        return hash(("node", self.node_id))

    def __repr__(self) -> str:
        labels = ":".join(sorted(self.labels))
        return f"Node(id={self.node_id}, labels=:{labels}, properties={self.properties!r})"


class Relationship:
    """A directed, typed relationship between two nodes.

    ``start_id``/``end_id`` reference node identities in the owning store.
    Like nodes, relationships compare and hash by identity.
    """

    __slots__ = ("rel_id", "rel_type", "start_id", "end_id", "properties")

    def __init__(
        self,
        rel_id: int,
        rel_type: str,
        start_id: int,
        end_id: int,
        properties: Mapping[str, Any] | None = None,
    ) -> None:
        if not rel_type or not isinstance(rel_type, str):
            raise TypeError(f"relationship type must be a non-empty string, got {rel_type!r}")
        self.rel_id = rel_id
        self.rel_type = rel_type
        self.start_id = start_id
        self.end_id = end_id
        self.properties = validate_properties(properties)

    def get(self, key: str, default: Any = None) -> Any:
        """Return property ``key`` or ``default``."""
        return self.properties.get(key, default)

    def other_end(self, node_id: int) -> int:
        """Return the node id at the opposite end from ``node_id``."""
        if node_id == self.start_id:
            return self.end_id
        if node_id == self.end_id:
            return self.start_id
        raise ValueError(f"node {node_id} is not an endpoint of relationship {self.rel_id}")

    def __getitem__(self, key: str) -> Any:
        return self.properties[key]

    def __contains__(self, key: str) -> bool:
        return key in self.properties

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relationship) and other.rel_id == self.rel_id

    def __hash__(self) -> int:
        return hash(("rel", self.rel_id))

    def __repr__(self) -> str:
        return (
            f"Relationship(id={self.rel_id}, type={self.rel_type},"
            f" {self.start_id}->{self.end_id}, properties={self.properties!r})"
        )


class Path:
    """An alternating node/relationship sequence, as bound by ``p = (a)-[]->(b)``.

    A path always has ``len(nodes) == len(relationships) + 1``.  The path
    *length* is its relationship count (Cypher's ``length(p)``).
    """

    __slots__ = ("nodes", "relationships")

    def __init__(self, nodes: list[Node], relationships: list[Relationship]) -> None:
        if len(nodes) != len(relationships) + 1:
            raise ValueError(
                f"invalid path: {len(nodes)} nodes vs {len(relationships)} relationships"
            )
        self.nodes = list(nodes)
        self.relationships = list(relationships)

    @property
    def length(self) -> int:
        """Number of relationships in the path."""
        return len(self.relationships)

    @property
    def start_node(self) -> Node:
        return self.nodes[0]

    @property
    def end_node(self) -> Node:
        return self.nodes[-1]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Path)
            and other.nodes == self.nodes
            and other.relationships == self.relationships
        )

    def __hash__(self) -> int:
        return hash(
            (
                tuple(node.node_id for node in self.nodes),
                tuple(rel.rel_id for rel in self.relationships),
            )
        )

    def __repr__(self) -> str:
        return f"Path(length={self.length}, nodes={[n.node_id for n in self.nodes]})"
