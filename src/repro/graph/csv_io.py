"""CSV import/export in the style of IYP's public dumps.

The real IYP project publishes its Neo4j database as node and relationship
CSV files (``neo4j-admin`` bulk format).  We support a simplified flavour:

* nodes file — header ``node_id,labels,<json properties>``; labels are
  ``;``-separated.
* relationships file — header ``start_id,type,end_id,<json properties>``.

Property maps are serialised as a single JSON column so arbitrary keys and
list values round-trip losslessly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TextIO

from .store import GraphStore

__all__ = ["export_graph", "import_graph", "export_to_directory", "import_from_directory"]

_NODE_HEADER = ["node_id", "labels", "properties"]
_REL_HEADER = ["start_id", "type", "end_id", "properties"]


def export_graph(store: GraphStore, nodes_file: TextIO, rels_file: TextIO) -> None:
    """Write ``store`` to the two open text files as CSV."""
    node_writer = csv.writer(nodes_file)
    node_writer.writerow(_NODE_HEADER)
    for node in store.all_nodes():
        node_writer.writerow(
            [
                node.node_id,
                ";".join(sorted(node.labels)),
                json.dumps(node.properties, sort_keys=True),
            ]
        )
    rel_writer = csv.writer(rels_file)
    rel_writer.writerow(_REL_HEADER)
    for rel in store.all_relationships():
        rel_writer.writerow(
            [
                rel.start_id,
                rel.rel_type,
                rel.end_id,
                json.dumps(rel.properties, sort_keys=True),
            ]
        )


def import_graph(nodes_file: TextIO, rels_file: TextIO) -> GraphStore:
    """Read a CSV dump back into a fresh :class:`GraphStore`.

    Node ids are remapped to fresh store ids; relationships follow the map.
    """
    store = GraphStore()
    id_map: dict[int, int] = {}
    node_reader = csv.reader(nodes_file)
    header = next(node_reader, None)
    if header != _NODE_HEADER:
        raise ValueError(f"unexpected nodes header: {header!r}")
    for row in node_reader:
        if not row:
            continue
        original_id, labels_field, properties_field = row
        node = store.create_node(
            labels_field.split(";"), json.loads(properties_field)
        )
        id_map[int(original_id)] = node.node_id

    rel_reader = csv.reader(rels_file)
    header = next(rel_reader, None)
    if header != _REL_HEADER:
        raise ValueError(f"unexpected relationships header: {header!r}")
    for row in rel_reader:
        if not row:
            continue
        start_field, rel_type, end_field, properties_field = row
        store.create_relationship(
            id_map[int(start_field)],
            rel_type,
            id_map[int(end_field)],
            json.loads(properties_field),
        )
    return store


def export_to_directory(store: GraphStore, directory: str | Path) -> tuple[Path, Path]:
    """Export ``store`` as ``nodes.csv`` / ``relationships.csv`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    nodes_path = directory / "nodes.csv"
    rels_path = directory / "relationships.csv"
    with open(nodes_path, "w", newline="") as nodes_file:
        with open(rels_path, "w", newline="") as rels_file:
            export_graph(store, nodes_file, rels_file)
    return nodes_path, rels_path


def import_from_directory(directory: str | Path) -> GraphStore:
    """Import a dump previously written by :func:`export_to_directory`."""
    directory = Path(directory)
    with open(directory / "nodes.csv", newline="") as nodes_file:
        with open(directory / "relationships.csv", newline="") as rels_file:
            return import_graph(nodes_file, rels_file)
