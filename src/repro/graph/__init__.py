"""In-memory property graph store (the repo's Neo4j substitute)."""

from .csr import CSRAdjacency, CSRSnapshot, StaleSnapshotError, adjacency_key
from .model import Node, Path, Relationship
from .schema import GraphSchema, SchemaRelationship, introspect_schema
from .store import EntityNotFound, GraphError, GraphStatistics, GraphStore

__all__ = [
    "Node",
    "Relationship",
    "Path",
    "GraphStatistics",
    "GraphStore",
    "GraphError",
    "EntityNotFound",
    "GraphSchema",
    "SchemaRelationship",
    "introspect_schema",
    "CSRSnapshot",
    "CSRAdjacency",
    "StaleSnapshotError",
    "adjacency_key",
]
