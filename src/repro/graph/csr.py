"""Immutable CSR snapshot of a :class:`GraphStore` plus traversal kernels.

The mutable store keeps adjacency as dict-of-set indexes — ideal for
writes, but every traversal pays per-edge set unions, sorts and object
hops.  :class:`CSRSnapshot` compiles the graph into compressed-sparse-row
form: per-(direction, rel-types) ``indptr``/``neighbor``/``rel_id`` numpy
arrays over dense node ordinals, an id↔ordinal map, interned label
bitsets, and columnar property arrays for indexed keys.  On top of the
arrays sit vectorized kernels (``expand_batch``, ``expand_unique``,
``bfs_levels``, ``degrees``) and plain-list row views the Cypher
operators' scalar hot loops walk without materialising
:class:`~repro.graph.model.Relationship` objects.

Determinism contract: every adjacency row is sorted by ascending rel id —
exactly the order ``GraphStore.adjacent_relationships`` yields — so CSR
and dict traversal enumerate identical step sequences and downstream
DISTINCT/ORDER BY semantics are bit-identical.  For ``"both"`` the row is
the sorted union of the out and in sides, so a self-loop appears once,
again matching the dict path.

A snapshot is valid for exactly one ``stats_version``; the store drops it
on any mutation (same contract as its ``_adjacency_cache``).  Per-key
arrays build lazily on first use and raise :class:`StaleSnapshotError`
if the store has moved on underneath — callers fall back to the dict
path instead of reading torn state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from .model import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .store import GraphStore

__all__ = ["CSRSnapshot", "CSRAdjacency", "StaleSnapshotError", "adjacency_key"]

#: (direction, rel-types tuple or None) — one set of CSR arrays per key.
AdjKey = tuple[str, Optional[tuple[str, ...]]]

_DIRECTIONS = ("out", "in", "both")


class StaleSnapshotError(RuntimeError):
    """The store mutated after this snapshot was taken; rebuild required."""


def adjacency_key(direction: str, rel_types: Iterable[str] | None = None) -> AdjKey:
    """Normalise a (direction, rel-types) pair into a snapshot array key."""
    if direction not in _DIRECTIONS:
        raise ValueError(f"invalid direction {direction!r}")
    if rel_types is not None and not isinstance(rel_types, tuple):
        rel_types = tuple(rel_types)
    return (direction, rel_types or None)


class CSRAdjacency:
    """One (direction, rel-types) adjacency in CSR form.

    ``indptr[o]:indptr[o+1]`` delimits the row of node ordinal ``o`` in
    the flat ``neighbors`` (target ordinals) and ``rel_ids`` arrays, both
    sorted by rel id within each row.  ``neighbor_rows``/``rel_rows`` are
    per-row plain-list views of the same data — Python ``list`` indexing
    beats numpy scalar indexing in the executor's per-step loops.
    """

    __slots__ = ("indptr", "neighbors", "rel_ids", "neighbor_rows", "rel_rows")

    def __init__(
        self,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        rel_ids: np.ndarray,
        neighbor_rows: list[list[int]],
        rel_rows: list[list[int]],
    ) -> None:
        self.indptr = indptr
        self.neighbors = neighbors
        self.rel_ids = rel_ids
        self.neighbor_rows = neighbor_rows
        self.rel_rows = rel_rows


class CSRSnapshot:
    """Read-optimised columnar view of one :class:`GraphStore` version."""

    __slots__ = (
        "version",
        "node_ids",
        "ordinal_of",
        "nodes",
        "_store",
        "_label_bits",
        "_label_rows",
        "_adj",
        "_prop_columns",
    )

    def __init__(self, store: "GraphStore") -> None:
        self._store = store
        self.version = store.stats_version
        ids = sorted(store._nodes)
        #: dense ordinal -> node id (ascending, so ordinal order == id order)
        self.node_ids = np.asarray(ids, dtype=np.int64)
        #: node id -> dense ordinal
        self.ordinal_of: dict[int, int] = {nid: o for o, nid in enumerate(ids)}
        #: dense ordinal -> Node object (shared with the store, not copied)
        self.nodes: list[Node] = [store._nodes[nid] for nid in ids]
        # Interned label bitsets: one boolean array per label over ordinals.
        self._label_bits: dict[str, np.ndarray] = {}
        for label, members in store._label_index.items():
            if not members:
                continue
            bits = np.zeros(len(ids), dtype=bool)
            ordinal_of = self.ordinal_of
            for nid in members:
                bits[ordinal_of[nid]] = True
            self._label_bits[label] = bits
        # Combined per-labels-tuple list views for scalar loops (lazy).
        self._label_rows: dict[tuple[str, ...], Optional[list[bool]]] = {}
        self._adj: dict[AdjKey, CSRAdjacency] = {}
        self._prop_columns: dict[str, list] = {}

    # -- build -----------------------------------------------------------

    def _check_fresh(self) -> None:
        if self._store.stats_version != self.version:
            raise StaleSnapshotError(
                f"snapshot v{self.version} behind store v{self._store.stats_version}"
            )

    def adjacency(
        self, direction: str, rel_types: Iterable[str] | None = None
    ) -> CSRAdjacency:
        """The CSR arrays for ``(direction, rel_types)`` (built lazily)."""
        key = adjacency_key(direction, rel_types)
        adj = self._adj.get(key)
        if adj is None:
            adj = self._build_adjacency(key)
            self._adj[key] = adj
        return adj

    def _build_adjacency(self, key: AdjKey) -> CSRAdjacency:
        self._check_fresh()
        store = self._store
        direction, rel_types = key
        relationships = store._relationships
        ordinal_of = self.ordinal_of
        n = len(self.nodes)
        counts = np.empty(n + 1, dtype=np.int64)
        counts[0] = 0
        rel_rows: list[list[int]] = []
        neighbor_rows: list[list[int]] = []
        for ordinal in range(n):
            node_id = int(self.node_ids[ordinal])
            rel_ids = sorted(store._adjacent_ids(node_id, direction, rel_types))
            row_neighbors = []
            for rid in rel_ids:
                rel = relationships[rid]
                other = rel.end_id if rel.start_id == node_id else rel.start_id
                row_neighbors.append(ordinal_of[other])
            rel_rows.append(rel_ids)
            neighbor_rows.append(row_neighbors)
            counts[ordinal + 1] = len(rel_ids)
        indptr = np.cumsum(counts)
        total = int(indptr[-1])
        neighbors = np.fromiter(
            (o for row in neighbor_rows for o in row), dtype=np.int64, count=total
        )
        rel_ids_arr = np.fromiter(
            (r for row in rel_rows for r in row), dtype=np.int64, count=total
        )
        return CSRAdjacency(indptr, neighbors, rel_ids_arr, neighbor_rows, rel_rows)

    def lists(
        self, direction: str, rel_types: Iterable[str] | None = None
    ) -> tuple[list[list[int]], list[list[int]]]:
        """Per-ordinal ``(neighbor_rows, rel_rows)`` plain-list views."""
        adj = self.adjacency(direction, rel_types)
        return adj.neighbor_rows, adj.rel_rows

    # -- labels ----------------------------------------------------------

    def label_bitset(self, label: str) -> np.ndarray:
        """Boolean membership array for ``label`` over node ordinals."""
        bits = self._label_bits.get(label)
        if bits is None:
            bits = np.zeros(len(self.nodes), dtype=bool)
        return bits

    def label_row(self, labels: Iterable[str]) -> Optional[list[bool]]:
        """Combined membership list for all of ``labels`` (None = no labels).

        Cached per labels tuple; returned as a plain list because the
        executor's scalar loops index it per candidate.
        """
        key = tuple(labels)
        if not key:
            return None
        row = self._label_rows.get(key)
        if row is None and key not in self._label_rows:
            bits = self.label_bitset(key[0])
            for label in key[1:]:
                bits = bits & self.label_bitset(label)
            row = bits.tolist()
            self._label_rows[key] = row
        return row

    # -- columnar properties --------------------------------------------

    def indexed_keys(self) -> frozenset[str]:
        """Property keys covered by at least one (label, key) index."""
        return frozenset(key for _, key in self._store._property_index)

    def prop_column(self, key: str) -> list:
        """Column of ``key`` values over node ordinals (missing = None).

        Only indexed keys are materialised — the snapshot mirrors the
        store's index catalog rather than copying every property.
        """
        column = self._prop_columns.get(key)
        if column is None:
            if key not in self.indexed_keys():
                raise KeyError(f"property {key!r} has no index; no column built")
            self._check_fresh()
            column = [node.properties.get(key) for node in self.nodes]
            self._prop_columns[key] = column
        return column

    # -- kernels ---------------------------------------------------------

    def degrees(
        self, direction: str = "both", rel_types: Iterable[str] | None = None
    ) -> np.ndarray:
        """Per-ordinal degree straight off ``indptr`` (no set walks)."""
        adj = self.adjacency(direction, rel_types)
        return np.diff(adj.indptr)

    def degree_of(
        self,
        node_id: int,
        direction: str = "both",
        rel_types: Iterable[str] | None = None,
    ) -> Optional[int]:
        """Degree of ``node_id`` from ``indptr`` (None when id unknown)."""
        ordinal = self.ordinal_of.get(node_id)
        if ordinal is None:
            return None
        indptr = self.adjacency(direction, rel_types).indptr
        return int(indptr[ordinal + 1] - indptr[ordinal])

    def expand_batch(
        self,
        frontier: np.ndarray,
        direction: str,
        rel_types: Iterable[str] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand a whole frontier of ordinals in one gather.

        Returns ``(source_index, neighbor_ordinals, rel_ids)`` arrays where
        ``source_index[i]`` points back into ``frontier``; within each
        source the edges keep ascending rel-id order, so flattening the
        result reproduces the scalar per-row enumeration exactly.
        """
        adj = self.adjacency(direction, rel_types)
        frontier = np.asarray(frontier, dtype=np.int64)
        starts = adj.indptr[frontier]
        counts = adj.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        source_index = np.repeat(np.arange(frontier.shape[0]), counts)
        # Position of each output edge in the flat arrays: the row start,
        # repeated per edge, plus the edge's offset within its row.
        row_first = np.repeat(np.cumsum(counts) - counts, counts)
        positions = np.repeat(starts, counts) + (
            np.arange(total, dtype=np.int64) - row_first
        )
        return source_index, adj.neighbors[positions], adj.rel_ids[positions]

    def expand_unique(
        self,
        frontier: np.ndarray,
        direction: str,
        rel_types: Iterable[str] | None = None,
    ) -> np.ndarray:
        """Distinct neighbor ordinals of a frontier (sorted ascending)."""
        _, neighbors, _ = self.expand_batch(frontier, direction, rel_types)
        if neighbors.size == 0:
            return neighbors
        return np.unique(neighbors)

    def bfs_levels(
        self,
        start_ordinal: int,
        direction: str,
        rel_types: Iterable[str] | None = None,
        max_depth: Optional[int] = None,
    ) -> np.ndarray:
        """Frontier-based BFS depth per ordinal (-1 = unreached).

        Edge-uniqueness never changes minimum depths (a walk repeating an
        edge always has a shorter edge-distinct prefix), so these levels
        are exact for ``shortestPath`` reachability and hop-range prechecks.
        """
        depth = np.full(len(self.nodes), -1, dtype=np.int64)
        depth[start_ordinal] = 0
        frontier = np.asarray([start_ordinal], dtype=np.int64)
        level = 0
        while frontier.size and (max_depth is None or level < max_depth):
            level += 1
            candidates = self.expand_unique(frontier, direction, rel_types)
            if candidates.size == 0:
                break
            fresh = candidates[depth[candidates] < 0]
            if fresh.size == 0:
                break
            depth[fresh] = level
            frontier = fresh
        return depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRSnapshot(version={self.version}, nodes={len(self.nodes)},"
            f" keys={len(self._adj)})"
        )
