"""In-memory property graph store — the repo's Neo4j substitute.

``GraphStore`` owns all nodes and relationships, maintains label and
adjacency indexes, and offers the low-level scan/expand primitives the
Cypher executor is built on.  It is deliberately single-threaded and
in-memory: IYP-scale synthetic graphs (tens of thousands of nodes) fit
comfortably, and determinism matters more than concurrency for
reproduction.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional

from ..faults import fault_point
from .csr import CSRSnapshot
from .model import Node, Relationship, validate_properties

__all__ = ["GraphStore", "GraphStatistics", "GraphError", "EntityNotFound"]

# Mirrors repro.cypher.values._TYPE_RANK for the orderable scalar types a
# sorted index can serve.  Kept local so the graph layer stays independent
# of the Cypher value module (which imports graph.model).
_ORDER_RANK: dict[type, int] = {int: 0, float: 0, str: 1, bool: 2}

#: Sorts after any node id within the same key (bisect upper-bound sentinel).
_ID_INF = float("inf")


def _order_key(value: Any) -> Optional[tuple]:
    """Total-order key for an indexable property value, or None if unorderable.

    Numbers, strings and booleans get the same relative order Cypher's
    ORDER BY gives them (rank bands, numeric coercion); lists of orderable
    scalars order element-wise.  Anything else (maps, mixed nesting) is
    unindexable and the owning node is left out of the sorted index —
    range scans never need it because comparing such values yields null.
    """
    if isinstance(value, bool):
        return (_ORDER_RANK[bool], value)
    if isinstance(value, (int, float)):
        return (_ORDER_RANK[int], float(value))
    if isinstance(value, str):
        return (_ORDER_RANK[str], value)
    if isinstance(value, list):
        keys = []
        for item in value:
            item_key = _order_key(item)
            if item_key is None:
                return None
            keys.append(item_key)
        return (3, tuple(keys))
    return None


class _SortedIndex:
    """Sorted ``(order_key, node_id)`` pairs for one ``(label, key)``.

    Built lazily from the live label index; ``ids`` tracks which nodes the
    pairs cover so ordered scans can enumerate the *leftovers* (nodes of
    the label whose property is missing or unorderable — the rows ORDER BY
    puts in the null band).
    """

    __slots__ = ("pairs", "ids")

    def __init__(self, pairs: list[tuple[tuple, int]], ids: set[int]) -> None:
        self.pairs = pairs
        self.ids = ids

    def range_ids(
        self,
        lower: Any = None,
        upper: Any = None,
        include_lower: bool = True,
        include_upper: bool = True,
    ) -> Iterator[int]:
        """Node ids with ``lower OP value OP upper``, in (value, id) order.

        Bounds restrict the scan to the bound's type band (rank), exactly
        the set of values Cypher can compare non-null against the bound.
        """
        pairs = self.pairs
        if lower is None and upper is None:
            # Unbounded: every orderable value qualifies.
            yield from self.ordered_ids()
            return
        bound = lower if lower is not None else upper
        bound_key = _order_key(bound)
        if bound_key is None:
            return
        rank = bound_key[0]
        if lower is not None and upper is not None:
            upper_key = _order_key(upper)
            if upper_key is None or upper_key[0] != rank:
                return
        lo = bisect_left(pairs, ((rank,),))
        hi = bisect_left(pairs, ((rank + 1,),))
        if lower is not None:
            lower_key = _order_key(lower)
            probe = (lower_key,) if include_lower else (lower_key, _ID_INF)
            lo = max(lo, bisect_left(pairs, probe, lo, hi))
        if upper is not None:
            upper_key = _order_key(upper)
            probe = (upper_key, _ID_INF) if include_upper else (upper_key,)
            hi = min(hi, bisect_left(pairs, probe, lo, hi))
        for index in range(lo, hi):
            yield pairs[index][1]

    def prefix_ids(self, prefix: str) -> Iterator[int]:
        """Node ids whose string value starts with ``prefix``, value order.

        Strings sharing a prefix are contiguous in the sorted band, so the
        scan starts at the prefix and stops at the first non-match.
        """
        pairs = self.pairs
        rank = _ORDER_RANK[str]
        start = bisect_left(pairs, ((rank, prefix),))
        for index in range(start, len(pairs)):
            key, node_id = pairs[index]
            if key[0] != rank or not key[1].startswith(prefix):
                break
            yield node_id

    def ordered_ids(self, descending: bool = False) -> Iterator[int]:
        """Every indexed node id in (value, id) order (reversed for DESC)."""
        source = reversed(self.pairs) if descending else self.pairs
        for _, node_id in source:
            yield node_id


class GraphError(Exception):
    """Base error for graph-store failures."""


class EntityNotFound(GraphError, KeyError):
    """A node or relationship id does not exist in the store."""


@dataclass(frozen=True)
class GraphStatistics:
    """Snapshot of store-level statistics for query planning.

    ``version`` increments on every mutation, so planners can cache plans
    keyed on it and replan only when the graph actually changed.
    ``index_selectivity`` maps an indexed ``(label, key)`` pair to the
    average number of nodes per distinct value — the expected row count of
    an exact-match index lookup.
    """

    version: int
    node_count: int
    relationship_count: int
    label_counts: Mapping[str, int] = field(default_factory=dict)
    rel_type_counts: Mapping[str, int] = field(default_factory=dict)
    indexes: frozenset[tuple[str, str]] = frozenset()
    sorted_indexes: frozenset[tuple[str, str]] = frozenset()
    index_selectivity: Mapping[tuple[str, str], float] = field(default_factory=dict)
    # (rel_type, "out"|"in", label) -> edges of that type whose start ("out")
    # or end ("in") node carries the label.  Lets the planner see that e.g.
    # COUNTRY edges arrive at Country nodes from many source labels, so
    # expanding from the Country side enumerates far more edges.
    rel_endpoint_counts: Mapping[tuple[str, str, str], int] = field(
        default_factory=dict
    )

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label`` (0 when unknown)."""
        return self.label_counts.get(label, 0)

    def rel_type_count(self, rel_type: str) -> int:
        """Number of relationships of ``rel_type`` (0 when unknown)."""
        return self.rel_type_counts.get(rel_type, 0)

    def has_index(self, label: str, key: str) -> bool:
        """True when an exact-match property index exists for ``(label, key)``."""
        return (label, key) in self.indexes

    def has_sorted_index(self, label: str, key: str) -> bool:
        """True when an ordered (range-capable) index exists for ``(label, key)``."""
        return (label, key) in self.sorted_indexes

    def lookup_estimate(self, label: str, key: str) -> float:
        """Expected rows from an index lookup on ``(label, key)``."""
        return self.index_selectivity.get((label, key), 1.0)

    def endpoint_count(self, rel_type: str, direction: str, label: str | None) -> int:
        """Edges of ``rel_type`` whose ``direction``-side endpoint has ``label``.

        ``direction="out"`` counts by start-node label, ``"in"`` by end-node
        label; ``label=None`` returns the total for the type.
        """
        if label is None:
            return self.rel_type_count(rel_type)
        return self.rel_endpoint_counts.get((rel_type, direction, label), 0)


class GraphStore:
    """Mutable in-memory property graph with label and adjacency indexes.

    Example::

        store = GraphStore()
        as_node = store.create_node(["AS"], {"asn": 2497})
        jp = store.create_node(["Country"], {"country_code": "JP"})
        store.create_relationship(as_node.node_id, "COUNTRY", jp.node_id)
    """

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._relationships: dict[int, Relationship] = {}
        self._next_node_id = 0
        self._next_rel_id = 0
        # label -> set of node ids
        self._label_index: dict[str, set[int]] = defaultdict(set)
        # node id -> rel ids (by direction)
        self._outgoing: dict[int, set[int]] = defaultdict(set)
        self._incoming: dict[int, set[int]] = defaultdict(set)
        # node id -> rel type -> rel ids (typed adjacency, both directions),
        # so type-restricted expansion never filters in Python per edge
        self._outgoing_typed: dict[int, dict[str, set[int]]] = {}
        self._incoming_typed: dict[int, dict[str, set[int]]] = {}
        # rel type -> live relationship count (for planner statistics)
        self._rel_type_counts: Counter[str] = Counter()
        # (rel type, "out"|"in", endpoint label) -> live edge count
        self._rel_endpoint_counts: Counter[tuple[str, str, str]] = Counter()
        # (label, property key, value) exact-match index, built lazily
        self._property_index: dict[tuple[str, str], dict[Any, set[int]]] = {}
        # (label, property key) -> lazily built sorted index (None = stale).
        # Invalidated per affected pair by the node mutation paths, so
        # relationship churn never forces a rebuild.
        self._sorted_index: dict[tuple[str, str], Optional[_SortedIndex]] = {}
        # bumped on every mutation; statistics()/plan caches key on it
        self._stats_version = 0
        self._stats_cache: GraphStatistics | None = None
        # (node id, direction, rel types) -> sorted relationship tuple,
        # memoising the union+sort of adjacency sets; cleared on mutation
        self._adjacency_cache: dict[
            tuple[int, str, tuple[str, ...] | None], tuple[Relationship, ...]
        ] = {}
        # label -> id-ordered node-id tuple, memoising the per-scan sort of
        # the label index; cleared on mutation.  The streaming executor
        # opens a fresh label scan per anchor row, so this sort is per-row
        # work without the cache.
        self._label_scan_cache: dict[str, tuple[int, ...]] = {}
        # Read-optimised CSR snapshot (see repro.graph.csr), valid for one
        # stats version; dropped on mutation like the adjacency cache.  A
        # failed build is remembered per version so a broken snapshot can't
        # retry on every query.
        self._csr: Optional["CSRSnapshot"] = None
        self._csr_failed_version: Optional[int] = None
        self._csr_counters = {
            "csr.builds": 0,
            "csr.build_failures": 0,
            "csr.hits": 0,
            "csr.invalidations": 0,
        }

    # ------------------------------------------------------------------
    # Creation / mutation
    # ------------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str],
        properties: Mapping[str, Any] | None = None,
    ) -> Node:
        """Create and index a node; returns the new :class:`Node`."""
        labels = tuple(labels)
        if not labels:
            raise GraphError("a node needs at least one label")
        node = Node(self._next_node_id, labels, properties)
        self._next_node_id += 1
        self._nodes[node.node_id] = node
        for label in node.labels:
            self._label_index[label].add(node.node_id)
            for key in node.properties:
                index = self._property_index.get((label, key))
                if index is not None:
                    index[self._index_key(node.properties[key])].add(node.node_id)
                self._invalidate_sorted(label, key)
        self._touch()
        return node

    def create_relationship(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None = None,
    ) -> Relationship:
        """Create a directed relationship ``start -[type]-> end``."""
        if start_id not in self._nodes:
            raise EntityNotFound(f"start node {start_id} does not exist")
        if end_id not in self._nodes:
            raise EntityNotFound(f"end node {end_id} does not exist")
        rel = Relationship(self._next_rel_id, rel_type, start_id, end_id, properties)
        self._next_rel_id += 1
        self._relationships[rel.rel_id] = rel
        self._outgoing[start_id].add(rel.rel_id)
        self._incoming[end_id].add(rel.rel_id)
        self._outgoing_typed.setdefault(start_id, {}).setdefault(rel_type, set()).add(rel.rel_id)
        self._incoming_typed.setdefault(end_id, {}).setdefault(rel_type, set()).add(rel.rel_id)
        self._rel_type_counts[rel_type] += 1
        for label in self._nodes[start_id].labels:
            self._rel_endpoint_counts[(rel_type, "out", label)] += 1
        for label in self._nodes[end_id].labels:
            self._rel_endpoint_counts[(rel_type, "in", label)] += 1
        self._touch()
        return rel

    def set_node_property(self, node_id: int, key: str, value: Any) -> None:
        """Set (or with ``value=None`` remove) a property on a node."""
        node = self.node(node_id)
        old = node.properties.get(key)
        if value is None:
            node.properties.pop(key, None)
        else:
            node.properties.update(validate_properties({key: value}))
        for label in node.labels:
            self._invalidate_sorted(label, key)
            index = self._property_index.get((label, key))
            if index is None:
                continue
            if old is not None:
                index[self._index_key(old)].discard(node_id)
            if value is not None:
                index[self._index_key(value)].add(node_id)
        self._touch()

    def set_relationship_property(self, rel_id: int, key: str, value: Any) -> None:
        """Set (or with ``value=None`` remove) a property on a relationship."""
        rel = self.relationship(rel_id)
        if value is None:
            rel.properties.pop(key, None)
        else:
            rel.properties.update(validate_properties({key: value}))

    def delete_relationship(self, rel_id: int) -> None:
        """Remove a relationship from the store and its adjacency indexes."""
        rel = self._relationships.pop(rel_id, None)
        if rel is None:
            raise EntityNotFound(f"relationship {rel_id} does not exist")
        self._outgoing[rel.start_id].discard(rel_id)
        self._incoming[rel.end_id].discard(rel_id)
        out_bucket = self._outgoing_typed.get(rel.start_id, {}).get(rel.rel_type)
        if out_bucket is not None:
            out_bucket.discard(rel_id)
        in_bucket = self._incoming_typed.get(rel.end_id, {}).get(rel.rel_type)
        if in_bucket is not None:
            in_bucket.discard(rel_id)
        self._rel_type_counts[rel.rel_type] -= 1
        if self._rel_type_counts[rel.rel_type] <= 0:
            del self._rel_type_counts[rel.rel_type]
        for side, node_id in (("out", rel.start_id), ("in", rel.end_id)):
            node = self._nodes.get(node_id)
            if node is None:
                continue
            for label in node.labels:
                key = (rel.rel_type, side, label)
                self._rel_endpoint_counts[key] -= 1
                if self._rel_endpoint_counts[key] <= 0:
                    del self._rel_endpoint_counts[key]
        self._touch()

    def delete_node(self, node_id: int, detach: bool = False) -> None:
        """Remove a node.

        Args:
            detach: also remove attached relationships (Cypher's
                ``DETACH DELETE``).  Without it, deleting a connected node
                raises :class:`GraphError`.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise EntityNotFound(f"node {node_id} does not exist")
        attached = list(self._outgoing.get(node_id, ())) + list(
            self._incoming.get(node_id, ())
        )
        if attached and not detach:
            raise GraphError(
                f"cannot delete node {node_id}: it still has {len(attached)} relationships"
            )
        for rel_id in attached:
            if rel_id in self._relationships:
                self.delete_relationship(rel_id)
        del self._nodes[node_id]
        for label in node.labels:
            self._label_index[label].discard(node_id)
            for key, value in node.properties.items():
                index = self._property_index.get((label, key))
                if index is not None:
                    index[self._index_key(value)].discard(node_id)
                self._invalidate_sorted(label, key)
        self._outgoing.pop(node_id, None)
        self._incoming.pop(node_id, None)
        self._outgoing_typed.pop(node_id, None)
        self._incoming_typed.pop(node_id, None)
        self._touch()

    def create_property_index(self, label: str, key: str) -> None:
        """Build an exact-match index over ``(label, key)`` for fast lookups."""
        if (label, key) in self._property_index:
            return
        index: dict[Any, set[int]] = defaultdict(set)
        for node_id in self._label_index.get(label, ()):
            node = self._nodes[node_id]
            if key in node.properties:
                index[self._index_key(node.properties[key])].add(node_id)
        self._property_index[(label, key)] = index
        self._touch()

    def has_property_index(self, label: str, key: str) -> bool:
        """True when an exact-match index exists for ``(label, key)``."""
        return (label, key) in self._property_index

    def create_sorted_index(self, label: str, key: str) -> None:
        """Register an ordered index over ``(label, key)``.

        The sorted array itself is built lazily on first range/ordered scan
        and invalidated (not eagerly rebuilt) by node mutations touching the
        pair, so registration and write-heavy phases stay cheap.  Counts as
        a mutation for :attr:`stats_version`, replanning cached queries.
        """
        if (label, key) in self._sorted_index:
            return
        self._sorted_index[(label, key)] = None
        self._touch()

    def has_sorted_index(self, label: str, key: str) -> bool:
        """True when an ordered index is registered for ``(label, key)``."""
        return (label, key) in self._sorted_index

    def _invalidate_sorted(self, label: str, key: str) -> None:
        """Mark the sorted index for ``(label, key)`` stale, if registered."""
        if (label, key) in self._sorted_index:
            self._sorted_index[(label, key)] = None

    def _sorted(self, label: str, key: str) -> Optional[_SortedIndex]:
        """The (lazily re/built) sorted index, or None when not registered.

        Building is a read-side operation: it must not bump
        :attr:`stats_version`, or every rebuild would invalidate plan and
        answer caches and re-stale itself.
        """
        if (label, key) not in self._sorted_index:
            return None
        built = self._sorted_index[(label, key)]
        if built is None:
            pairs: list[tuple[tuple, int]] = []
            ids: set[int] = set()
            for node_id in self._label_index.get(label, ()):
                properties = self._nodes[node_id].properties
                if key not in properties:
                    continue
                order_key = _order_key(properties[key])
                if order_key is None:
                    continue
                pairs.append((order_key, node_id))
                ids.add(node_id)
            pairs.sort()
            built = _SortedIndex(pairs, ids)
            self._sorted_index[(label, key)] = built
        return built

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Return the node with ``node_id`` or raise :class:`EntityNotFound`."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise EntityNotFound(f"node {node_id} does not exist") from None

    def relationship(self, rel_id: int) -> Relationship:
        """Return the relationship with ``rel_id`` or raise :class:`EntityNotFound`."""
        try:
            return self._relationships[rel_id]
        except KeyError:
            raise EntityNotFound(f"relationship {rel_id} does not exist") from None

    def has_node(self, node_id: int) -> bool:
        """Return True if ``node_id`` exists."""
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        """Number of nodes in the store."""
        return len(self._nodes)

    @property
    def relationship_count(self) -> int:
        """Number of relationships in the store."""
        return len(self._relationships)

    def labels(self) -> list[str]:
        """All labels with at least one node, sorted."""
        return sorted(label for label, ids in self._label_index.items() if ids)

    def relationship_types(self) -> list[str]:
        """All relationship types present, sorted."""
        return sorted(self._rel_type_counts)

    @property
    def stats_version(self) -> int:
        """Monotone counter bumped by every mutation (plan-cache key)."""
        return self._stats_version

    def statistics(self) -> GraphStatistics:
        """Current graph statistics (label/type cardinalities, index catalog).

        The snapshot is cached and rebuilt only after a mutation, so the
        query planner can call this on every query for free.
        """
        if self._stats_cache is not None and self._stats_cache.version == self._stats_version:
            return self._stats_cache
        selectivity = {
            (label, key): (len(self._label_index.get(label, ())) / len(index)) if index else 1.0
            for (label, key), index in self._property_index.items()
        }
        self._stats_cache = GraphStatistics(
            version=self._stats_version,
            node_count=len(self._nodes),
            relationship_count=len(self._relationships),
            label_counts={
                label: len(ids) for label, ids in self._label_index.items() if ids
            },
            rel_type_counts=dict(self._rel_type_counts),
            indexes=frozenset(self._property_index),
            sorted_indexes=frozenset(self._sorted_index),
            index_selectivity=selectivity,
            rel_endpoint_counts=dict(self._rel_endpoint_counts),
        )
        return self._stats_cache

    # ------------------------------------------------------------------
    # Scans (the executor's access paths)
    # ------------------------------------------------------------------

    def all_nodes(self) -> Iterator[Node]:
        """Iterate every node in insertion (id) order."""
        for node_id in sorted(self._nodes):
            yield self._nodes[node_id]

    def all_relationships(self) -> Iterator[Relationship]:
        """Iterate every relationship in insertion (id) order."""
        for rel_id in sorted(self._relationships):
            yield self._relationships[rel_id]

    def nodes_by_label(self, label: str) -> Iterator[Node]:
        """Iterate nodes carrying ``label`` in id order (lazily).

        The id-ordered scan list is memoised per label (cleared on any
        mutation), and iteration walks a stable snapshot — a streaming
        consumer abandoning the scan early pays only for the rows pulled.
        """
        ordered = self._label_scan_cache.get(label)
        if ordered is None:
            ordered = tuple(sorted(self._label_index.get(label, ())))
            self._label_scan_cache[label] = ordered
        nodes = self._nodes
        for node_id in ordered:
            yield nodes[node_id]

    def nodes_by_property(self, label: str, key: str, value: Any) -> Iterator[Node]:
        """Iterate nodes with ``label`` whose ``key`` equals ``value``.

        Uses the property index when one exists; otherwise falls back to a
        label scan.
        """
        index = self._property_index.get((label, key))
        if index is not None:
            for node_id in sorted(index.get(self._index_key(value), ())):
                yield self._nodes[node_id]
            return
        for node in self.nodes_by_label(label):
            if node.properties.get(key) == value:
                yield node

    def nodes_in_range(
        self,
        label: str,
        key: str,
        lower: Any = None,
        upper: Any = None,
        include_lower: bool = True,
        include_upper: bool = True,
    ) -> Iterator[Node]:
        """Iterate nodes with ``label`` whose ``key`` lies within the bounds.

        With a sorted index, a bisected slice in (value, id) order touching
        only matching nodes; otherwise a label scan filtered in Python (id
        order).  Matching follows Cypher comparison semantics: only values
        of the bound's type band can match, everything else compares null.
        """
        index = self._sorted(label, key)
        if index is not None:
            for node_id in index.range_ids(lower, upper, include_lower, include_upper):
                yield self._nodes[node_id]
            return
        lower_key = _order_key(lower) if lower is not None else None
        upper_key = _order_key(upper) if upper is not None else None
        for node in self.nodes_by_label(label):
            if key not in node.properties:
                continue
            value_key = _order_key(node.properties[key])
            if value_key is None:
                continue
            if lower_key is not None:
                if value_key[0] != lower_key[0]:
                    continue
                if value_key < lower_key or (value_key == lower_key and not include_lower):
                    continue
            if upper_key is not None:
                if value_key[0] != upper_key[0]:
                    continue
                if value_key > upper_key or (value_key == upper_key and not include_upper):
                    continue
            yield node

    def nodes_by_prefix(self, label: str, key: str, prefix: str) -> Iterator[Node]:
        """Iterate nodes with ``label`` whose string ``key`` starts with ``prefix``.

        Served by a bisected run of the sorted index when one exists (value
        order), else a filtered label scan (id order).
        """
        index = self._sorted(label, key)
        if index is not None:
            for node_id in index.prefix_ids(prefix):
                yield self._nodes[node_id]
            return
        for node in self.nodes_by_label(label):
            value = node.properties.get(key)
            if isinstance(value, str) and value.startswith(prefix):
                yield node

    def nodes_in_order(
        self, label: str, key: str, descending: bool = False
    ) -> Optional[Iterator[Node]]:
        """Iterate **all** nodes of ``label`` ordered by ``key`` (nulls last ASC).

        Requires a sorted index on ``(label, key)``; returns None without
        one.  Nodes whose ``key`` is missing or unorderable come after the
        indexed run ascending and before it descending — the same band
        placement Cypher's ORDER BY gives null keys, so an ordered LIMIT
        scan can stream this directly.
        """
        index = self._sorted(label, key)
        if index is None:
            return None
        leftovers = sorted(self._label_index.get(label, set()) - index.ids)

        def stream() -> Iterator[Node]:
            if descending:
                for node_id in leftovers:
                    yield self._nodes[node_id]
            for node_id in index.ordered_ids(descending):
                yield self._nodes[node_id]
            if not descending:
                for node_id in leftovers:
                    yield self._nodes[node_id]

        return stream()

    def relationships_of(
        self,
        node_id: int,
        direction: str = "both",
        rel_types: Iterable[str] | None = None,
    ) -> Iterator[Relationship]:
        """Iterate relationships attached to ``node_id``.

        Args:
            direction: ``"out"``, ``"in"`` or ``"both"`` (from the node's
                point of view).
            rel_types: restrict to these relationship types (any if None).
        """
        yield from self.adjacent_relationships(node_id, direction, rel_types)

    def adjacent_relationships(
        self,
        node_id: int,
        direction: str = "both",
        rel_types: Iterable[str] | None = None,
    ) -> tuple[Relationship, ...]:
        """Like :meth:`relationships_of` but returns a cached sorted tuple.

        The executor's expansion hot path calls this once per visited node
        per hop; memoising the union+sort makes repeated traversals (and
        BFS re-visits) allocation-free.  The cache is dropped on any
        mutation.
        """
        if direction not in ("out", "in", "both"):
            raise ValueError(f"invalid direction {direction!r}")
        if rel_types is not None and not isinstance(rel_types, tuple):
            rel_types = tuple(rel_types)
        key = (node_id, direction, rel_types)
        cached = self._adjacency_cache.get(key)
        if cached is None:
            cached = tuple(
                self._relationships[rel_id]
                for rel_id in sorted(self._adjacent_ids(node_id, direction, rel_types))
            )
            self._adjacency_cache[key] = cached
        return cached

    def _adjacent_ids(
        self,
        node_id: int,
        direction: str,
        rel_types: Iterable[str] | None,
    ) -> set[int]:
        """Rel ids attached to ``node_id``, using typed buckets when possible."""
        if rel_types is None:
            rel_ids: set[int] = set()
            if direction in ("out", "both"):
                rel_ids |= self._outgoing.get(node_id, set())
            if direction in ("in", "both"):
                rel_ids |= self._incoming.get(node_id, set())
            return rel_ids
        rel_ids = set()
        if direction in ("out", "both"):
            buckets = self._outgoing_typed.get(node_id)
            if buckets:
                for rel_type in rel_types:
                    rel_ids |= buckets.get(rel_type, set())
        if direction in ("in", "both"):
            buckets = self._incoming_typed.get(node_id)
            if buckets:
                for rel_type in rel_types:
                    rel_ids |= buckets.get(rel_type, set())
        return rel_ids

    def degree(
        self,
        node_id: int,
        direction: str = "both",
        rel_types: Iterable[str] | None = None,
    ) -> int:
        """Number of attached relationships.

        With a live CSR snapshot the count is an ``indptr`` difference —
        O(1), no adjacency-dict walks.  Otherwise it is counted from the
        (typed) adjacency indexes without materialising or sorting
        relationship objects; directed counts are simple length sums,
        ``"both"`` unions the two sides so self-loops count once.
        """
        if direction not in ("out", "in", "both"):
            raise ValueError(f"invalid direction {direction!r}")
        snapshot = self._csr
        if snapshot is not None and snapshot.version == self._stats_version:
            memoised = snapshot.degree_of(node_id, direction, rel_types)
            if memoised is not None:
                return memoised
        if direction == "both":
            return len(self._adjacent_ids(node_id, "both", rel_types))
        if rel_types is None:
            side = self._outgoing if direction == "out" else self._incoming
            return len(side.get(node_id, ()))
        buckets = (
            self._outgoing_typed.get(node_id)
            if direction == "out"
            else self._incoming_typed.get(node_id)
        )
        if not buckets:
            return 0
        return sum(len(buckets.get(rel_type, ())) for rel_type in set(rel_types))

    # ------------------------------------------------------------------
    # CSR snapshot (read-optimised columnar view)
    # ------------------------------------------------------------------

    def csr_snapshot(self) -> Optional[CSRSnapshot]:
        """The CSR snapshot for the current graph version (built lazily).

        Returns None — degrading callers to the dict-adjacency path — when
        the build fails (including injected ``graph.csr.build`` faults) or
        the graph mutated mid-build; the failure is remembered per version
        so a broken build never retries on every query.
        """
        snapshot = self._csr
        version = self._stats_version
        if snapshot is not None and snapshot.version == version:
            self._csr_counters["csr.hits"] += 1
            return snapshot
        if self._csr_failed_version == version:
            return None
        try:
            # Fault-injection site: build failures must degrade, not error.
            fault_point("graph.csr.build")
            snapshot = CSRSnapshot(self)
        except Exception:
            self._csr_failed_version = version
            self._csr_counters["csr.build_failures"] += 1
            return None
        if self._stats_version != version:  # mutated underneath the build
            self._csr_counters["csr.build_failures"] += 1
            return None
        self._csr = snapshot
        self._csr_counters["csr.builds"] += 1
        return snapshot

    def csr_metrics(self) -> dict[str, int]:
        """Snapshot build/hit/invalidation counters (``csr.*`` keys)."""
        return dict(self._csr_counters)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, node_ids: Iterable[int]) -> "GraphStore":
        """Extract the induced subgraph over ``node_ids`` into a new store.

        Node and relationship ids are remapped; relationships survive only
        when both endpoints are kept.  Useful for exporting a neighbourhood
        (e.g. one AS and everything one hop around it) for inspection.
        """
        wanted = set(node_ids)
        extracted = GraphStore()
        id_map: dict[int, int] = {}
        for node_id in sorted(wanted):
            node = self.node(node_id)
            copy = extracted.create_node(node.labels, dict(node.properties))
            id_map[node_id] = copy.node_id
        for rel in self.all_relationships():
            if rel.start_id in wanted and rel.end_id in wanted:
                extracted.create_relationship(
                    id_map[rel.start_id], rel.rel_type, id_map[rel.end_id],
                    dict(rel.properties),
                )
        return extracted

    def neighbourhood(self, node_id: int, hops: int = 1) -> set[int]:
        """Node ids within ``hops`` relationships of ``node_id`` (inclusive)."""
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        frontier = {node_id}
        seen = {node_id}
        for _ in range(hops):
            next_frontier: set[int] = set()
            for current in frontier:
                for rel in self.relationships_of(current):
                    other = rel.other_end(current)
                    if other not in seen:
                        seen.add(other)
                        next_frontier.add(other)
            frontier = next_frontier
        return seen

    # ------------------------------------------------------------------

    def _touch(self) -> None:
        """Record a mutation (invalidates statistics, plan and scan caches)."""
        self._stats_version += 1
        if self._adjacency_cache:
            self._adjacency_cache.clear()
        if self._label_scan_cache:
            self._label_scan_cache.clear()
        if self._csr is not None:
            self._csr = None
            self._csr_counters["csr.invalidations"] += 1

    @staticmethod
    def _index_key(value: Any) -> Any:
        """Normalise a value for exact-match indexing (lists become tuples)."""
        if isinstance(value, list):
            return tuple(GraphStore._index_key(item) for item in value)
        return value

    def __repr__(self) -> str:
        return (
            f"GraphStore(nodes={self.node_count},"
            f" relationships={self.relationship_count},"
            f" labels={len(self.labels())})"
        )
