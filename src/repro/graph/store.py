"""In-memory property graph store — the repo's Neo4j substitute.

``GraphStore`` owns all nodes and relationships, maintains label and
adjacency indexes, and offers the low-level scan/expand primitives the
Cypher executor is built on.  It is deliberately single-threaded and
in-memory: IYP-scale synthetic graphs (tens of thousands of nodes) fit
comfortably, and determinism matters more than concurrency for
reproduction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Iterator, Mapping

from .model import Node, Relationship, validate_properties

__all__ = ["GraphStore", "GraphError", "EntityNotFound"]


class GraphError(Exception):
    """Base error for graph-store failures."""


class EntityNotFound(GraphError, KeyError):
    """A node or relationship id does not exist in the store."""


class GraphStore:
    """Mutable in-memory property graph with label and adjacency indexes.

    Example::

        store = GraphStore()
        as_node = store.create_node(["AS"], {"asn": 2497})
        jp = store.create_node(["Country"], {"country_code": "JP"})
        store.create_relationship(as_node.node_id, "COUNTRY", jp.node_id)
    """

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._relationships: dict[int, Relationship] = {}
        self._next_node_id = 0
        self._next_rel_id = 0
        # label -> set of node ids
        self._label_index: dict[str, set[int]] = defaultdict(set)
        # node id -> rel ids (by direction)
        self._outgoing: dict[int, set[int]] = defaultdict(set)
        self._incoming: dict[int, set[int]] = defaultdict(set)
        # (label, property key, value) exact-match index, built lazily
        self._property_index: dict[tuple[str, str], dict[Any, set[int]]] = {}

    # ------------------------------------------------------------------
    # Creation / mutation
    # ------------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str],
        properties: Mapping[str, Any] | None = None,
    ) -> Node:
        """Create and index a node; returns the new :class:`Node`."""
        labels = tuple(labels)
        if not labels:
            raise GraphError("a node needs at least one label")
        node = Node(self._next_node_id, labels, properties)
        self._next_node_id += 1
        self._nodes[node.node_id] = node
        for label in node.labels:
            self._label_index[label].add(node.node_id)
            for key in node.properties:
                index = self._property_index.get((label, key))
                if index is not None:
                    index[self._index_key(node.properties[key])].add(node.node_id)
        return node

    def create_relationship(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None = None,
    ) -> Relationship:
        """Create a directed relationship ``start -[type]-> end``."""
        if start_id not in self._nodes:
            raise EntityNotFound(f"start node {start_id} does not exist")
        if end_id not in self._nodes:
            raise EntityNotFound(f"end node {end_id} does not exist")
        rel = Relationship(self._next_rel_id, rel_type, start_id, end_id, properties)
        self._next_rel_id += 1
        self._relationships[rel.rel_id] = rel
        self._outgoing[start_id].add(rel.rel_id)
        self._incoming[end_id].add(rel.rel_id)
        return rel

    def set_node_property(self, node_id: int, key: str, value: Any) -> None:
        """Set (or with ``value=None`` remove) a property on a node."""
        node = self.node(node_id)
        old = node.properties.get(key)
        if value is None:
            node.properties.pop(key, None)
        else:
            node.properties.update(validate_properties({key: value}))
        for label in node.labels:
            index = self._property_index.get((label, key))
            if index is None:
                continue
            if old is not None:
                index[self._index_key(old)].discard(node_id)
            if value is not None:
                index[self._index_key(value)].add(node_id)

    def set_relationship_property(self, rel_id: int, key: str, value: Any) -> None:
        """Set (or with ``value=None`` remove) a property on a relationship."""
        rel = self.relationship(rel_id)
        if value is None:
            rel.properties.pop(key, None)
        else:
            rel.properties.update(validate_properties({key: value}))

    def delete_relationship(self, rel_id: int) -> None:
        """Remove a relationship from the store and its adjacency indexes."""
        rel = self._relationships.pop(rel_id, None)
        if rel is None:
            raise EntityNotFound(f"relationship {rel_id} does not exist")
        self._outgoing[rel.start_id].discard(rel_id)
        self._incoming[rel.end_id].discard(rel_id)

    def delete_node(self, node_id: int, detach: bool = False) -> None:
        """Remove a node.

        Args:
            detach: also remove attached relationships (Cypher's
                ``DETACH DELETE``).  Without it, deleting a connected node
                raises :class:`GraphError`.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise EntityNotFound(f"node {node_id} does not exist")
        attached = list(self._outgoing.get(node_id, ())) + list(
            self._incoming.get(node_id, ())
        )
        if attached and not detach:
            raise GraphError(
                f"cannot delete node {node_id}: it still has {len(attached)} relationships"
            )
        for rel_id in attached:
            if rel_id in self._relationships:
                self.delete_relationship(rel_id)
        del self._nodes[node_id]
        for label in node.labels:
            self._label_index[label].discard(node_id)
            for key, value in node.properties.items():
                index = self._property_index.get((label, key))
                if index is not None:
                    index[self._index_key(value)].discard(node_id)
        self._outgoing.pop(node_id, None)
        self._incoming.pop(node_id, None)

    def create_property_index(self, label: str, key: str) -> None:
        """Build an exact-match index over ``(label, key)`` for fast lookups."""
        if (label, key) in self._property_index:
            return
        index: dict[Any, set[int]] = defaultdict(set)
        for node_id in self._label_index.get(label, ()):
            node = self._nodes[node_id]
            if key in node.properties:
                index[self._index_key(node.properties[key])].add(node_id)
        self._property_index[(label, key)] = index

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Return the node with ``node_id`` or raise :class:`EntityNotFound`."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise EntityNotFound(f"node {node_id} does not exist") from None

    def relationship(self, rel_id: int) -> Relationship:
        """Return the relationship with ``rel_id`` or raise :class:`EntityNotFound`."""
        try:
            return self._relationships[rel_id]
        except KeyError:
            raise EntityNotFound(f"relationship {rel_id} does not exist") from None

    def has_node(self, node_id: int) -> bool:
        """Return True if ``node_id`` exists."""
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        """Number of nodes in the store."""
        return len(self._nodes)

    @property
    def relationship_count(self) -> int:
        """Number of relationships in the store."""
        return len(self._relationships)

    def labels(self) -> list[str]:
        """All labels with at least one node, sorted."""
        return sorted(label for label, ids in self._label_index.items() if ids)

    def relationship_types(self) -> list[str]:
        """All relationship types present, sorted."""
        return sorted({rel.rel_type for rel in self._relationships.values()})

    # ------------------------------------------------------------------
    # Scans (the executor's access paths)
    # ------------------------------------------------------------------

    def all_nodes(self) -> Iterator[Node]:
        """Iterate every node in insertion (id) order."""
        for node_id in sorted(self._nodes):
            yield self._nodes[node_id]

    def all_relationships(self) -> Iterator[Relationship]:
        """Iterate every relationship in insertion (id) order."""
        for rel_id in sorted(self._relationships):
            yield self._relationships[rel_id]

    def nodes_by_label(self, label: str) -> Iterator[Node]:
        """Iterate nodes carrying ``label`` in id order."""
        for node_id in sorted(self._label_index.get(label, ())):
            yield self._nodes[node_id]

    def nodes_by_property(self, label: str, key: str, value: Any) -> Iterator[Node]:
        """Iterate nodes with ``label`` whose ``key`` equals ``value``.

        Uses the property index when one exists; otherwise falls back to a
        label scan.
        """
        index = self._property_index.get((label, key))
        if index is not None:
            for node_id in sorted(index.get(self._index_key(value), ())):
                yield self._nodes[node_id]
            return
        for node in self.nodes_by_label(label):
            if node.properties.get(key) == value:
                yield node

    def relationships_of(
        self,
        node_id: int,
        direction: str = "both",
        rel_types: Iterable[str] | None = None,
    ) -> Iterator[Relationship]:
        """Iterate relationships attached to ``node_id``.

        Args:
            direction: ``"out"``, ``"in"`` or ``"both"`` (from the node's
                point of view).
            rel_types: restrict to these relationship types (any if None).
        """
        wanted = set(rel_types) if rel_types else None
        rel_ids: set[int] = set()
        if direction in ("out", "both"):
            rel_ids |= self._outgoing.get(node_id, set())
        if direction in ("in", "both"):
            rel_ids |= self._incoming.get(node_id, set())
        if direction not in ("out", "in", "both"):
            raise ValueError(f"invalid direction {direction!r}")
        for rel_id in sorted(rel_ids):
            rel = self._relationships[rel_id]
            if wanted is None or rel.rel_type in wanted:
                yield rel

    def degree(
        self,
        node_id: int,
        direction: str = "both",
        rel_types: Iterable[str] | None = None,
    ) -> int:
        """Number of attached relationships (cheap count of ``relationships_of``)."""
        return sum(1 for _ in self.relationships_of(node_id, direction, rel_types))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, node_ids: Iterable[int]) -> "GraphStore":
        """Extract the induced subgraph over ``node_ids`` into a new store.

        Node and relationship ids are remapped; relationships survive only
        when both endpoints are kept.  Useful for exporting a neighbourhood
        (e.g. one AS and everything one hop around it) for inspection.
        """
        wanted = set(node_ids)
        extracted = GraphStore()
        id_map: dict[int, int] = {}
        for node_id in sorted(wanted):
            node = self.node(node_id)
            copy = extracted.create_node(node.labels, dict(node.properties))
            id_map[node_id] = copy.node_id
        for rel in self.all_relationships():
            if rel.start_id in wanted and rel.end_id in wanted:
                extracted.create_relationship(
                    id_map[rel.start_id], rel.rel_type, id_map[rel.end_id],
                    dict(rel.properties),
                )
        return extracted

    def neighbourhood(self, node_id: int, hops: int = 1) -> set[int]:
        """Node ids within ``hops`` relationships of ``node_id`` (inclusive)."""
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        frontier = {node_id}
        seen = {node_id}
        for _ in range(hops):
            next_frontier: set[int] = set()
            for current in frontier:
                for rel in self.relationships_of(current):
                    other = rel.other_end(current)
                    if other not in seen:
                        seen.add(other)
                        next_frontier.add(other)
            frontier = next_frontier
        return seen

    # ------------------------------------------------------------------

    @staticmethod
    def _index_key(value: Any) -> Any:
        """Normalise a value for exact-match indexing (lists become tuples)."""
        if isinstance(value, list):
            return tuple(GraphStore._index_key(item) for item in value)
        return value

    def __repr__(self) -> str:
        return (
            f"GraphStore(nodes={self.node_count},"
            f" relationships={self.relationship_count},"
            f" labels={len(self.labels())})"
        )
