"""Entity extraction from natural-language questions.

The text-to-Cypher model grounds questions by spotting Internet-entity
mentions: AS numbers, prefixes, IPs, domain names, plus gazetteer matches
for countries, IXPs, tags, organizations and rankings known to the graph.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["ExtractedEntities", "Gazetteer", "EntityExtractor"]

_ASN_RE = re.compile(r"\bas[\s\-]?(\d{1,7})\b|\basn[\s:]*(\d{1,7})\b", re.IGNORECASE)
_PREFIX_RE = re.compile(r"\b(\d{1,3}(?:\.\d{1,3}){3}/\d{1,2})\b")
_PREFIX6_RE = re.compile(
    r"\b([0-9a-f]{1,4}(?::[0-9a-f]{0,4}){1,7}/\d{1,3})", re.IGNORECASE
)
_IP_RE = re.compile(r"\b(\d{1,3}(?:\.\d{1,3}){3})\b(?!/)")
_DOMAIN_RE = re.compile(
    r"\b((?:[a-z0-9][a-z0-9\-]*\.)+(?:com|net|org|io|jp|de|fr|in|br|uk|co\.uk))\b",
    re.IGNORECASE,
)
_NUMBER_RE = re.compile(r"\b(\d+(?:\.\d+)?)\b")


@dataclass
class ExtractedEntities:
    """All entity mentions found in one question."""

    asns: list[int] = field(default_factory=list)
    prefixes: list[str] = field(default_factory=list)
    ips: list[str] = field(default_factory=list)
    domains: list[str] = field(default_factory=list)
    countries: list[str] = field(default_factory=list)  # ISO codes
    ixps: list[str] = field(default_factory=list)
    tags: list[str] = field(default_factory=list)
    organizations: list[str] = field(default_factory=list)
    rankings: list[str] = field(default_factory=list)
    numbers: list[float] = field(default_factory=list)

    def is_empty(self) -> bool:
        """True when nothing at all was recognised."""
        return not any(
            (
                self.asns, self.prefixes, self.ips, self.domains, self.countries,
                self.ixps, self.tags, self.organizations, self.rankings,
            )
        )


@dataclass
class Gazetteer:
    """Known-entity name tables, typically derived from an IYP dataset."""

    countries: dict[str, str] = field(default_factory=dict)  # lowercase name/code -> code
    ixps: list[str] = field(default_factory=list)
    tags: list[str] = field(default_factory=list)
    organizations: list[str] = field(default_factory=list)
    rankings: list[str] = field(default_factory=list)

    @classmethod
    def from_dataset(cls, dataset) -> "Gazetteer":
        """Build from an :class:`~repro.iyp.generator.IYPDataset`."""
        countries: dict[str, str] = {}
        for code, name in dataset.country_names.items():
            countries[name.lower()] = code
            countries[code.lower()] = code
        return cls(
            countries=countries,
            ixps=list(dataset.ixp_nodes),
            tags=list(dataset.tag_nodes),
            organizations=list(dataset.org_nodes),
            rankings=list(dataset.ranking_nodes),
        )


class EntityExtractor:
    """Extracts :class:`ExtractedEntities` from question text."""

    def __init__(self, gazetteer: Gazetteer | None = None) -> None:
        self.gazetteer = gazetteer or Gazetteer()
        # Longest-first phrase lists so "DE-CIX Frankfurt" beats "DE-CIX".
        self._phrase_tables = [
            ("ixps", sorted(self.gazetteer.ixps, key=len, reverse=True)),
            ("tags", sorted(self.gazetteer.tags, key=len, reverse=True)),
            ("rankings", sorted(self.gazetteer.rankings, key=len, reverse=True)),
            ("organizations", sorted(self.gazetteer.organizations, key=len, reverse=True)),
        ]

    def extract(self, text: str) -> ExtractedEntities:
        """Scan ``text`` for every supported entity kind."""
        entities = ExtractedEntities()
        consumed_spans: list[tuple[int, int]] = []

        for match in _ASN_RE.finditer(text):
            asn = int(match.group(1) or match.group(2))
            if asn not in entities.asns:
                entities.asns.append(asn)
            consumed_spans.append(match.span())
        for match in _PREFIX_RE.finditer(text):
            if match.group(1) not in entities.prefixes:
                entities.prefixes.append(match.group(1))
            consumed_spans.append(match.span())
        for match in _PREFIX6_RE.finditer(text):
            prefix = match.group(1).lower()
            if prefix not in entities.prefixes:
                entities.prefixes.append(prefix)
            consumed_spans.append(match.span())
        for match in _IP_RE.finditer(text):
            if any(start <= match.start() < end for start, end in consumed_spans):
                continue
            if match.group(1) not in entities.ips:
                entities.ips.append(match.group(1))
            consumed_spans.append(match.span())
        for match in _DOMAIN_RE.finditer(text):
            domain = match.group(1).lower()
            if domain not in entities.domains:
                entities.domains.append(domain)
            consumed_spans.append(match.span())

        lowered = text.lower()
        for attribute, phrases in self._phrase_tables:
            found = getattr(entities, attribute)
            for phrase in phrases:
                index = lowered.find(phrase.lower())
                if index == -1:
                    continue
                span = (index, index + len(phrase))
                if any(start < span[1] and span[0] < end for start, end in consumed_spans):
                    continue
                if phrase not in found:
                    found.append(phrase)
                consumed_spans.append(span)

        entities.countries = self._extract_countries(text, lowered)

        for match in _NUMBER_RE.finditer(text):
            if any(start <= match.start() < end for start, end in consumed_spans):
                continue
            value = float(match.group(1))
            entities.numbers.append(int(value) if value.is_integer() else value)
        return entities

    def _extract_countries(self, text: str, lowered: str) -> list[str]:
        found: list[str] = []
        # Multi-word country names first ("united states", "south korea").
        for name, code in sorted(
            self.gazetteer.countries.items(), key=lambda kv: len(kv[0]), reverse=True
        ):
            if len(name) <= 3:
                continue  # handled below as exact tokens
            if name in lowered and code not in found:
                found.append(code)
        # Bare ISO codes must be upper-case in the text ("JP", "US") to
        # avoid matching English words like "in" or "us".
        for match in re.finditer(r"\b[A-Z]{2}\b", text):
            code = self.gazetteer.countries.get(match.group(0).lower())
            if code and code not in found:
                found.append(code)
        return found
