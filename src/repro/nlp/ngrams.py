"""N-gram helpers shared by BLEU / ROUGE and the embedding model."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

__all__ = ["ngrams", "ngram_counts", "char_ngrams"]


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """All contiguous n-grams of ``tokens`` (empty list when too short)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def ngram_counts(tokens: Sequence[str], n: int) -> Counter:
    """Multiset of n-grams, as a Counter."""
    return Counter(ngrams(tokens, n))


def char_ngrams(text: str, n: int, pad: bool = True) -> Iterable[str]:
    """Character n-grams, padded with ``^``/``$`` markers by default."""
    if pad:
        text = f"^{text}$"
    for i in range(max(0, len(text) - n + 1)):
        yield text[i : i + n]
