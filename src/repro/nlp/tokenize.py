"""Tokenisation used across metrics, embeddings and the simulated LLM."""

from __future__ import annotations

import re

__all__ = ["tokenize", "word_tokenize", "sentence_split", "normalize_text", "STOPWORDS"]

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:[.\-/_:][A-Za-z0-9]+)*|[^\sA-Za-z0-9]")
_SIMPLE_WORD_RE = re.compile(r"[a-z0-9]+(?:[.\-/][a-z0-9]+)*")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")

STOPWORDS = frozenset(
    """a an the of in on at to for with by is are was were be been does do did
    what which who whom whose how many much when where why and or as from
    that this these those it its their there has have had can could should
    would will shall please tell me show list give us all any some""".split()
)


def tokenize(text: str) -> list[str]:
    """Full tokenisation: words (keeping ``1.2.3.0/24``-style units) + punctuation."""
    return _WORD_RE.findall(text)


def word_tokenize(text: str, lower: bool = True) -> list[str]:
    """Word-only tokens; lowercased by default.

    Keeps dotted/slashed compounds together so prefixes, IPs and domain
    names survive as single tokens.
    """
    if lower:
        text = text.lower()
    return _SIMPLE_WORD_RE.findall(text)


def sentence_split(text: str) -> list[str]:
    """Naive sentence splitter (good enough for generated answers)."""
    parts = [part.strip() for part in _SENTENCE_RE.split(text.strip())]
    return [part for part in parts if part]


def normalize_text(text: str) -> str:
    """Lowercase, collapse whitespace, strip punctuation-only tokens."""
    words = word_tokenize(text)
    return " ".join(words)
