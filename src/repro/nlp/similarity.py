"""Classic string/set similarity measures used by retrieval and the judge."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from .tokenize import word_tokenize

__all__ = [
    "jaccard",
    "dice",
    "cosine_counts",
    "levenshtein",
    "normalized_levenshtein",
    "token_f1",
]


def jaccard(left: Iterable, right: Iterable) -> float:
    """Jaccard similarity of two iterables (as sets); 1.0 for two empties."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    union = left_set | right_set
    return len(left_set & right_set) / len(union)


def dice(left: Iterable, right: Iterable) -> float:
    """Sørensen–Dice coefficient of two iterables (as sets)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    denominator = len(left_set) + len(right_set)
    return 2 * len(left_set & right_set) / denominator if denominator else 0.0


def cosine_counts(left: Counter, right: Counter) -> float:
    """Cosine similarity of two count vectors."""
    if not left or not right:
        return 1.0 if not left and not right else 0.0
    dot = sum(count * right.get(key, 0) for key, count in left.items())
    norm_left = sum(count * count for count in left.values()) ** 0.5
    norm_right = sum(count * count for count in right.values()) ** 0.5
    if norm_left == 0 or norm_right == 0:
        return 0.0
    return dot / (norm_left * norm_right)


def levenshtein(left: str, right: str) -> int:
    """Edit distance with the classic two-row dynamic program."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def normalized_levenshtein(left: str, right: str) -> float:
    """1 - distance/max_len: 1.0 identical, 0.0 completely different."""
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(left, right) / longest


def token_f1(candidate: str | Sequence[str], reference: str | Sequence[str]) -> float:
    """Bag-of-words F1 (SQuAD-style), tokenising strings when needed."""
    cand_tokens = word_tokenize(candidate) if isinstance(candidate, str) else list(candidate)
    ref_tokens = word_tokenize(reference) if isinstance(reference, str) else list(reference)
    if not cand_tokens and not ref_tokens:
        return 1.0
    if not cand_tokens or not ref_tokens:
        return 0.0
    overlap = sum((Counter(cand_tokens) & Counter(ref_tokens)).values())
    if overlap == 0:
        return 0.0
    precision = overlap / len(cand_tokens)
    recall = overlap / len(ref_tokens)
    return 2 * precision * recall / (precision + recall)
