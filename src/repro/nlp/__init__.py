"""Text utilities: tokenisation, n-grams, similarity, entity extraction."""

from .entities import EntityExtractor, ExtractedEntities, Gazetteer
from .ngrams import char_ngrams, ngram_counts, ngrams
from .similarity import (
    cosine_counts,
    dice,
    jaccard,
    levenshtein,
    normalized_levenshtein,
    token_f1,
)
from .tokenize import STOPWORDS, normalize_text, sentence_split, tokenize, word_tokenize

__all__ = [
    "tokenize",
    "word_tokenize",
    "sentence_split",
    "normalize_text",
    "STOPWORDS",
    "ngrams",
    "ngram_counts",
    "char_ngrams",
    "jaccard",
    "dice",
    "cosine_counts",
    "levenshtein",
    "normalized_levenshtein",
    "token_f1",
    "EntityExtractor",
    "ExtractedEntities",
    "Gazetteer",
]
