"""A small in-memory vector index with exact top-k cosine search."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..faults import fault_point
from ..nlp.tokenize import word_tokenize
from .model import HashingEmbedding

__all__ = ["VectorEntry", "SearchHit", "VectorStore"]


@dataclass
class VectorEntry:
    """One indexed item: id, source text, payload and its vector."""

    entry_id: str
    text: str
    vector: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SearchHit:
    """One search result with its cosine score."""

    entry_id: str
    text: str
    score: float
    metadata: dict[str, Any]


class VectorStore:
    """Exact cosine-similarity search over embedded texts.

    Brute force on a dense matrix — IYP node-description corpora are a few
    thousand entries, where exact search is both simpler and faster than an
    approximate index.

    Thread safety: mutation (:meth:`add`/:meth:`add_batch`) and the lazy
    matrix rebuild run under an internal lock, and :meth:`search` ranks
    over an immutable ``(matrix, row_count)`` snapshot taken under that
    lock.  A concurrent writer invalidating ``_matrix`` mid-search can
    therefore neither crash a reader (``None`` never escapes the lock) nor
    truncate its hits (the snapshot's rows and the append-only entry list
    agree for every index the snapshot can produce).

    Ranking uses ``np.argpartition`` partial selection rather than a full
    sort: scores are exact and the returned order is identical to a full
    stable descending sort (ties broken by insertion order), but only the
    top candidates are ever ordered.

    With ``token_prefilter=True`` an inverted token→row map narrows the
    score computation to entries sharing at least one word token with the
    query.  Scores stay exact for every candidate, but recall becomes
    approximate: entries with no token overlap are skipped.  When *no*
    entry overlaps the query the store falls back to a full scan rather
    than returning nothing.
    """

    def __init__(
        self,
        embedding: Optional[HashingEmbedding] = None,
        token_prefilter: bool = False,
    ) -> None:
        self.embedding = embedding or HashingEmbedding()
        self._entries: list[VectorEntry] = []
        self._matrix: Optional[np.ndarray] = None
        self._by_id: dict[str, VectorEntry] = {}
        self._token_prefilter = bool(token_prefilter)
        self._token_rows: dict[str, list[int]] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def add(self, entry_id: str, text: str, metadata: dict[str, Any] | None = None) -> None:
        """Index ``text`` under ``entry_id`` (ids must be unique)."""
        vector = self.embedding.embed(text)
        with self._lock:
            if entry_id in self._by_id:
                raise ValueError(f"duplicate vector-store id: {entry_id}")
            entry = VectorEntry(entry_id, text, vector, dict(metadata or {}))
            self._index_tokens(len(self._entries), text)
            self._entries.append(entry)
            self._by_id[entry_id] = entry
            self._matrix = None  # invalidate

    def add_batch(self, items: list[tuple[str, str, dict[str, Any]]]) -> None:
        """Index many (id, text, metadata) triples in one embedding pass.

        Validates all ids up front (nothing is added on a duplicate) and
        embeds every text with :meth:`HashingEmbedding.embed_batch`, which is
        much faster than per-item :meth:`add` on corpus-sized inputs.
        """
        if not items:
            return
        # Embedding is the expensive part — do it outside the lock so a
        # bulk index never starves concurrent searches.
        vectors = self.embedding.embed_batch([text for _, text, _ in items])
        with self._lock:
            fresh: set[str] = set()
            for entry_id, _, _ in items:
                if entry_id in self._by_id or entry_id in fresh:
                    raise ValueError(f"duplicate vector-store id: {entry_id}")
                fresh.add(entry_id)
            for (entry_id, text, metadata), vector in zip(items, vectors):
                entry = VectorEntry(entry_id, text, vector, dict(metadata or {}))
                self._index_tokens(len(self._entries), text)
                self._entries.append(entry)
                self._by_id[entry_id] = entry
            self._matrix = None  # invalidate; rebuilt lazily in one stack

    def _index_tokens(self, row: int, text: str) -> None:
        """Record ``row`` under each of ``text``'s word tokens (lock held)."""
        if not self._token_prefilter:
            return
        for token in set(word_tokenize(text)):
            self._token_rows.setdefault(token, []).append(row)

    def _snapshot(self) -> tuple[np.ndarray, list[VectorEntry]]:
        """(matrix, entries) consistent pair; caller must not mutate either.

        The entry list is append-only, so sharing the live list is safe:
        every row index the matrix can yield maps to an entry that existed
        when the matrix was built, and existing entries are never reordered
        or rewritten in place.
        """
        with self._lock:
            if self._matrix is None:
                if self._entries:
                    self._matrix = np.stack([entry.vector for entry in self._entries])
                else:
                    self._matrix = np.zeros((0, self.embedding.dim), dtype=np.float64)
            return self._matrix, self._entries

    def _ensure_matrix(self) -> np.ndarray:
        matrix, _ = self._snapshot()
        return matrix

    def search(
        self,
        query: str,
        top_k: int = 5,
        filter_fn: Callable[[VectorEntry], bool] | None = None,
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Top-k entries by cosine similarity to ``query``.

        Args:
            filter_fn: optional metadata predicate applied before ranking.
            min_score: drop hits scoring at or below this threshold.
        """
        if top_k <= 0:
            return []
        # Fault-injection site: latency spikes and transient errors on the
        # semantic retrieval path (the fallback the chaos plans lean on
        # while the symbolic path is being failed).
        fault_point("vector.search")
        matrix, entries = self._snapshot()
        if matrix.shape[0] == 0:
            return []
        query_vector = self.embedding.embed(query)
        rows = self._candidate_rows(query, matrix.shape[0])
        if rows is None:
            scores = matrix @ query_vector  # rows are unit-norm already
        else:
            scores = matrix[rows] @ query_vector
        return self._rank(scores, entries, rows, top_k, filter_fn, min_score)

    def _rank(
        self,
        scores: np.ndarray,
        entries: list[VectorEntry],
        rows: Optional[np.ndarray],
        top_k: int,
        filter_fn: Callable[[VectorEntry], bool] | None,
        min_score: float,
    ) -> list[SearchHit]:
        """Select top hits from ``scores`` via partial selection.

        ``scores[i]`` belongs to ``entries[rows[i]]`` (or ``entries[i]``
        when ``rows`` is None).  Starts with a ``top_k``-sized partition
        and doubles it whenever ``filter_fn`` starves the result below
        ``top_k`` without the scan having hit the ``min_score`` floor —
        so the output is always identical to ranking a full stable sort.
        """
        total = int(scores.shape[0])
        limit = min(top_k, total)
        while True:
            exhausted = limit >= total
            hits: list[SearchHit] = []
            stopped = False
            for index in self._top_indices(scores, limit):
                score = float(scores[int(index)])
                if score <= min_score:
                    stopped = True
                    break
                row = int(index) if rows is None else int(rows[int(index)])
                entry = entries[row]
                if filter_fn is not None and not filter_fn(entry):
                    continue
                hits.append(SearchHit(entry.entry_id, entry.text, score, dict(entry.metadata)))
                if len(hits) >= top_k:
                    stopped = True
                    break
            if stopped or exhausted:
                return hits
            limit = min(total, limit * 2)

    @staticmethod
    def _top_indices(scores: np.ndarray, limit: int) -> np.ndarray:
        """Indices of the ``limit`` best scores, full-sort-identical order.

        Descending score, ties in ascending index order (what a stable
        argsort of ``-scores`` yields).  May return more than ``limit``
        indices when the cut lands inside a tie group — the whole group is
        included so callers never see a tie split differently than the
        full sort would order it.
        """
        total = int(scores.shape[0])
        if limit >= total:
            return np.argsort(-scores, kind="stable")
        partition = np.argpartition(-scores, limit - 1)[:limit]
        threshold = scores[partition].min()
        greater = np.nonzero(scores > threshold)[0]
        if greater.size:
            greater = greater[np.argsort(-scores[greater], kind="stable")]
        equal = np.nonzero(scores == threshold)[0]  # ascending index = tie order
        return np.concatenate([greater, equal])

    def _candidate_rows(self, query: str, row_limit: int) -> Optional[np.ndarray]:
        """Rows sharing a word token with ``query`` (None → scan all rows).

        Only consulted when the store was built with ``token_prefilter``;
        falls back to a full scan when the query has no word tokens, when
        nothing overlaps, or when the prefilter would not shrink the scan.
        Rows at or beyond ``row_limit`` (appended after the matrix
        snapshot) are excluded so score lookups stay in bounds.
        """
        if not self._token_prefilter:
            return None
        tokens = set(word_tokenize(query))
        if not tokens:
            return None
        candidates: set[int] = set()
        with self._lock:
            for token in tokens:
                candidates.update(self._token_rows.get(token, ()))
        candidates = {row for row in candidates if row < row_limit}
        if not candidates or len(candidates) >= row_limit:
            return None
        return np.fromiter(sorted(candidates), dtype=np.intp, count=len(candidates))

    def entries(self) -> list[VectorEntry]:
        """Stable snapshot of the indexed entries (do not mutate them)."""
        with self._lock:
            return list(self._entries)

    def get(self, entry_id: str) -> Optional[VectorEntry]:
        """Fetch one entry by id in O(1) (None when missing)."""
        with self._lock:
            return self._by_id.get(entry_id)
