"""A small in-memory vector index with exact top-k cosine search."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from .model import HashingEmbedding

__all__ = ["VectorEntry", "SearchHit", "VectorStore"]


@dataclass
class VectorEntry:
    """One indexed item: id, source text, payload and its vector."""

    entry_id: str
    text: str
    vector: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SearchHit:
    """One search result with its cosine score."""

    entry_id: str
    text: str
    score: float
    metadata: dict[str, Any]


class VectorStore:
    """Exact cosine-similarity search over embedded texts.

    Brute force on a dense matrix — IYP node-description corpora are a few
    thousand entries, where exact search is both simpler and faster than an
    approximate index.
    """

    def __init__(self, embedding: Optional[HashingEmbedding] = None) -> None:
        self.embedding = embedding or HashingEmbedding()
        self._entries: list[VectorEntry] = []
        self._matrix: Optional[np.ndarray] = None
        self._ids: set[str] = set()

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry_id: str, text: str, metadata: dict[str, Any] | None = None) -> None:
        """Index ``text`` under ``entry_id`` (ids must be unique)."""
        if entry_id in self._ids:
            raise ValueError(f"duplicate vector-store id: {entry_id}")
        self._ids.add(entry_id)
        vector = self.embedding.embed(text)
        self._entries.append(VectorEntry(entry_id, text, vector, dict(metadata or {})))
        self._matrix = None  # invalidate

    def add_batch(self, items: list[tuple[str, str, dict[str, Any]]]) -> None:
        """Index many (id, text, metadata) triples in one embedding pass.

        Validates all ids up front (nothing is added on a duplicate) and
        embeds every text with :meth:`HashingEmbedding.embed_batch`, which is
        much faster than per-item :meth:`add` on corpus-sized inputs.
        """
        if not items:
            return
        fresh: set[str] = set()
        for entry_id, _, _ in items:
            if entry_id in self._ids or entry_id in fresh:
                raise ValueError(f"duplicate vector-store id: {entry_id}")
            fresh.add(entry_id)
        vectors = self.embedding.embed_batch([text for _, text, _ in items])
        for (entry_id, text, metadata), vector in zip(items, vectors):
            self._entries.append(VectorEntry(entry_id, text, vector, dict(metadata or {})))
        self._ids.update(fresh)
        self._matrix = None  # invalidate; rebuilt lazily in one stack

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            if self._entries:
                self._matrix = np.stack([entry.vector for entry in self._entries])
            else:
                self._matrix = np.zeros((0, self.embedding.dim), dtype=np.float64)
        return self._matrix

    def search(
        self,
        query: str,
        top_k: int = 5,
        filter_fn: Callable[[VectorEntry], bool] | None = None,
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Top-k entries by cosine similarity to ``query``.

        Args:
            filter_fn: optional metadata predicate applied before ranking.
            min_score: drop hits scoring at or below this threshold.
        """
        if top_k <= 0 or not self._entries:
            return []
        matrix = self._ensure_matrix()
        query_vector = self.embedding.embed(query)
        scores = matrix @ query_vector  # rows are unit-norm already
        order = np.argsort(-scores, kind="stable")
        hits: list[SearchHit] = []
        for index in order:
            entry = self._entries[int(index)]
            score = float(scores[int(index)])
            if score <= min_score:
                break
            if filter_fn is not None and not filter_fn(entry):
                continue
            hits.append(SearchHit(entry.entry_id, entry.text, score, dict(entry.metadata)))
            if len(hits) >= top_k:
                break
        return hits

    def get(self, entry_id: str) -> Optional[VectorEntry]:
        """Fetch one entry by id (None when missing)."""
        for entry in self._entries:
            if entry.entry_id == entry_id:
                return entry
        return None
