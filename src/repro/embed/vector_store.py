"""A small in-memory vector index with exact top-k cosine search."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from .model import HashingEmbedding

__all__ = ["VectorEntry", "SearchHit", "VectorStore"]


@dataclass
class VectorEntry:
    """One indexed item: id, source text, payload and its vector."""

    entry_id: str
    text: str
    vector: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SearchHit:
    """One search result with its cosine score."""

    entry_id: str
    text: str
    score: float
    metadata: dict[str, Any]


class VectorStore:
    """Exact cosine-similarity search over embedded texts.

    Brute force on a dense matrix — IYP node-description corpora are a few
    thousand entries, where exact search is both simpler and faster than an
    approximate index.

    Thread safety: mutation (:meth:`add`/:meth:`add_batch`) and the lazy
    matrix rebuild run under an internal lock, and :meth:`search` ranks
    over an immutable ``(matrix, row_count)`` snapshot taken under that
    lock.  A concurrent writer invalidating ``_matrix`` mid-search can
    therefore neither crash a reader (``None`` never escapes the lock) nor
    truncate its hits (the snapshot's rows and the append-only entry list
    agree for every index the snapshot can produce).
    """

    def __init__(self, embedding: Optional[HashingEmbedding] = None) -> None:
        self.embedding = embedding or HashingEmbedding()
        self._entries: list[VectorEntry] = []
        self._matrix: Optional[np.ndarray] = None
        self._ids: set[str] = set()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def add(self, entry_id: str, text: str, metadata: dict[str, Any] | None = None) -> None:
        """Index ``text`` under ``entry_id`` (ids must be unique)."""
        vector = self.embedding.embed(text)
        with self._lock:
            if entry_id in self._ids:
                raise ValueError(f"duplicate vector-store id: {entry_id}")
            self._ids.add(entry_id)
            self._entries.append(VectorEntry(entry_id, text, vector, dict(metadata or {})))
            self._matrix = None  # invalidate

    def add_batch(self, items: list[tuple[str, str, dict[str, Any]]]) -> None:
        """Index many (id, text, metadata) triples in one embedding pass.

        Validates all ids up front (nothing is added on a duplicate) and
        embeds every text with :meth:`HashingEmbedding.embed_batch`, which is
        much faster than per-item :meth:`add` on corpus-sized inputs.
        """
        if not items:
            return
        # Embedding is the expensive part — do it outside the lock so a
        # bulk index never starves concurrent searches.
        vectors = self.embedding.embed_batch([text for _, text, _ in items])
        with self._lock:
            fresh: set[str] = set()
            for entry_id, _, _ in items:
                if entry_id in self._ids or entry_id in fresh:
                    raise ValueError(f"duplicate vector-store id: {entry_id}")
                fresh.add(entry_id)
            for (entry_id, text, metadata), vector in zip(items, vectors):
                self._entries.append(VectorEntry(entry_id, text, vector, dict(metadata or {})))
            self._ids.update(fresh)
            self._matrix = None  # invalidate; rebuilt lazily in one stack

    def _snapshot(self) -> tuple[np.ndarray, list[VectorEntry]]:
        """(matrix, entries) consistent pair; caller must not mutate either.

        The entry list is append-only, so sharing the live list is safe:
        every row index the matrix can yield maps to an entry that existed
        when the matrix was built, and existing entries are never reordered
        or rewritten in place.
        """
        with self._lock:
            if self._matrix is None:
                if self._entries:
                    self._matrix = np.stack([entry.vector for entry in self._entries])
                else:
                    self._matrix = np.zeros((0, self.embedding.dim), dtype=np.float64)
            return self._matrix, self._entries

    def _ensure_matrix(self) -> np.ndarray:
        matrix, _ = self._snapshot()
        return matrix

    def search(
        self,
        query: str,
        top_k: int = 5,
        filter_fn: Callable[[VectorEntry], bool] | None = None,
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Top-k entries by cosine similarity to ``query``.

        Args:
            filter_fn: optional metadata predicate applied before ranking.
            min_score: drop hits scoring at or below this threshold.
        """
        if top_k <= 0:
            return []
        matrix, entries = self._snapshot()
        if matrix.shape[0] == 0:
            return []
        query_vector = self.embedding.embed(query)
        scores = matrix @ query_vector  # rows are unit-norm already
        order = np.argsort(-scores, kind="stable")
        hits: list[SearchHit] = []
        for index in order:
            entry = entries[int(index)]
            score = float(scores[int(index)])
            if score <= min_score:
                break
            if filter_fn is not None and not filter_fn(entry):
                continue
            hits.append(SearchHit(entry.entry_id, entry.text, score, dict(entry.metadata)))
            if len(hits) >= top_k:
                break
        return hits

    def entries(self) -> list[VectorEntry]:
        """Stable snapshot of the indexed entries (do not mutate them)."""
        with self._lock:
            return list(self._entries)

    def get(self, entry_id: str) -> Optional[VectorEntry]:
        """Fetch one entry by id (None when missing)."""
        for entry in self.entries():
            if entry.entry_id == entry_id:
                return entry
        return None
