"""Deterministic embeddings and the in-memory vector store."""

from .model import ContextualEmbedding, HashingEmbedding, cosine_similarity
from .vector_store import SearchHit, VectorEntry, VectorStore

__all__ = [
    "HashingEmbedding",
    "ContextualEmbedding",
    "cosine_similarity",
    "VectorStore",
    "VectorEntry",
    "SearchHit",
]
