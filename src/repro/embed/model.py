"""Deterministic text embeddings (the stand-in for an embedding API).

``HashingEmbedding`` hashes word and character n-grams into a fixed-size
vector (the classic feature-hashing trick).  It is deterministic across
processes (hashes via ``hashlib``, not Python's salted ``hash``), fast, and
monotone in lexical overlap — which is all the vector retriever and the
BERTScore implementation need.

``ContextualEmbedding`` produces per-token vectors blended with their
neighbours, giving token representations that depend on context — the
property BERTScore exploits (and the reason it shows a ceiling effect on
narrow linguistic variation).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np

from ..nlp.ngrams import char_ngrams
from ..nlp.tokenize import word_tokenize

__all__ = ["HashingEmbedding", "ContextualEmbedding", "cosine_similarity"]


@lru_cache(maxsize=131072)
def _stable_bucket(token: str, dim: int, salt: str) -> tuple[int, float]:
    """Map a token to (bucket index, ±1 sign) deterministically."""
    digest = hashlib.md5(f"{salt}:{token}".encode()).digest()
    index = int.from_bytes(digest[:4], "little") % dim
    sign = 1.0 if digest[4] % 2 == 0 else -1.0
    return index, sign


@lru_cache(maxsize=65536)
def _token_buckets(token: str, dim: int, char_weight: float) -> tuple[tuple[int, float], ...]:
    """Pre-weighted (index, weight) pairs for one token: word bucket + char trigrams.

    Corpus vocabularies repeat tokens heavily, so caching the md5 bucketing per
    token turns batch embedding into mostly array adds.
    """
    index, sign = _stable_bucket(token, dim, "word")
    pairs = [(index, sign)]
    for gram in char_ngrams(token, 3):
        index, sign = _stable_bucket(gram, dim, "char")
        pairs.append((index, sign * char_weight))
    return tuple(pairs)


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity; 0.0 when either vector is all-zero."""
    norm_left = float(np.linalg.norm(left))
    norm_right = float(np.linalg.norm(right))
    if norm_left == 0.0 or norm_right == 0.0:
        return 0.0
    return float(np.dot(left, right) / (norm_left * norm_right))


class HashingEmbedding:
    """Sentence embedding via hashed word unigrams/bigrams + char trigrams."""

    def __init__(self, dim: int = 256, char_weight: float = 0.5) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.char_weight = char_weight

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text`` into a unit-norm vector (zero vector for empty)."""
        vector = np.zeros(self.dim, dtype=np.float64)
        self._accumulate(text, vector)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def _accumulate(self, text: str, out: np.ndarray) -> None:
        """Add the (unnormalised) feature weights for ``text`` into ``out``."""
        tokens = word_tokenize(text)
        dim = self.dim
        char_weight = self.char_weight
        for token in tokens:
            for index, weight in _token_buckets(token, dim, char_weight):
                out[index] += weight
        for left, right in zip(tokens, tokens[1:]):
            index, sign = _stable_bucket(f"{left}_{right}", dim, "bigram")
            out[index] += sign * 0.7

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed many texts in one pass; returns an (n, dim) unit-norm matrix."""
        matrix = np.zeros((len(texts), self.dim), dtype=np.float64)
        for row in range(len(texts)):
            self._accumulate(texts[row], matrix[row])
            # Normalise per row exactly as embed() does so batch and
            # single-text embeddings stay bitwise identical.
            norm = np.linalg.norm(matrix[row])
            if norm > 0:
                matrix[row] /= norm
        return matrix

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity of two texts' embeddings."""
        return cosine_similarity(self.embed(left), self.embed(right))


class ContextualEmbedding:
    """Per-token embeddings blended with a ±``window`` neighbourhood.

    The blending makes two occurrences of the same word embed differently
    in different sentences — a cheap, deterministic analogue of contextual
    (BERT-style) token representations.

    ``common_weight`` adds a shared "language" component to every token
    vector, emulating the well-documented anisotropy of BERT embeddings:
    any two fluent-English tokens are fairly similar, which floors
    BERTScore for unrelated-but-fluent answers and produces the ceiling
    effect the poster reports.
    """

    def __init__(
        self,
        dim: int = 128,
        window: int = 2,
        context_weight: float = 0.35,
        common_weight: float = 1.15,
    ):
        self.dim = dim
        self.window = window
        self.context_weight = context_weight
        self.common_weight = common_weight
        self._base = HashingEmbedding(dim=dim)
        common = np.zeros(dim, dtype=np.float64)
        index, sign = _stable_bucket("__language__", dim, "common")
        common[index] = sign
        index2, sign2 = _stable_bucket("__fluency__", dim, "common")
        common[index2] = sign2
        self._common = common / np.linalg.norm(common)

    def token_embeddings(self, text: str) -> tuple[list[str], np.ndarray]:
        """Return (tokens, (n, dim) matrix of contextual token vectors)."""
        tokens = word_tokenize(text)
        if not tokens:
            return [], np.zeros((0, self.dim), dtype=np.float64)
        static = np.stack([self._token_vector(token) for token in tokens])
        contextual = np.array(static)
        for i in range(len(tokens)):
            lo = max(0, i - self.window)
            hi = min(len(tokens), i + self.window + 1)
            neighbourhood = static[lo:hi].mean(axis=0)
            contextual[i] = (1 - self.context_weight) * static[i] + (
                self.context_weight * neighbourhood
            )
        norms = np.linalg.norm(contextual, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return tokens, contextual / norms

    def _token_vector(self, token: str) -> np.ndarray:
        vector = np.zeros(self.dim, dtype=np.float64)
        index, sign = _stable_bucket(token, self.dim, "tok")
        vector[index] += 2.0 * sign
        for gram in char_ngrams(token, 3):
            index, sign = _stable_bucket(gram, self.dim, "tok3")
            vector[index] += sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector + self.common_weight * self._common
