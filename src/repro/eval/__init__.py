"""Evaluation: CypherEval dataset, validation model, metrics, harness, reports."""

from .analysis import (
    FailureClass,
    classify_failure,
    failure_breakdown,
    improvement_headroom,
    render_failure_table,
)
from .cyphereval import (
    DIFFICULTIES,
    DOMAINS,
    TEMPLATES,
    EvalQuestion,
    QuestionTemplate,
    build_cyphereval,
    dataset_summary,
)
from .harness import (
    METRIC_KEYS,
    EvaluationHarness,
    EvaluationReport,
    QuestionEvaluation,
)
from .humansim import HumanPanel, annotate_report
from .paraphrase import ParaphrasePenalty, paraphrase_penalty
from .reference import Reference, ValidationModel, gold_facts
from .report import (
    ascii_histogram,
    figure_2a_table,
    figure_2b_table,
    finding1_table,
    finding2_table,
    report_to_csv,
    stage_latency_table,
    template_table,
)
from .stats import (
    SummaryStats,
    bimodality_coefficient,
    bootstrap_ci,
    histogram,
    pearson,
    spearman,
    summary,
)

__all__ = [
    "EvalQuestion",
    "QuestionTemplate",
    "TEMPLATES",
    "DIFFICULTIES",
    "DOMAINS",
    "build_cyphereval",
    "dataset_summary",
    "ValidationModel",
    "Reference",
    "gold_facts",
    "EvaluationHarness",
    "EvaluationReport",
    "QuestionEvaluation",
    "METRIC_KEYS",
    "HumanPanel",
    "annotate_report",
    "ParaphrasePenalty",
    "paraphrase_penalty",
    "pearson",
    "spearman",
    "summary",
    "SummaryStats",
    "histogram",
    "bimodality_coefficient",
    "bootstrap_ci",
    "figure_2a_table",
    "figure_2b_table",
    "finding1_table",
    "finding2_table",
    "ascii_histogram",
    "report_to_csv",
    "stage_latency_table",
    "template_table",
    "FailureClass",
    "classify_failure",
    "failure_breakdown",
    "render_failure_table",
    "improvement_headroom",
]
