"""``python -m repro.eval`` entry point."""

from .cli import main

raise SystemExit(main())
