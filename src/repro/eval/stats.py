"""Statistics helpers: correlations, histograms, bimodality."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "pearson",
    "spearman",
    "summary",
    "SummaryStats",
    "histogram",
    "bimodality_coefficient",
    "bootstrap_ci",
]


def pearson(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate inputs)."""
    if len(xs) != len(ys):
        raise ValueError("series must align")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: list[float]) -> list[float]:
    """Fractional ranks (ties get the average rank)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def spearman(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation (Pearson over fractional ranks)."""
    if len(xs) != len(ys):
        raise ValueError("series must align")
    if len(xs) < 2:
        return 0.0
    return pearson(_ranks(xs), _ranks(ys))


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a score distribution."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p10: float
    p90: float


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = fraction * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


def summary(values: list[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` (zeros for an empty series)."""
    if not values:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n
    return SummaryStats(
        count=n,
        mean=mean,
        median=_percentile(ordered, 0.5),
        std=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        p10=_percentile(ordered, 0.1),
        p90=_percentile(ordered, 0.9),
    )


def histogram(values: list[float], bins: int = 10, lo: float = 0.0, hi: float = 1.0) -> list[int]:
    """Fixed-range histogram counts (values clamped into [lo, hi])."""
    if bins <= 0:
        raise ValueError("bins must be positive")
    counts = [0] * bins
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    width = (hi - lo) / bins
    for value in values:
        index = int((min(max(value, lo), hi) - lo) / width)
        if index == bins:
            index -= 1
        counts[index] += 1
    return counts


def bootstrap_ci(
    values: list[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean.

    Deterministic (seeded); returns ``(lo, hi)``.  Degenerate inputs
    (fewer than two values) return a zero-width interval at the mean.
    """
    import random

    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if not values:
        return (0.0, 0.0)
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    n = len(values)
    means = []
    for _ in range(resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        means.append(sum(sample) / n)
    means.sort()
    alpha = (1.0 - confidence) / 2
    return (
        _percentile(means, alpha),
        _percentile(means, 1.0 - alpha),
    )


def bimodality_coefficient(values: list[float]) -> float:
    """Sarle's bimodality coefficient; > 0.555 suggests bimodality.

    ``BC = (skewness² + 1) / (kurtosis + 3·(n−1)²/((n−2)(n−3)))`` with
    excess kurtosis.  Returns 0.0 for degenerate inputs.
    """
    n = len(values)
    if n < 4:
        return 0.0
    mean = sum(values) / n
    m2 = sum((v - mean) ** 2 for v in values) / n
    if m2 == 0:
        return 0.0
    m3 = sum((v - mean) ** 3 for v in values) / n
    m4 = sum((v - mean) ** 4 for v in values) / n
    skewness = m3 / m2**1.5
    kurtosis = m4 / m2**2 - 3.0  # excess
    correction = 3 * (n - 1) ** 2 / ((n - 2) * (n - 3))
    denominator = kurtosis + correction
    if denominator == 0:
        return 0.0
    return (skewness**2 + 1) / denominator
