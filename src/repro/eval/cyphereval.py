"""CypherEval-style benchmark dataset over the synthetic IYP graph.

The paper evaluates on *CypherEval* (Giakatos et al., LCN 2025): 300+
natural-language questions over IYP, each annotated with a gold Cypher
query and labelled by difficulty (Easy / Medium / Hard) across general and
technical domains.  This module regenerates a dataset with the same
structure from templates instantiated against the synthetic graph:

* **easy** — one entity, one relationship hop, phrased in vocabulary the
  whole tooling ecosystem shares;
* **medium** — aggregation or two hops, occasionally phrased obliquely;
* **hard** — three-plus hops, thresholds, comparisons, or composition of
  several sub-questions in one sentence.

Gold Cypher is executable on the graph; gold answers are produced by the
validation model (:mod:`repro.eval.reference`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cypher.errors import CypherError
from ..cypher.executor import CypherEngine
from ..iyp.generator import IYPDataset

__all__ = ["EvalQuestion", "TEMPLATES", "QuestionTemplate", "build_cyphereval", "dataset_summary"]

DIFFICULTIES = ("easy", "medium", "hard")
DOMAINS = ("general", "technical")


@dataclass(frozen=True)
class EvalQuestion:
    """One benchmark item."""

    qid: str
    question: str
    gold_cypher: str
    difficulty: str
    domain: str
    template: str
    entities: dict = field(default_factory=dict, hash=False, compare=False)


@dataclass(frozen=True)
class QuestionTemplate:
    """A question family: phrasings + gold query builder + entity sampler."""

    name: str
    difficulty: str
    domain: str
    phrasings: tuple[str, ...]
    gold: Callable[[dict], str]
    sampler: Callable[[IYPDataset, random.Random], Optional[dict]]
    require_rows: bool = True


def _quote(value: str) -> str:
    return "'" + str(value).replace("\\", "\\\\").replace("'", "\\'") + "'"


# ---------------------------------------------------------------------------
# Entity samplers
# ---------------------------------------------------------------------------

def _sample_as(dataset: IYPDataset, rng: random.Random) -> dict:
    asn = rng.choice(dataset.asns)
    return {"asn": asn, "as_name": dataset.as_names[asn]}


def _sample_wellknown_as(dataset: IYPDataset, rng: random.Random) -> dict:
    candidates = [asn for asn in dataset.asns if asn < 100000]
    asn = rng.choice(candidates or dataset.asns)
    return {"asn": asn, "as_name": dataset.as_names[asn]}


def _sample_as_with_country(dataset: IYPDataset, rng: random.Random) -> dict:
    asn = rng.choice(dataset.asns)
    code = dataset.as_country[asn]
    return {
        "asn": asn,
        "country_code": code,
        "country_name": dataset.country_names[code],
    }


def _sample_population_pair(dataset: IYPDataset, rng: random.Random) -> Optional[dict]:
    pairs = sorted(dataset.population_share)
    if not pairs:
        return None
    asn, code = rng.choice(pairs)
    return {
        "asn": asn,
        "country_code": code,
        "country_name": dataset.country_names[code],
    }


def _sample_country(dataset: IYPDataset, rng: random.Random) -> dict:
    code = rng.choice(dataset.country_codes)
    return {"country_code": code, "country_name": dataset.country_names[code]}


def _sample_country_with_ases(dataset: IYPDataset, rng: random.Random) -> dict:
    populated = sorted({code for code in dataset.as_country.values()})
    code = rng.choice(populated)
    return {"country_code": code, "country_name": dataset.country_names[code]}


def _sample_two_countries(dataset: IYPDataset, rng: random.Random) -> dict:
    first, second = rng.sample(dataset.country_codes, 2)
    return {
        "country_code": first,
        "country_name": dataset.country_names[first],
        "country_code2": second,
        "country_name2": dataset.country_names[second],
    }


def _sample_prefix(dataset: IYPDataset, rng: random.Random) -> dict:
    prefix = rng.choice(dataset.prefixes)
    return {"prefix": prefix}


def _sample_domain(dataset: IYPDataset, rng: random.Random) -> dict:
    return {"domain": rng.choice(dataset.domains)}


def _sample_ixp(dataset: IYPDataset, rng: random.Random) -> dict:
    return {"ixp": rng.choice(dataset.ixps)}


def _sample_ixp_and_as(dataset: IYPDataset, rng: random.Random) -> dict:
    out = _sample_ixp(dataset, rng)
    out.update(_sample_wellknown_as(dataset, rng))
    return out


def _sample_two_ases(dataset: IYPDataset, rng: random.Random) -> dict:
    first, second = rng.sample(dataset.asns, 2)
    return {"asn": first, "asn2": second}


def _sample_tag(dataset: IYPDataset, rng: random.Random) -> dict:
    return {"tag": rng.choice(dataset.tags)}


def _sample_org(dataset: IYPDataset, rng: random.Random) -> dict:
    return {"org": rng.choice(sorted(dataset.org_nodes))}


def _sample_topn(dataset: IYPDataset, rng: random.Random) -> dict:
    return {"n": rng.choice([3, 5, 10])}


def _sample_hege(dataset: IYPDataset, rng: random.Random) -> dict:
    out = _sample_wellknown_as(dataset, rng)
    out["hege"] = rng.choice([0.3, 0.5, 0.7])
    return out


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------

TEMPLATES: list[QuestionTemplate] = [
    # ---------------- EASY ----------------
    QuestionTemplate(
        name="country_of_as", difficulty="easy", domain="general",
        phrasings=(
            "Which country is AS{asn} registered in?",
            "In which country is AS{asn} based?",
            "What country is AS{asn} located in?",
        ),
        gold=lambda e: (
            f"MATCH (a:AS {{asn: {e['asn']}}})-[:COUNTRY]->(c:Country) "
            "RETURN c.name AS country"
        ),
        sampler=_sample_as,
    ),
    QuestionTemplate(
        name="name_of_as", difficulty="easy", domain="general",
        phrasings=(
            "What is the name of AS{asn}?",
            "What is AS{asn} called?",
        ),
        gold=lambda e: f"MATCH (a:AS {{asn: {e['asn']}}}) RETURN a.name AS name",
        sampler=_sample_as,
    ),
    QuestionTemplate(
        name="population_share", difficulty="easy", domain="general",
        phrasings=(
            "What is the percentage of {country_name}'s population in AS{asn}?",
            "What share of {country_name}'s population does AS{asn} serve?",
            "What percentage of the population of {country_name} is served by AS{asn}?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[p:POPULATION]->"
            f"(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "RETURN p.percent AS percent"
        ),
        sampler=_sample_population_pair,
    ),
    QuestionTemplate(
        name="country_population", difficulty="easy", domain="general",
        phrasings=(
            "What is the population of {country_name}?",
            "How large is the population of {country_name}?",
        ),
        gold=lambda e: (
            f"MATCH (c:Country {{country_code: {_quote(e['country_code'])}}}) "
            "RETURN c.population AS population"
        ),
        sampler=_sample_country,
    ),
    QuestionTemplate(
        name="org_of_as", difficulty="easy", domain="general",
        phrasings=(
            "What organization manages AS{asn}?",
            "Which company operates AS{asn}?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:MANAGED_BY]->(o:Organization) "
            "RETURN o.name AS organization"
        ),
        sampler=_sample_as,
    ),
    QuestionTemplate(
        name="website_of_as", difficulty="easy", domain="general",
        phrasings=(
            "What is the website URL of AS{asn}?",
            "What is the homepage URL of AS{asn}?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:WEBSITE]->(u:URL) RETURN u.url AS url"
        ),
        sampler=_sample_as,
        require_rows=False,
    ),
    QuestionTemplate(
        name="prefix_count_of_as", difficulty="easy", domain="technical",
        phrasings=(
            "How many prefixes does AS{asn} originate?",
            "How many prefixes does AS{asn} announce?",
            "What is the number of prefixes originated by AS{asn}?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:ORIGINATE]->(p:Prefix) "
            "RETURN count(p) AS prefixes"
        ),
        sampler=_sample_as,
    ),
    QuestionTemplate(
        name="origin_of_prefix", difficulty="easy", domain="technical",
        phrasings=(
            "Which AS originates the prefix {prefix}?",
            "What AS announces prefix {prefix}?",
        ),
        gold=lambda e: (
            f"MATCH (a:AS)-[:ORIGINATE]->(:Prefix {{prefix: {_quote(e['prefix'])}}}) "
            "RETURN a.asn AS asn, a.name AS name"
        ),
        sampler=_sample_prefix,
    ),
    QuestionTemplate(
        name="rank_of_as", difficulty="easy", domain="technical",
        phrasings=(
            "What is the CAIDA ASRank rank of AS{asn}?",
            "Where is AS{asn} ranked in CAIDA ASRank?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[r:RANK]->"
            "(:Ranking {name: 'CAIDA ASRank'}) RETURN r.rank AS rank"
        ),
        sampler=_sample_as,
    ),
    QuestionTemplate(
        name="ixps_of_as", difficulty="easy", domain="technical",
        phrasings=(
            "Which IXPs is AS{asn} a member of?",
            "At which internet exchange points is AS{asn} a member?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:MEMBER_OF]->(i:IXP) "
            "RETURN i.name AS ixp ORDER BY ixp"
        ),
        sampler=_sample_wellknown_as,
    ),
    QuestionTemplate(
        name="tags_of_as", difficulty="easy", domain="technical",
        phrasings=(
            "Which tags is AS{asn} categorized with?",
            "How is AS{asn} classified, which tags does it have?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:CATEGORIZED]->(t:Tag) "
            "RETURN t.label AS tag ORDER BY tag"
        ),
        sampler=_sample_as,
    ),
    QuestionTemplate(
        name="rank_of_domain", difficulty="easy", domain="general",
        phrasings=(
            "What is the rank of {domain} in the Tranco Top 1M ranking?",
            "Where does {domain} rank in the Tranco Top 1M list?",
        ),
        gold=lambda e: (
            f"MATCH (:DomainName {{name: {_quote(e['domain'])}}})-[r:RANK]->"
            "(:Ranking {name: 'Tranco Top 1M'}) RETURN r.rank AS rank"
        ),
        sampler=_sample_domain,
    ),
    QuestionTemplate(
        name="resolves_of_domain", difficulty="easy", domain="technical",
        phrasings=(
            "Which IP addresses does {domain} resolve to?",
            "What IPs does the domain {domain} resolve to?",
        ),
        gold=lambda e: (
            f"MATCH (:DomainName {{name: {_quote(e['domain'])}}})-[:RESOLVES_TO]->(i:IP) "
            "RETURN i.ip AS ip ORDER BY ip"
        ),
        sampler=_sample_domain,
    ),
    QuestionTemplate(
        name="country_of_ixp", difficulty="easy", domain="general",
        phrasings=(
            "In which country is the IXP {ixp} located?",
            "Which country is {ixp} based in?",
        ),
        gold=lambda e: (
            f"MATCH (:IXP {{name: {_quote(e['ixp'])}}})-[:COUNTRY]->(c:Country) "
            "RETURN c.name AS country"
        ),
        sampler=_sample_ixp,
    ),
    # ---------------- MEDIUM ----------------
    QuestionTemplate(
        name="as_count_in_country", difficulty="medium", domain="general",
        phrasings=(
            "How many ASes are registered in {country_name}?",
            "What is the total number of networks registered in {country_name}?",
            "Count the autonomous systems based in {country_name}.",
        ),
        gold=lambda e: (
            f"MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "RETURN count(a) AS ases"
        ),
        sampler=_sample_country_with_ases,
    ),
    QuestionTemplate(
        name="ixps_in_country", difficulty="medium", domain="technical",
        phrasings=(
            "Which IXPs operate in {country_name}?",
            "List the internet exchange points in {country_name}.",
        ),
        gold=lambda e: (
            f"MATCH (i:IXP)-[:COUNTRY]->(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "RETURN i.name AS ixp ORDER BY ixp"
        ),
        sampler=_sample_country,
        require_rows=False,
    ),
    QuestionTemplate(
        name="member_count_of_ixp", difficulty="medium", domain="technical",
        phrasings=(
            "How many ASes are members of {ixp}?",
            "What is the number of member networks at {ixp}?",
        ),
        gold=lambda e: (
            f"MATCH (a:AS)-[:MEMBER_OF]->(:IXP {{name: {_quote(e['ixp'])}}}) "
            "RETURN count(a) AS members"
        ),
        sampler=_sample_ixp,
    ),
    QuestionTemplate(
        name="peer_count_of_as", difficulty="medium", domain="technical",
        phrasings=(
            "How many peers does AS{asn} have?",
            "With how many networks does AS{asn} maintain peering?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:PEERS_WITH]-(b:AS) "
            "RETURN count(DISTINCT b) AS peers"
        ),
        sampler=_sample_wellknown_as,
    ),
    QuestionTemplate(
        name="providers_of_as", difficulty="medium", domain="technical",
        phrasings=(
            "Who are the upstream providers of AS{asn}?",
            "Which transit providers serve AS{asn}?",
        ),
        gold=lambda e: (
            f"MATCH (p:AS)-[:PEERS_WITH {{rel: -1}}]->(:AS {{asn: {e['asn']}}}) "
            "RETURN p.asn AS asn, p.name AS name ORDER BY asn"
        ),
        sampler=_sample_as,
        require_rows=False,
    ),
    QuestionTemplate(
        name="customers_of_as", difficulty="medium", domain="technical",
        phrasings=(
            "Which ASes are customers of AS{asn}?",
            "List the downstream customers of AS{asn}.",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:PEERS_WITH {{rel: -1}}]->(c:AS) "
            "RETURN c.asn AS asn ORDER BY asn"
        ),
        sampler=_sample_wellknown_as,
        require_rows=False,
    ),
    QuestionTemplate(
        name="dependencies_of_as", difficulty="medium", domain="technical",
        phrasings=(
            "Which ASes does AS{asn} depend on?",
            "On which networks does AS{asn} rely, by hegemony?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[d:DEPENDS_ON]->(t:AS) "
            "RETURN t.asn AS asn, d.hege AS hegemony ORDER BY hegemony DESC"
        ),
        sampler=_sample_as,
        require_rows=False,
    ),
    QuestionTemplate(
        name="top_prefix_as_in_country", difficulty="medium", domain="technical",
        phrasings=(
            "Which AS in {country_name} originates the most prefixes?",
            "What network announces the largest number of prefixes in {country_name}?",
        ),
        gold=lambda e: (
            f"MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "MATCH (a)-[:ORIGINATE]->(p:Prefix) "
            "RETURN a.asn AS asn, a.name AS name, count(p) AS prefixes "
            "ORDER BY prefixes DESC LIMIT 1"
        ),
        sampler=_sample_country_with_ases,
    ),
    QuestionTemplate(
        name="top_population_as_in_country", difficulty="medium", domain="general",
        phrasings=(
            "Which AS serves the largest percentage of {country_name}'s population?",
            "What network has the biggest population share in {country_name}?",
        ),
        gold=lambda e: (
            f"MATCH (a:AS)-[p:POPULATION]->(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "RETURN a.asn AS asn, a.name AS name, p.percent AS percent "
            "ORDER BY percent DESC LIMIT 1"
        ),
        sampler=_sample_country_with_ases,
        require_rows=False,
    ),
    QuestionTemplate(
        name="top_domains", difficulty="medium", domain="general",
        phrasings=(
            "What are the top {n} domains in the Tranco Top 1M ranking?",
            "List the {n} most popular websites according to the Tranco Top 1M ranking.",
        ),
        gold=lambda e: (
            "MATCH (d:DomainName)-[r:RANK]->(:Ranking {name: 'Tranco Top 1M'}) "
            f"RETURN d.name AS domain ORDER BY r.rank LIMIT {e['n']}"
        ),
        sampler=_sample_topn,
    ),
    QuestionTemplate(
        name="tag_as_count", difficulty="medium", domain="general",
        phrasings=(
            "How many ASes are categorized as {tag}?",
            "What is the number of networks tagged {tag}?",
        ),
        gold=lambda e: (
            f"MATCH (a:AS)-[:CATEGORIZED]->(:Tag {{label: {_quote(e['tag'])}}}) "
            "RETURN count(a) AS ases"
        ),
        sampler=_sample_tag,
        require_rows=False,
    ),
    QuestionTemplate(
        name="ases_of_org", difficulty="medium", domain="general",
        phrasings=(
            "Which ASes does the organization {org} manage?",
            "List the networks operated by {org}.",
        ),
        gold=lambda e: (
            f"MATCH (a:AS)-[:MANAGED_BY]->(:Organization {{name: {_quote(e['org'])}}}) "
            "RETURN a.asn AS asn ORDER BY asn"
        ),
        sampler=_sample_org,
        require_rows=False,
    ),
    QuestionTemplate(
        name="hostnames_of_domain", difficulty="medium", domain="general",
        phrasings=(
            "Which hostnames are part of the domain {domain}?",
            "What subdomains exist under {domain}?",
        ),
        gold=lambda e: (
            f"MATCH (h:HostName)-[:PART_OF]->(:DomainName {{name: {_quote(e['domain'])}}}) "
            "RETURN h.name AS hostname ORDER BY hostname"
        ),
        sampler=_sample_domain,
        require_rows=False,
    ),
    QuestionTemplate(
        name="probes_in_country", difficulty="medium", domain="technical",
        phrasings=(
            "How many Atlas probes are located in {country_name}?",
            "What is the number of RIPE Atlas probes in {country_name}?",
        ),
        gold=lambda e: (
            "MATCH (p:AtlasProbe)-[:COUNTRY]->"
            f"(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "RETURN count(p) AS probes"
        ),
        sampler=_sample_country_with_ases,
        require_rows=False,
    ),
    QuestionTemplate(
        name="facility_of_ixp", difficulty="medium", domain="general",
        phrasings=(
            "In which facility is the IXP {ixp} located?",
            "Which data center hosts {ixp}?",
        ),
        gold=lambda e: (
            f"MATCH (:IXP {{name: {_quote(e['ixp'])}}})-[:LOCATED_IN]->(f:Facility) "
            "RETURN f.name AS facility"
        ),
        sampler=_sample_ixp,
        require_rows=False,
    ),
    # ---------------- HARD ----------------
    QuestionTemplate(
        name="peers_population", difficulty="hard", domain="general",
        phrasings=(
            "What percentage of {country_name}'s population is served by ASes "
            "that peer with AS{asn}?",
            "Considering every network that peers with AS{asn}, what combined "
            "share of {country_name}'s population do they serve?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:PEERS_WITH]-(b:AS)"
            f"-[p:POPULATION]->(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "RETURN round(sum(p.percent), 1) AS percent"
        ),
        sampler=_sample_as_with_country,
        require_rows=False,
    ),
    QuestionTemplate(
        name="orgs_of_tagged_ases", difficulty="hard", domain="general",
        phrasings=(
            "Which organizations manage ASes categorized as {tag}?",
            "What companies are behind the networks tagged {tag}?",
        ),
        gold=lambda e: (
            "MATCH (o:Organization)<-[:MANAGED_BY]-(a:AS)-[:CATEGORIZED]->"
            f"(:Tag {{label: {_quote(e['tag'])}}}) "
            "RETURN DISTINCT o.name AS organization ORDER BY organization"
        ),
        sampler=_sample_tag,
        require_rows=False,
    ),
    QuestionTemplate(
        name="members_of_ixps_in_country", difficulty="hard", domain="technical",
        phrasings=(
            "Which ASes are members of IXPs located in {country_name}?",
            "List every network connected to an internet exchange in {country_name}.",
        ),
        gold=lambda e: (
            "MATCH (a:AS)-[:MEMBER_OF]->(i:IXP)-[:COUNTRY]->"
            f"(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "RETURN DISTINCT a.asn AS asn ORDER BY asn"
        ),
        sampler=_sample_country,
        require_rows=False,
    ),
    QuestionTemplate(
        name="origin_as_of_domain", difficulty="hard", domain="technical",
        phrasings=(
            "Which ASes originate the prefixes containing the IPs that {domain} "
            "resolves to?",
            "Trace {domain}: which networks announce the address space its IPs "
            "resolve into?",
        ),
        gold=lambda e: (
            f"MATCH (:DomainName {{name: {_quote(e['domain'])}}})-[:RESOLVES_TO]->(:IP)"
            "-[:PART_OF]->(:Prefix)<-[:ORIGINATE]-(a:AS) "
            "RETURN DISTINCT a.asn AS asn ORDER BY asn"
        ),
        sampler=_sample_domain,
        require_rows=False,
    ),
    QuestionTemplate(
        name="ixp_members_depending_on_as", difficulty="hard", domain="technical",
        phrasings=(
            "How many members of {ixp} depend on AS{asn}?",
            "Among the networks present at {ixp}, how many rely on AS{asn} "
            "for transit?",
        ),
        gold=lambda e: (
            f"MATCH (m:AS)-[:MEMBER_OF]->(:IXP {{name: {_quote(e['ixp'])}}}) "
            f"MATCH (m)-[:DEPENDS_ON]->(:AS {{asn: {e['asn']}}}) "
            "RETURN count(DISTINCT m) AS members"
        ),
        sampler=_sample_ixp_and_as,
        require_rows=False,
    ),
    QuestionTemplate(
        name="dependents_above_hegemony", difficulty="hard", domain="technical",
        phrasings=(
            "Which ASes depend on AS{asn} with hegemony above {hege}?",
            "What networks are dependent on AS{asn} where the hegemony score "
            "exceeds {hege}?",
        ),
        gold=lambda e: (
            f"MATCH (s:AS)-[d:DEPENDS_ON]->(:AS {{asn: {e['asn']}}}) "
            f"WHERE d.hege > {e['hege']} "
            "RETURN s.asn AS asn, d.hege AS hegemony ORDER BY hegemony DESC"
        ),
        sampler=_sample_hege,
        require_rows=False,
    ),
    QuestionTemplate(
        name="top_eyeball_coverage", difficulty="hard", domain="general",
        phrasings=(
            "What is the combined population share of the top {n} eyeball "
            "networks in {country_name}?",
            "Adding up the {n} largest population shares in {country_name}, "
            "what fraction of the population do they cover?",
        ),
        gold=lambda e: (
            f"MATCH (a:AS)-[p:POPULATION]->(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "WITH p.percent AS pct ORDER BY pct DESC "
            f"LIMIT {e['n']} RETURN round(sum(pct), 1) AS percent"
        ),
        sampler=lambda d, r: {**_sample_country_with_ases(d, r), **_sample_topn(d, r)},
        require_rows=False,
    ),
    QuestionTemplate(
        name="country_with_more_ases", difficulty="hard", domain="general",
        phrasings=(
            "Between {country_name} and {country_name2}, which has more "
            "registered ASes?",
            "Compare {country_name} and {country_name2}: which hosts the "
            "larger number of networks?",
        ),
        gold=lambda e: (
            "MATCH (a:AS)-[:COUNTRY]->(c:Country) "
            f"WHERE c.country_code IN [{_quote(e['country_code'])}, {_quote(e['country_code2'])}] "
            "RETURN c.name AS country, count(a) AS ases ORDER BY ases DESC LIMIT 1"
        ),
        sampler=_sample_two_countries,
        require_rows=False,
    ),
    QuestionTemplate(
        name="best_ranked_prefix_heavy", difficulty="hard", domain="technical",
        phrasings=(
            "Among the {n} best-ranked ASes in CAIDA ASRank, which originates "
            "the most prefixes?",
            "Take the first {n} networks of CAIDA ASRank and tell me which of "
            "them announces the most address space.",
        ),
        gold=lambda e: (
            "MATCH (a:AS)-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) "
            f"WHERE r.rank <= {e['n']} "
            "MATCH (a)-[:ORIGINATE]->(p:Prefix) "
            "RETURN a.asn AS asn, count(p) AS prefixes ORDER BY prefixes DESC LIMIT 1"
        ),
        sampler=_sample_topn,
        require_rows=False,
    ),
    QuestionTemplate(
        name="shared_ixps_of_two_ases", difficulty="hard", domain="technical",
        phrasings=(
            "Which IXPs have both AS{asn} and AS{asn2} as members?",
            "At which internet exchanges are AS{asn} and AS{asn2} both present?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:MEMBER_OF]->(i:IXP)"
            f"<-[:MEMBER_OF]-(:AS {{asn: {e['asn2']}}}) "
            "RETURN i.name AS ixp ORDER BY ixp"
        ),
        sampler=_sample_two_ases,
        require_rows=False,
    ),
    QuestionTemplate(
        name="v6_prefix_count_of_as", difficulty="medium", domain="technical",
        phrasings=(
            "How many IPv6 prefixes does AS{asn} originate?",
            "What is the number of IPv6 prefixes announced by AS{asn}?",
        ),
        gold=lambda e: (
            f"MATCH (:AS {{asn: {e['asn']}}})-[:ORIGINATE]->(p:Prefix {{af: 6}}) "
            "RETURN count(p) AS prefixes"
        ),
        sampler=_sample_as,
        require_rows=False,
    ),
    QuestionTemplate(
        name="shortest_as_path", difficulty="hard", domain="technical",
        phrasings=(
            "How many hops is the shortest path between AS{asn} and AS{asn2} "
            "in the peering graph?",
            "Following peering links, what is the minimum number of hops "
            "from AS{asn} to AS{asn2}?",
        ),
        gold=lambda e: (
            f"MATCH (a:AS {{asn: {e['asn']}}}), (b:AS {{asn: {e['asn2']}}}) "
            "MATCH p = shortestPath((a)-[:PEERS_WITH*..10]-(b)) "
            "RETURN length(p) AS hops"
        ),
        sampler=_sample_two_ases,
        require_rows=False,
    ),
    QuestionTemplate(
        name="rank_compare", difficulty="hard", domain="general",
        phrasings=(
            "Which of AS{asn} and AS{asn2} is ranked better in CAIDA ASRank?",
            "Out of AS{asn} and AS{asn2}, who holds the higher CAIDA ASRank "
            "position?",
        ),
        gold=lambda e: (
            "MATCH (a:AS)-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) "
            f"WHERE a.asn IN [{e['asn']}, {e['asn2']}] "
            "RETURN a.asn AS asn, a.name AS name ORDER BY r.rank LIMIT 1"
        ),
        sampler=_sample_two_ases,
        require_rows=False,
    ),
    QuestionTemplate(
        name="prefixes_of_org_country", difficulty="hard", domain="technical",
        phrasings=(
            "How many prefixes are originated by ASes managed by organizations "
            "based in {country_name}?",
            "Count the prefixes announced by networks whose operating "
            "organization is registered in {country_name}.",
        ),
        gold=lambda e: (
            "MATCH (o:Organization)-[:COUNTRY]->"
            f"(:Country {{country_code: {_quote(e['country_code'])}}}) "
            "MATCH (a:AS)-[:MANAGED_BY]->(o) "
            "MATCH (a)-[:ORIGINATE]->(p:Prefix) "
            "RETURN count(DISTINCT p) AS prefixes"
        ),
        sampler=_sample_country,
        require_rows=False,
    ),
]


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------

def build_cyphereval(
    dataset: IYPDataset,
    seed: int = 7,
    per_template: int = 9,
    max_attempts: int = 25,
) -> list[EvalQuestion]:
    """Instantiate every template ``per_template`` times against ``dataset``.

    With the default 35 templates × 9 instances this yields 300+ questions,
    matching the scale of the CypherEval benchmark.  Gold queries are
    validated by execution; templates with ``require_rows`` retry sampling
    until the gold answer is non-empty.
    """
    engine = CypherEngine(dataset.store)
    rng = random.Random(seed)
    questions: list[EvalQuestion] = []
    for template in TEMPLATES:
        produced = 0
        seen_questions: set[str] = set()
        attempts = 0
        while produced < per_template and attempts < per_template * max_attempts:
            attempts += 1
            entities = template.sampler(dataset, rng)
            if entities is None:
                break
            gold = template.gold(entities)
            try:
                result = engine.run(gold)
            except CypherError as exc:  # pragma: no cover - gold must execute
                raise AssertionError(
                    f"gold query for template {template.name} failed: {exc}\n{gold}"
                ) from exc
            if template.require_rows and not result.records:
                continue
            phrasing = template.phrasings[produced % len(template.phrasings)]
            question = phrasing.format(**entities)
            if question in seen_questions:
                continue
            seen_questions.add(question)
            questions.append(
                EvalQuestion(
                    qid=f"{template.name}-{produced:02d}",
                    question=question,
                    gold_cypher=gold,
                    difficulty=template.difficulty,
                    domain=template.domain,
                    template=template.name,
                    entities=entities,
                )
            )
            produced += 1
    return questions


def dataset_summary(questions: list[EvalQuestion]) -> dict[str, int]:
    """Counts by difficulty and domain (for reports and sanity tests)."""
    summary: dict[str, int] = {"total": len(questions)}
    for difficulty in DIFFICULTIES:
        summary[difficulty] = sum(1 for q in questions if q.difficulty == difficulty)
    for domain in DOMAINS:
        summary[domain] = sum(1 for q in questions if q.domain == domain)
    return summary
