"""Report rendering: the tables and ASCII figures behind Figure 2a/2b.

Every benchmark prints through these helpers so the regenerated "figures"
are diffable text: metric-distribution tables with histograms (2a), G-Eval
by difficulty × domain (2b), metric-human correlations (Finding 1) and the
structural-complexity analysis (Finding 2).
"""

from __future__ import annotations

import csv
import io

from .cyphereval import DIFFICULTIES, DOMAINS
from .harness import METRIC_KEYS, EvaluationReport
from .stats import bimodality_coefficient, bootstrap_ci, histogram, pearson, spearman, summary

__all__ = [
    "ascii_histogram",
    "figure_2a_table",
    "figure_2b_table",
    "finding1_table",
    "finding2_table",
    "template_table",
    "stage_latency_table",
    "report_to_csv",
]

_BAR = "█"

#: pipeline-kernel stage names, in execution order (latency columns)
STAGE_KEYS = ("symbolic", "routing", "rerank", "synthesis")


def ascii_histogram(values: list[float], bins: int = 10, width: int = 32) -> str:
    """Horizontal ASCII histogram over [0, 1]."""
    counts = histogram(values, bins=bins)
    peak = max(counts) if counts else 1
    lines = []
    for index, count in enumerate(counts):
        lo = index / bins
        hi = (index + 1) / bins
        bar = _BAR * (round(width * count / peak) if peak else 0)
        lines.append(f"  {lo:.1f}-{hi:.1f} | {bar} {count}")
    return "\n".join(lines)


def _format_row(cells: list[str], widths: list[int]) -> str:
    return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def _render_table(header: list[str], rows: list[list[str]]) -> str:
    widths = [len(cell) for cell in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [_format_row(header, widths), "-+-".join("-" * width for width in widths)]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def figure_2a_table(report: EvaluationReport, with_histograms: bool = True) -> str:
    """Figure 2a: comparison of metric distributions."""
    header = ["metric", "mean", "median", "std", "p10", "p90", ">0.75", "bimodality"]
    rows = []
    for metric in METRIC_KEYS:
        values = report.scores(metric)
        stats = summary(values)
        rows.append(
            [
                metric,
                f"{stats.mean:.3f}",
                f"{stats.median:.3f}",
                f"{stats.std:.3f}",
                f"{stats.p10:.3f}",
                f"{stats.p90:.3f}",
                f"{report.fraction_above(metric, 0.75) * 100:.1f}%",
                f"{bimodality_coefficient(values):.3f}",
            ]
        )
    output = ["Figure 2a — metric score distributions over CypherEval",
              _render_table(header, rows)]
    if with_histograms:
        for metric in METRIC_KEYS:
            output.append(f"\n{metric} distribution:")
            output.append(ascii_histogram(report.scores(metric)))
    return "\n".join(output)


def figure_2b_table(report: EvaluationReport) -> str:
    """Figure 2b: G-Eval scores by difficulty (and domain), with 95% CIs."""
    header = ["difficulty", "domain", "n", "mean", "95% CI", "median", ">0.75", ">0.5"]
    rows = []
    for difficulty in DIFFICULTIES:
        for domain in (None, *DOMAINS):
            sub = report.filter(difficulty=difficulty, domain=domain)
            if not len(sub):
                continue
            scores = sub.scores("geval")
            stats = summary(scores)
            ci_lo, ci_hi = bootstrap_ci(scores, resamples=500)
            rows.append(
                [
                    difficulty,
                    domain or "all",
                    str(len(sub)),
                    f"{stats.mean:.3f}",
                    f"[{ci_lo:.2f},{ci_hi:.2f}]",
                    f"{stats.median:.3f}",
                    f"{sub.fraction_above('geval', 0.75) * 100:.1f}%",
                    f"{sub.fraction_above('geval', 0.5) * 100:.1f}%",
                ]
            )
    output = ["Figure 2b — G-Eval scores by difficulty and domain",
              _render_table(header, rows)]
    for difficulty in DIFFICULTIES:
        sub = report.filter(difficulty=difficulty)
        if len(sub):
            output.append(f"\nG-Eval distribution ({difficulty}):")
            output.append(ascii_histogram(sub.scores("geval"), bins=10, width=24))
    return "\n".join(output)


def finding1_table(report: EvaluationReport) -> str:
    """Finding 1: correlation of every metric with (simulated) human scores."""
    humans = report.human_scores()
    if len(humans) != len(report):
        raise ValueError("report must be annotated with human scores first")
    header = ["metric", "pearson", "spearman", "bimodality"]
    rows = []
    for metric in METRIC_KEYS:
        values = report.scores(metric)
        rows.append(
            [
                metric,
                f"{pearson(values, humans):.3f}",
                f"{spearman(values, humans):.3f}",
                f"{bimodality_coefficient(values):.3f}",
            ]
        )
    return "\n".join(
        [
            "Finding 1 — metric alignment with human judgment",
            _render_table(header, rows),
        ]
    )


def finding2_table(report: EvaluationReport) -> str:
    """Finding 2: structural complexity vs domain as failure driver."""
    from ..cypher.parser import parse
    from ..cypher import ast_nodes as ast

    def hops(cypher: str) -> int:
        tree = parse(cypher)
        queries = tree.queries if isinstance(tree, ast.UnionQuery) else (tree,)
        total = 0
        for query in queries:
            for clause in query.clauses:
                if isinstance(clause, ast.MatchClause):
                    for part in clause.pattern.parts:
                        total += part.hop_count
        return total

    by_hops: dict[int, list[float]] = {}
    for evaluation in report.evaluations:
        hop_count = hops(evaluation.question.gold_cypher)
        by_hops.setdefault(hop_count, []).append(evaluation.scores["geval"])
    header = ["gold hops", "n", "mean G-Eval", ">0.75"]
    rows = []
    for hop_count in sorted(by_hops):
        values = by_hops[hop_count]
        above = sum(1 for value in values if value > 0.75) / len(values)
        rows.append(
            [str(hop_count), str(len(values)), f"{sum(values)/len(values):.3f}",
             f"{above * 100:.1f}%"]
        )
    lines = [
        "Finding 2 — structural complexity, not domain, drives degradation",
        _render_table(header, rows),
        "",
        "Domain gap (mean G-Eval, general - technical) per difficulty:",
    ]
    for difficulty in DIFFICULTIES:
        general = report.filter(difficulty=difficulty, domain="general").mean("geval")
        technical = report.filter(difficulty=difficulty, domain="technical").mean("geval")
        lines.append(
            f"  {difficulty:7s}: general={general:.3f} technical={technical:.3f} "
            f"gap={general - technical:+.3f}"
        )
    return "\n".join(lines)


def template_table(report: EvaluationReport, worst_first: bool = True) -> str:
    """Per-template breakdown: where exactly does the system lose points?

    One row per question template with its difficulty label, question
    count, mean G-Eval and the >0.75 success fraction — the granularity a
    developer needs to pick what to fix next.
    """
    buckets: dict[str, list] = {}
    for evaluation in report.evaluations:
        buckets.setdefault(evaluation.question.template, []).append(evaluation)
    rows = []
    for template, members in buckets.items():
        scores = [member.scores["geval"] for member in members]
        rows.append(
            (
                sum(scores) / len(scores),
                [
                    template,
                    members[0].difficulty,
                    members[0].domain,
                    str(len(members)),
                    f"{sum(scores) / len(scores):.3f}",
                    f"{sum(1 for s in scores if s > 0.75) / len(scores) * 100:.0f}%",
                ],
            )
        )
    rows.sort(key=lambda pair: pair[0], reverse=not worst_first)
    header = ["template", "difficulty", "domain", "n", "mean G-Eval", ">0.75"]
    return "\n".join(
        [
            "Per-template breakdown" + (" (worst first)" if worst_first else ""),
            _render_table(header, [row for _, row in rows]),
        ]
    )


def stage_latency_table(report: EvaluationReport) -> str:
    """Per-stage pipeline latency summary over every evaluated question.

    Reads the ``stage_timings`` the stage kernel records in each response's
    diagnostics; questions answered outside the staged pipeline (e.g.
    decomposed ones) simply contribute no samples.
    """
    header = ["stage", "n", "mean ms", "median ms", "min ms", "max ms", "total ms"]
    rows = []
    for stage in STAGE_KEYS:
        samples = [
            evaluation.diagnostics.get("stage_timings", {}).get(stage)
            for evaluation in report.evaluations
        ]
        samples = [value for value in samples if value is not None]
        if not samples:
            continue
        ordered = sorted(samples)
        rows.append(
            [
                stage,
                str(len(samples)),
                f"{sum(samples) / len(samples):.3f}",
                f"{ordered[len(ordered) // 2]:.3f}",
                f"{ordered[0]:.3f}",
                f"{ordered[-1]:.3f}",
                f"{sum(samples):.3f}",
            ]
        )
    return "\n".join(
        ["Per-stage pipeline latency (ms, wall clock)", _render_table(header, rows)]
    )


def report_to_csv(report: EvaluationReport) -> str:
    """Per-question CSV export of every score, label and stage latency."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["qid", "difficulty", "domain", "template", "retrieval_source",
         "used_fallback", *METRIC_KEYS, "human",
         *[f"t_{stage}_ms" for stage in STAGE_KEYS]]
    )
    for evaluation in report.evaluations:
        timings = evaluation.diagnostics.get("stage_timings", {}) or {}
        writer.writerow(
            [
                evaluation.question.qid,
                evaluation.difficulty,
                evaluation.domain,
                evaluation.question.template,
                evaluation.retrieval_source,
                evaluation.used_fallback,
                *[evaluation.scores[metric] for metric in METRIC_KEYS],
                evaluation.human_score if evaluation.human_score is not None else "",
                *[timings.get(stage, "") for stage in STAGE_KEYS],
            ]
        )
    return buffer.getvalue()
