"""Failure-mode analysis — the "directions for improvement" of the poster.

The evaluation records full pipeline provenance for every question
(intent, injected perturbation, translation failures, fallback use).  This
module aggregates those diagnostics into an error taxonomy: *why* did
low-scoring answers fail, and what would fixing each failure class buy?
"""

from __future__ import annotations

from dataclasses import dataclass

from .harness import EvaluationReport, QuestionEvaluation

__all__ = [
    "FailureClass",
    "classify_failure",
    "failure_breakdown",
    "render_failure_table",
    "improvement_headroom",
]

#: taxonomy order (also display order)
FAILURE_CLASSES = (
    "clean_translation",
    "perturbed:wrong_reltype",
    "perturbed:wrong_direction",
    "perturbed:drop_filter",
    "perturbed:wrong_entity",
    "perturbed:syntax_error",
    "translation_failed",
    "sparse_fallback",
)


@dataclass(frozen=True)
class FailureClass:
    """One row of the failure breakdown."""

    name: str
    count: int
    share: float
    mean_geval: float
    above_75: float


def classify_failure(evaluation: QuestionEvaluation) -> str:
    """Assign one taxonomy class to an evaluated question."""
    generation = evaluation.diagnostics.get("generation", {}) or {}
    perturbation = generation.get("perturbation")
    symbolic_error = evaluation.diagnostics.get("symbolic_error")
    if symbolic_error == "translation_failed":
        return "translation_failed"
    if perturbation:
        return f"perturbed:{perturbation}"
    if evaluation.diagnostics.get("sparse") and evaluation.used_fallback:
        return "sparse_fallback"
    return "clean_translation"


def failure_breakdown(report: EvaluationReport) -> list[FailureClass]:
    """Aggregate the report into taxonomy rows (empty classes skipped)."""
    buckets: dict[str, list[QuestionEvaluation]] = {}
    for evaluation in report.evaluations:
        buckets.setdefault(classify_failure(evaluation), []).append(evaluation)
    total = len(report) or 1
    rows = []
    for name in FAILURE_CLASSES:
        members = buckets.get(name, [])
        if not members:
            continue
        scores = [member.scores["geval"] for member in members]
        rows.append(
            FailureClass(
                name=name,
                count=len(members),
                share=len(members) / total,
                mean_geval=sum(scores) / len(scores),
                above_75=sum(1 for s in scores if s > 0.75) / len(scores),
            )
        )
    return rows


def render_failure_table(report: EvaluationReport) -> str:
    """Readable failure-taxonomy table, overall and per difficulty."""
    lines = ["Failure-mode analysis (why answers scored what they scored)"]
    header = f"{'class':28s} {'n':>4s} {'share':>7s} {'mean G-Eval':>12s} {'>0.75':>7s}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in failure_breakdown(report):
        lines.append(
            f"{row.name:28s} {row.count:4d} {row.share:7.1%} "
            f"{row.mean_geval:12.3f} {row.above_75:7.1%}"
        )
    lines.append("")
    lines.append("Share of clean translations per difficulty:")
    for difficulty in ("easy", "medium", "hard"):
        sub = report.filter(difficulty=difficulty)
        if not len(sub):
            continue
        clean = sum(
            1 for e in sub.evaluations if classify_failure(e) == "clean_translation"
        )
        lines.append(f"  {difficulty:7s}: {clean / len(sub):6.1%}  (n={len(sub)})")
    return "\n".join(lines)


def improvement_headroom(report: EvaluationReport) -> dict[str, float]:
    """Projected overall mean G-Eval if each failure class were fixed.

    "Fixed" means its members scored like today's clean translations — an
    upper bound on the value of eliminating that error class, which is
    exactly the prioritisation the poster's outlook calls for.
    """
    rows = failure_breakdown(report)
    clean = next((row for row in rows if row.name == "clean_translation"), None)
    if clean is None:
        return {}
    baseline = report.mean("geval")
    total = len(report)
    headroom = {}
    for row in rows:
        if row.name == "clean_translation":
            continue
        gain = row.count * (clean.mean_geval - row.mean_geval) / total
        headroom[row.name] = round(baseline + max(gain, 0.0), 4)
    return headroom
