"""The validation model (paper §3, Evaluation Setup).

"To assess response quality, we use a validation model that executes the
gold Cypher query on the IYP graph and prompts GPT-3.5 to produce a
reference answer."  Here: gold query → graph engine → reference verbalizer
(a differently-seeded instance of the same generation head, so references
share facts but not phrasing with ChatIYP answers).

Also derives the *gold fact set* from the executed result, which grounds
the G-Eval judge and the simulated human raters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cypher.errors import CypherError
from ..cypher.executor import CypherEngine
from ..cypher.result import ResultSet, render_value
from ..graph.store import GraphStore
from ..llm.judge import extract_facts
from ..llm.verbalize import ResultVerbalizer
from .cyphereval import EvalQuestion

__all__ = ["Reference", "ValidationModel"]


@dataclass
class Reference:
    """Gold execution output for one question."""

    answer: str
    result: ResultSet
    facts: set[str]

    @property
    def is_empty(self) -> bool:
        return len(self.result.records) == 0


class ValidationModel:
    """Builds reference answers by executing gold Cypher."""

    def __init__(self, store: GraphStore, seed: int = 1):
        self.engine = CypherEngine(store)
        self.verbalizer = ResultVerbalizer(seed=seed)

    def reference_for(self, question: EvalQuestion) -> Reference:
        """Execute the gold query and verbalize the reference answer.

        Raises:
            CypherError: gold queries are required to be executable; a
                failure here is a benchmark bug, not a model failure.
        """
        try:
            result = self.engine.run(question.gold_cypher)
        except CypherError as exc:
            raise CypherError(
                f"gold query of {question.qid} failed to execute: {exc}"
            ) from exc
        answer = self.verbalizer.verbalize(question.question, result)
        return Reference(answer=answer, result=result, facts=gold_facts(result))


def gold_facts(result: ResultSet) -> set[str]:
    """Normalised fact atoms contained in a gold result set."""
    facts: set[str] = set()
    for record in result.records:
        for value in record.values():
            if value is None:
                continue
            rendered = render_value(value)
            facts |= extract_facts(rendered)
            facts.add(rendered.lower())
    return facts
