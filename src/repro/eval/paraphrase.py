"""Paraphrase-penalty experiment.

Finding 1 argues surface metrics punish correct-but-reworded answers.  This
experiment isolates that claim: for every benchmark question with a
non-empty gold result we verbalize the *same gold facts* twice with
independently seeded generators — one rendering is the reference, the other
a semantically perfect paraphrase — then score the paraphrase with every
metric.  Any score below 1.0 is pure phrasing penalty; no factual error is
present anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cypher.executor import CypherEngine
from ..graph.store import GraphStore
from ..llm.base import LLM
from ..llm.verbalize import ResultVerbalizer
from .cyphereval import EvalQuestion
from .harness import METRIC_KEYS
from .metrics.bertscore import BertScorer
from .metrics.bleu import sentence_bleu
from .metrics.geval import GEvalMetric
from .metrics.rouge import rouge_all
from .reference import gold_facts

__all__ = ["ParaphrasePenalty", "paraphrase_penalty"]


@dataclass(frozen=True)
class ParaphrasePenalty:
    """Mean score (and 1-mean penalty) per metric over perfect paraphrases."""

    mean_scores: dict[str, float]
    pairs: int

    def penalty(self, metric: str) -> float:
        """How much ``metric`` docks a semantically perfect paraphrase."""
        return round(1.0 - self.mean_scores[metric], 4)


def paraphrase_penalty(
    store: GraphStore,
    questions: list[EvalQuestion],
    judge_llm: LLM,
    reference_seed: int = 7919,
    paraphrase_seed: int = 104729,
    limit: int | None = None,
) -> ParaphrasePenalty:
    """Measure every metric on gold-vs-gold paraphrase pairs.

    Args:
        store: the graph the gold queries run against.
        questions: benchmark questions; empty-gold ones are skipped (both
            renderings would be negative statements).
        judge_llm: backbone whose judge head scores G-Eval.
        reference_seed / paraphrase_seed: the two verbalizer streams; they
            must differ or every pair would be textually identical.
    """
    if reference_seed == paraphrase_seed:
        raise ValueError("reference and paraphrase seeds must differ")
    engine = CypherEngine(store)
    reference_model = ResultVerbalizer(seed=reference_seed)
    paraphrase_model = ResultVerbalizer(seed=paraphrase_seed)
    bert = BertScorer()
    geval = GEvalMetric(judge_llm)

    totals = {metric: 0.0 for metric in METRIC_KEYS}
    pairs = 0
    for question in questions:
        result = engine.run(question.gold_cypher)
        if not result.records:
            continue
        reference = reference_model.verbalize(question.question, result)
        paraphrase = paraphrase_model.verbalize(question.question, result)
        facts = gold_facts(result)
        rouge_scores = rouge_all(paraphrase, reference)
        totals["bleu"] += sentence_bleu(paraphrase, reference)
        totals["rouge1"] += rouge_scores["rouge1"].f1
        totals["rouge2"] += rouge_scores["rouge2"].f1
        totals["rougeL"] += rouge_scores["rougeL"].f1
        totals["bertscore"] += bert.score(paraphrase, reference).f1
        totals["geval"] += geval.score(
            question.question, paraphrase, reference, facts
        ).score
        pairs += 1
        if limit is not None and pairs >= limit:
            break
    if pairs == 0:
        raise ValueError("no questions with non-empty gold results")
    return ParaphrasePenalty(
        mean_scores={metric: round(total / pairs, 4) for metric, total in totals.items()},
        pairs=pairs,
    )
