"""Dependency-free SVG renderings of the paper's figures.

The poster presents Figure 2 as two plots: (a) per-metric score
distributions, (b) G-Eval by difficulty.  This module renders both from an
:class:`~repro.eval.harness.EvaluationReport` as standalone SVG documents —
no plotting library required — so the reproduction produces figure
artefacts, not just tables.

Example::

    from repro.eval.svg import figure_2a_svg, figure_2b_svg
    Path("fig2a.svg").write_text(figure_2a_svg(report))
"""

from __future__ import annotations

from .cyphereval import DIFFICULTIES
from .harness import METRIC_KEYS, EvaluationReport
from .stats import histogram

__all__ = ["figure_2a_svg", "figure_2b_svg", "histogram_svg", "bar_chart_svg"]

# A small colour-blind-safe palette.
_COLORS = ["#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377"]
_BACKGROUND = "#ffffff"
_AXIS = "#444444"
_FONT = "font-family='Helvetica, Arial, sans-serif'"


def _svg_document(width: int, height: int, body: list[str], title: str) -> str:
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>",
        f"<rect width='{width}' height='{height}' fill='{_BACKGROUND}'/>",
        f"<text x='{width / 2}' y='22' text-anchor='middle' font-size='15' "
        f"{_FONT} fill='{_AXIS}'>{title}</text>",
        *body,
        "</svg>",
    ]
    return "\n".join(parts)


def histogram_svg(
    values: list[float],
    title: str,
    bins: int = 10,
    width: int = 360,
    height: int = 220,
    color: str = _COLORS[0],
) -> str:
    """A single score histogram over [0, 1] as an SVG document."""
    counts = histogram(values, bins=bins)
    peak = max(counts) if counts else 1
    margin_left, margin_bottom, margin_top = 40, 36, 36
    plot_w = width - margin_left - 12
    plot_h = height - margin_top - margin_bottom
    bar_w = plot_w / bins
    body = []
    for index, count in enumerate(counts):
        bar_h = plot_h * count / peak if peak else 0
        x = margin_left + index * bar_w
        y = margin_top + plot_h - bar_h
        body.append(
            f"<rect x='{x:.1f}' y='{y:.1f}' width='{bar_w - 2:.1f}' "
            f"height='{bar_h:.1f}' fill='{color}'/>"
        )
    # Axes and tick labels.
    axis_y = margin_top + plot_h
    body.append(
        f"<line x1='{margin_left}' y1='{axis_y}' x2='{margin_left + plot_w}' "
        f"y2='{axis_y}' stroke='{_AXIS}' stroke-width='1'/>"
    )
    for tick in (0.0, 0.5, 1.0):
        x = margin_left + plot_w * tick
        body.append(
            f"<text x='{x:.1f}' y='{axis_y + 16}' text-anchor='middle' "
            f"font-size='11' {_FONT} fill='{_AXIS}'>{tick:.1f}</text>"
        )
    body.append(
        f"<text x='{margin_left - 6}' y='{margin_top + 8}' text-anchor='end' "
        f"font-size='11' {_FONT} fill='{_AXIS}'>{peak}</text>"
    )
    return _svg_document(width, height, body, title)


def bar_chart_svg(
    groups: list[str],
    series: dict[str, list[float]],
    title: str,
    width: int = 520,
    height: int = 280,
    y_label: str = "",
) -> str:
    """Grouped bar chart (values in [0, 1]) as an SVG document."""
    margin_left, margin_bottom, margin_top = 52, 44, 40
    plot_w = width - margin_left - 16
    plot_h = height - margin_top - margin_bottom
    group_w = plot_w / max(1, len(groups))
    series_names = list(series)
    bar_w = group_w * 0.8 / max(1, len(series_names))
    body = []
    axis_y = margin_top + plot_h
    # Gridlines at 0.25 steps.
    for tick in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = margin_top + plot_h * (1 - tick)
        body.append(
            f"<line x1='{margin_left}' y1='{y:.1f}' x2='{margin_left + plot_w}' "
            f"y2='{y:.1f}' stroke='#dddddd' stroke-width='1'/>"
        )
        body.append(
            f"<text x='{margin_left - 6}' y='{y + 4:.1f}' text-anchor='end' "
            f"font-size='11' {_FONT} fill='{_AXIS}'>{tick:.2f}</text>"
        )
    for group_index, group in enumerate(groups):
        base_x = margin_left + group_index * group_w + group_w * 0.1
        for series_index, name in enumerate(series_names):
            value = max(0.0, min(1.0, series[name][group_index]))
            bar_h = plot_h * value
            x = base_x + series_index * bar_w
            y = margin_top + plot_h - bar_h
            color = _COLORS[series_index % len(_COLORS)]
            body.append(
                f"<rect x='{x:.1f}' y='{y:.1f}' width='{bar_w - 2:.1f}' "
                f"height='{bar_h:.1f}' fill='{color}'/>"
            )
        body.append(
            f"<text x='{base_x + group_w * 0.4:.1f}' y='{axis_y + 16}' "
            f"text-anchor='middle' font-size='12' {_FONT} fill='{_AXIS}'>{group}</text>"
        )
    body.append(
        f"<line x1='{margin_left}' y1='{axis_y}' x2='{margin_left + plot_w}' "
        f"y2='{axis_y}' stroke='{_AXIS}' stroke-width='1'/>"
    )
    # Legend.
    legend_x = margin_left
    legend_y = height - 12
    for series_index, name in enumerate(series_names):
        color = _COLORS[series_index % len(_COLORS)]
        body.append(
            f"<rect x='{legend_x}' y='{legend_y - 10}' width='10' height='10' fill='{color}'/>"
        )
        body.append(
            f"<text x='{legend_x + 14}' y='{legend_y}' font-size='11' "
            f"{_FONT} fill='{_AXIS}'>{name}</text>"
        )
        legend_x += 18 + 7 * len(name)
    if y_label:
        body.append(
            f"<text x='14' y='{margin_top + plot_h / 2:.1f}' font-size='11' {_FONT} "
            f"fill='{_AXIS}' transform='rotate(-90 14 {margin_top + plot_h / 2:.1f})' "
            f"text-anchor='middle'>{y_label}</text>"
        )
    return _svg_document(width, height, body, title)


def figure_2a_svg(report: EvaluationReport) -> str:
    """Figure 2a: one histogram panel per metric, side by side."""
    panel_w, panel_h = 360, 220
    columns = 3
    rows = -(-len(METRIC_KEYS) // columns)
    width = panel_w * columns
    height = panel_h * rows + 30
    body = [
        f"<text x='{width / 2}' y='20' text-anchor='middle' font-size='16' "
        f"{_FONT} fill='{_AXIS}'>Figure 2a — metric score distributions</text>"
    ]
    for index, metric in enumerate(METRIC_KEYS):
        panel = histogram_svg(
            report.scores(metric), metric, color=_COLORS[index % len(_COLORS)]
        )
        inner = panel.split("\n", 2)[2].rsplit("</svg>", 1)[0]
        x = (index % columns) * panel_w
        y = 30 + (index // columns) * panel_h
        body.append(f"<g transform='translate({x},{y})'>{inner}</g>")
    return "\n".join(
        [
            f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' height='{height}' "
            f"viewBox='0 0 {width} {height}'>",
            f"<rect width='{width}' height='{height}' fill='{_BACKGROUND}'/>",
            *body,
            "</svg>",
        ]
    )


def figure_2b_svg(report: EvaluationReport) -> str:
    """Figure 2b: G-Eval by difficulty × domain as a grouped bar chart."""
    series = {
        "all": [], "general": [], "technical": [],
    }
    for difficulty in DIFFICULTIES:
        series["all"].append(report.filter(difficulty=difficulty).mean("geval"))
        series["general"].append(
            report.filter(difficulty=difficulty, domain="general").mean("geval")
        )
        series["technical"].append(
            report.filter(difficulty=difficulty, domain="technical").mean("geval")
        )
    return bar_chart_svg(
        list(DIFFICULTIES),
        series,
        "Figure 2b — mean G-Eval by difficulty and domain",
        y_label="mean G-Eval",
    )
