"""End-to-end evaluation harness.

Runs ChatIYP over the CypherEval questions, builds validation-model
references, and scores every answer with the four metrics of the paper
(BLEU, ROUGE, BERTScore, G-Eval).  The resulting
:class:`EvaluationReport` feeds the Figure 2a / 2b benchmarks and the
finding analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..core.chatiyp import ChatIYP
from ..parallel import ParallelRunner
from .cyphereval import EvalQuestion, build_cyphereval
from .metrics.bertscore import BertScorer
from .metrics.bleu import sentence_bleu
from .metrics.geval import GEvalMetric
from .metrics.rouge import rouge_all
from .reference import Reference, ValidationModel

__all__ = ["QuestionEvaluation", "EvaluationReport", "EvaluationHarness"]

METRIC_KEYS = ("bleu", "rouge1", "rouge2", "rougeL", "bertscore", "geval")


@dataclass
class QuestionEvaluation:
    """All scores and provenance for one evaluated question."""

    question: EvalQuestion
    answer: str
    reference: str
    cypher: Optional[str]
    retrieval_source: str
    used_fallback: bool
    gold_empty: bool
    gold_facts: set[str] = field(default_factory=set)
    scores: dict[str, float] = field(default_factory=dict)
    geval_breakdown: dict[str, float] = field(default_factory=dict)
    human_score: Optional[float] = None
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def difficulty(self) -> str:
        return self.question.difficulty

    @property
    def domain(self) -> str:
        return self.question.domain


@dataclass
class EvaluationReport:
    """The harness output: per-question evaluations plus accessors."""

    evaluations: list[QuestionEvaluation]

    def __len__(self) -> int:
        return len(self.evaluations)

    def scores(self, metric: str) -> list[float]:
        """All per-question scores for ``metric`` (see METRIC_KEYS)."""
        return [evaluation.scores[metric] for evaluation in self.evaluations]

    def filter(
        self,
        difficulty: Optional[str] = None,
        domain: Optional[str] = None,
    ) -> "EvaluationReport":
        """Sub-report restricted by difficulty and/or domain."""
        selected = [
            evaluation
            for evaluation in self.evaluations
            if (difficulty is None or evaluation.difficulty == difficulty)
            and (domain is None or evaluation.domain == domain)
        ]
        return EvaluationReport(selected)

    def mean(self, metric: str) -> float:
        values = self.scores(metric)
        return sum(values) / len(values) if values else 0.0

    def fraction_above(self, metric: str, threshold: float) -> float:
        values = self.scores(metric)
        if not values:
            return 0.0
        return sum(1 for value in values if value > threshold) / len(values)

    def human_scores(self) -> list[float]:
        return [
            evaluation.human_score
            for evaluation in self.evaluations
            if evaluation.human_score is not None
        ]


class EvaluationHarness:
    """Wires ChatIYP, the validation model and all metrics together."""

    #: default seed of the reference verbalizer — far outside the backbone
    #: seed range so reference and candidate phrasing streams never
    #: coincide (they are different models in the paper's setup)
    REFERENCE_SEED = 7919

    def __init__(
        self,
        chatiyp: ChatIYP,
        questions: Optional[list[EvalQuestion]] = None,
        reference_seed: int = REFERENCE_SEED,
        bertscore_rescale: bool = False,
    ) -> None:
        self.chatiyp = chatiyp
        self.questions = questions if questions is not None else build_cyphereval(
            chatiyp.dataset
        )
        self.validation = ValidationModel(chatiyp.store, seed=reference_seed)
        self.bert_scorer = BertScorer(rescale_with_baseline=bertscore_rescale)
        self.geval = GEvalMetric(chatiyp.llm)

    def run(
        self,
        limit: Optional[int] = None,
        subset: Optional[Iterable[EvalQuestion]] = None,
        workers: int = 1,
    ) -> EvaluationReport:
        """Evaluate (a subset of) the benchmark; returns the full report.

        ``workers`` fans the questions out over a bounded thread pool
        (``1`` = the serial reference path, executed inline).  Every
        question's answer and scores are pure functions of the question —
        the backbone derives its RNG per question, scoring has no
        cross-question state, and the runner collects results in input
        order — so the report is **bit-identical** to the serial run at any
        worker count (``tests/test_parallel.py`` asserts this).
        """
        questions = list(subset) if subset is not None else self.questions
        if limit is not None:
            questions = questions[:limit]
        if workers <= 1:
            evaluations = [self.evaluate_question(question) for question in questions]
        else:
            runner = ParallelRunner(workers=workers, thread_name_prefix="cyphereval")
            evaluations = runner.map(self.evaluate_question, questions)
        return EvaluationReport(evaluations)

    def evaluate(
        self,
        limit: Optional[int] = None,
        subset: Optional[Iterable[EvalQuestion]] = None,
        workers: int = 1,
    ) -> EvaluationReport:
        """Alias of :meth:`run` (the name used by the serving docs)."""
        return self.run(limit=limit, subset=subset, workers=workers)

    def evaluate_question(self, question: EvalQuestion) -> QuestionEvaluation:
        """Run one question through ChatIYP and score the answer."""
        reference = self.validation.reference_for(question)
        response = self.chatiyp.ask(question.question)
        return self.score_answer(question, response.answer, reference, response)

    def score_answer(
        self,
        question: EvalQuestion,
        answer: str,
        reference: Reference,
        response: Any = None,
    ) -> QuestionEvaluation:
        """Score an arbitrary answer text (used by ablations too)."""
        rouge_scores = rouge_all(answer, reference.answer)
        geval_score = self.geval.score(
            question.question, answer, reference.answer, reference.facts
        )
        scores = {
            "bleu": round(sentence_bleu(answer, reference.answer), 4),
            "rouge1": round(rouge_scores["rouge1"].f1, 4),
            "rouge2": round(rouge_scores["rouge2"].f1, 4),
            "rougeL": round(rouge_scores["rougeL"].f1, 4),
            "bertscore": round(self.bert_scorer.score(answer, reference.answer).f1, 4),
            "geval": geval_score.score,
        }
        return QuestionEvaluation(
            question=question,
            answer=answer,
            reference=reference.answer,
            cypher=getattr(response, "cypher", None),
            retrieval_source=getattr(response, "retrieval_source", "n/a"),
            used_fallback=getattr(response, "used_fallback", False),
            gold_empty=reference.is_empty,
            gold_facts=set(reference.facts),
            scores=scores,
            geval_breakdown={
                "factuality": geval_score.factuality,
                "relevance": geval_score.relevance,
                "informativeness": geval_score.informativeness,
                "rating": float(geval_score.rating),
            },
            diagnostics=dict(getattr(response, "diagnostics", {}) or {}),
        )
