"""BERTScore (Zhang et al., 2019) over deterministic contextual embeddings.

Greedy token matching on contextual token embeddings: each candidate token
matches its most similar reference token (precision side) and vice versa
(recall side); F1 combines them.  Because contextual similarity is high
for any fluent English answer about the same entities, raw scores crowd a
narrow high band — the *ceiling effect* the poster reports (Finding 1).
``rescale_with_baseline`` linearly rescales against an uninformative-pair
baseline, as the original implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...embed.model import ContextualEmbedding

__all__ = ["BertScore", "BertScorer"]


@dataclass(frozen=True)
class BertScore:
    """Precision / recall / F1 of greedy token matching."""

    precision: float
    recall: float
    f1: float


class BertScorer:
    """Computes BERTScore-style similarity between two texts."""

    #: expected similarity of unrelated sentence pairs (measured once over
    #: shuffled IYP answers; used for optional rescaling)
    DEFAULT_BASELINE = 0.45

    def __init__(
        self,
        embedding: ContextualEmbedding | None = None,
        rescale_with_baseline: bool = False,
        baseline: float | None = None,
    ) -> None:
        self.embedding = embedding or ContextualEmbedding()
        self.rescale = rescale_with_baseline
        self.baseline = self.DEFAULT_BASELINE if baseline is None else baseline

    def score(self, candidate: str, reference: str) -> BertScore:
        """Score ``candidate`` against ``reference``."""
        cand_tokens, cand_matrix = self.embedding.token_embeddings(candidate)
        ref_tokens, ref_matrix = self.embedding.token_embeddings(reference)
        if not cand_tokens and not ref_tokens:
            return BertScore(1.0, 1.0, 1.0)
        if not cand_tokens or not ref_tokens:
            return BertScore(0.0, 0.0, 0.0)
        similarity = cand_matrix @ ref_matrix.T  # rows unit-norm
        precision = float(similarity.max(axis=1).mean())
        recall = float(similarity.max(axis=0).mean())
        if self.rescale:
            precision = self._rescale(precision)
            recall = self._rescale(recall)
        if precision + recall <= 0:
            return BertScore(max(precision, 0.0), max(recall, 0.0), 0.0)
        f1 = 2 * precision * recall / (precision + recall)
        return BertScore(precision, recall, f1)

    def _rescale(self, value: float) -> float:
        rescaled = (value - self.baseline) / (1.0 - self.baseline)
        return float(np.clip(rescaled, 0.0, 1.0))

    def measure_baseline(self, texts: list[str], pairs: int = 200, seed: int = 0) -> float:
        """Estimate the unrelated-pair baseline from a corpus of answers."""
        import random

        rng = random.Random(seed)
        if len(texts) < 2:
            return self.baseline
        total = 0.0
        count = 0
        for _ in range(pairs):
            left, right = rng.sample(texts, 2)
            total += self.score(left, right).f1
            count += 1
        return total / count if count else self.baseline
