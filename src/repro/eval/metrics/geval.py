"""G-Eval (Liu et al., 2023): LLM-as-a-judge scoring.

The judge LLM (here the deterministic :class:`~repro.llm.judge.AnswerJudge`
behind the backbone's ``[TASK: judge]`` head) assesses factuality,
relevance and informativeness, exactly the criteria the poster lists.  Its
fact-grounded scoring separates good from bad answers sharply, giving the
bimodal distribution that makes G-Eval align with human judgment better
than the surface-overlap metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ...core.prompts import judge_prompt
from ...llm.base import LLM

__all__ = ["GEvalScore", "GEvalMetric"]


@dataclass(frozen=True)
class GEvalScore:
    """Final score in [0, 1] plus the per-criterion breakdown."""

    score: float
    rating: int
    factuality: float
    relevance: float
    informativeness: float


class GEvalMetric:
    """Scores candidate answers through the judge LLM."""

    def __init__(self, judge_llm: LLM) -> None:
        self.judge_llm = judge_llm

    def score(
        self,
        question: str,
        candidate: str,
        reference: str,
        gold_facts: Optional[set[str]] = None,
    ) -> GEvalScore:
        """Judge ``candidate`` against the reference (and gold facts)."""
        gold_json = json.dumps(sorted(gold_facts)) if gold_facts else ""
        prompt = judge_prompt(question, candidate, reference, gold_json)
        completion = self.judge_llm.complete(prompt)
        metadata = completion.metadata
        return GEvalScore(
            score=float(metadata.get("score", 0.0)),
            rating=int(metadata.get("rating", 1)),
            factuality=float(metadata.get("factuality", 0.0)),
            relevance=float(metadata.get("relevance", 0.0)),
            informativeness=float(metadata.get("informativeness", 0.0)),
        )
