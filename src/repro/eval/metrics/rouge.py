"""ROUGE (Lin, 2004) from scratch: ROUGE-1, ROUGE-2 and ROUGE-L.

Recall-oriented n-gram/subsequence overlap; we report the F1 variant (the
modern convention) with precision and recall accessible on the score
object.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...nlp.ngrams import ngram_counts
from ...nlp.tokenize import word_tokenize

__all__ = ["RougeScore", "rouge_n", "rouge_l", "rouge_all"]


@dataclass(frozen=True)
class RougeScore:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float


def _prf(overlap: float, candidate_total: float, reference_total: float) -> RougeScore:
    precision = overlap / candidate_total if candidate_total else 0.0
    recall = overlap / reference_total if reference_total else 0.0
    if precision + recall == 0:
        return RougeScore(precision, recall, 0.0)
    f1 = 2 * precision * recall / (precision + recall)
    return RougeScore(precision, recall, f1)


def rouge_n(candidate: str, reference: str, n: int = 1) -> RougeScore:
    """ROUGE-N: n-gram overlap between candidate and reference."""
    candidate_counts = ngram_counts(word_tokenize(candidate), n)
    reference_counts = ngram_counts(word_tokenize(reference), n)
    overlap = sum((candidate_counts & reference_counts).values())
    return _prf(
        overlap, sum(candidate_counts.values()), sum(reference_counts.values())
    )


def _lcs_length(left: list[str], right: list[str]) -> int:
    """Longest common subsequence length (two-row DP)."""
    if not left or not right:
        return 0
    previous = [0] * (len(right) + 1)
    for left_token in left:
        current = [0]
        for j, right_token in enumerate(right, start=1):
            if left_token == right_token:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1]


def rouge_l(candidate: str, reference: str) -> RougeScore:
    """ROUGE-L: longest-common-subsequence F1."""
    candidate_tokens = word_tokenize(candidate)
    reference_tokens = word_tokenize(reference)
    lcs = _lcs_length(candidate_tokens, reference_tokens)
    return _prf(lcs, len(candidate_tokens), len(reference_tokens))


def rouge_all(candidate: str, reference: str) -> dict[str, RougeScore]:
    """All three variants keyed ``rouge1`` / ``rouge2`` / ``rougeL``."""
    return {
        "rouge1": rouge_n(candidate, reference, 1),
        "rouge2": rouge_n(candidate, reference, 2),
        "rougeL": rouge_l(candidate, reference),
    }
