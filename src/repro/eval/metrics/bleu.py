"""BLEU (Papineni et al., 2002) with smoothing, from scratch.

Corpus- and sentence-level BLEU-4 with brevity penalty.  Sentence-level
scores use smoothing method 1 (add-epsilon on zero n-gram matches), the
common choice for short generated answers — without it most answers would
score exactly zero and Figure 2a's distribution would collapse.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from ...nlp.ngrams import ngram_counts
from ...nlp.tokenize import word_tokenize

__all__ = ["sentence_bleu", "corpus_bleu"]

_EPSILON = 0.1


def _modified_precision(
    candidate: Sequence[str], references: list[Sequence[str]], n: int
) -> tuple[int, int]:
    """Clipped n-gram matches and candidate n-gram total."""
    candidate_counts = ngram_counts(candidate, n)
    if not candidate_counts:
        return 0, 0
    max_reference: Counter = Counter()
    for reference in references:
        reference_counts = ngram_counts(reference, n)
        for gram, count in reference_counts.items():
            if count > max_reference[gram]:
                max_reference[gram] = count
    clipped = sum(
        min(count, max_reference.get(gram, 0)) for gram, count in candidate_counts.items()
    )
    return clipped, sum(candidate_counts.values())


def _closest_reference_length(candidate_length: int, references: list[Sequence[str]]) -> int:
    return min(
        (abs(len(reference) - candidate_length), len(reference)) for reference in references
    )[1]


def sentence_bleu(
    candidate: str,
    references: str | list[str],
    max_n: int = 4,
    smooth: bool = True,
) -> float:
    """BLEU for one candidate against one or more references, in [0, 1]."""
    if isinstance(references, str):
        references = [references]
    candidate_tokens = word_tokenize(candidate)
    reference_tokens = [word_tokenize(reference) for reference in references]
    return _bleu([(candidate_tokens, reference_tokens)], max_n=max_n, smooth=smooth)


def corpus_bleu(
    candidates: list[str],
    references: list[str | list[str]],
    max_n: int = 4,
    smooth: bool = False,
) -> float:
    """Corpus BLEU: n-gram statistics pooled over all pairs."""
    if len(candidates) != len(references):
        raise ValueError("candidates and references must align")
    pairs = []
    for candidate, reference in zip(candidates, references):
        reference_list = [reference] if isinstance(reference, str) else list(reference)
        pairs.append(
            (word_tokenize(candidate), [word_tokenize(r) for r in reference_list])
        )
    return _bleu(pairs, max_n=max_n, smooth=smooth)


def _bleu(
    pairs: list[tuple[list[str], list[list[str]]]], max_n: int, smooth: bool
) -> float:
    total_clipped = [0] * max_n
    total_counts = [0] * max_n
    candidate_length = 0
    reference_length = 0
    for candidate_tokens, reference_tokens in pairs:
        if not reference_tokens:
            continue
        candidate_length += len(candidate_tokens)
        reference_length += _closest_reference_length(len(candidate_tokens), reference_tokens)
        for n in range(1, max_n + 1):
            clipped, count = _modified_precision(candidate_tokens, reference_tokens, n)
            total_clipped[n - 1] += clipped
            total_counts[n - 1] += count
    if candidate_length == 0:
        return 0.0

    log_precision_sum = 0.0
    for n in range(1, max_n + 1):
        clipped = total_clipped[n - 1]
        count = total_counts[n - 1]
        if count == 0:
            return 0.0  # candidate shorter than n
        if clipped == 0:
            if not smooth:
                return 0.0
            clipped = _EPSILON
        log_precision_sum += math.log(clipped / count)
    geometric_mean = math.exp(log_precision_sum / max_n)

    if candidate_length > reference_length:
        brevity_penalty = 1.0
    else:
        brevity_penalty = math.exp(1.0 - reference_length / candidate_length)
    return brevity_penalty * geometric_mean
