"""Answer-quality metrics: BLEU, ROUGE, BERTScore, G-Eval."""

from .bertscore import BertScore, BertScorer
from .bleu import corpus_bleu, sentence_bleu
from .geval import GEvalMetric, GEvalScore
from .rouge import RougeScore, rouge_all, rouge_l, rouge_n

__all__ = [
    "sentence_bleu",
    "corpus_bleu",
    "RougeScore",
    "rouge_n",
    "rouge_l",
    "rouge_all",
    "BertScore",
    "BertScorer",
    "GEvalScore",
    "GEvalMetric",
]
