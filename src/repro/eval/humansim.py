"""Simulated human judgments (substitute for the paper's annotators).

Finding 1 claims G-Eval "aligns closely with human judgment".  To measure
metric-human correlation offline we synthesise a small rater panel whose
scores derive *directly from the gold execution results* — independent of
the reference answer's phrasing and of every automatic metric's machinery —
plus per-rater noise and leniency offsets.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..llm.judge import extract_facts
from .harness import EvaluationReport, QuestionEvaluation
from .reference import gold_facts

__all__ = ["HumanPanel", "annotate_report"]

_NEGATIVE_PHRASES = (
    "could not find", "no matching", "no records", "not possible",
    "could not translate", "could not retrieve", "no data",
)


@dataclass
class HumanPanel:
    """A panel of noisy-but-honest raters."""

    raters: int = 3
    seed: int = 99
    noise: float = 0.09

    def score(self, evaluation: QuestionEvaluation) -> float:
        """Panel-mean human score in [0, 1] for one evaluated answer."""
        quality = self._answer_quality(evaluation)
        rng = self._rng(evaluation.question.qid)
        ratings = []
        for rater in range(self.raters):
            leniency = (rater - (self.raters - 1) / 2) * 0.04
            rating = quality + leniency + rng.gauss(0.0, self.noise)
            ratings.append(min(1.0, max(0.0, rating)))
        return round(sum(ratings) / len(ratings), 4)

    # ------------------------------------------------------------------

    def _rng(self, qid: str) -> random.Random:
        digest = hashlib.md5(f"human:{self.seed}:{qid}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "little"))

    def _answer_quality(self, evaluation: QuestionEvaluation) -> float:
        """Ground-truth-grounded quality in [0, 1].

        A human reads the answer and checks its facts against what the
        gold query actually returns — they do not care how the reference
        happens to be phrased.
        """
        answer = evaluation.answer
        negative = any(phrase in answer.lower() for phrase in _NEGATIVE_PHRASES)
        if evaluation.gold_empty:
            return 0.92 if negative else 0.25
        facts = extract_facts(answer)
        grounding = {fact.lower() for fact in _grounding_facts(evaluation)}
        if negative or not facts:
            return 0.06
        supported = sum(1 for fact in facts if fact in grounding)
        precision = supported / len(facts)
        key_facts = {fact for fact in grounding if any(ch.isdigit() for ch in fact)}
        if key_facts:
            recall_pool = key_facts
        else:
            recall_pool = grounding
        recalled = sum(1 for fact in recall_pool if fact in facts)
        recall = recalled / len(recall_pool) if recall_pool else 0.0
        if precision + recall == 0:
            return 0.08
        f1 = 2 * precision * recall / (precision + recall)
        # Humans grade on a curve: a fully-correct concise answer is ~0.95,
        # a half-right one lands mid-scale.
        return 0.05 + 0.9 * f1


def _grounding_facts(evaluation: QuestionEvaluation) -> set[str]:
    """Facts from the gold execution (falls back to the reference text)."""
    if evaluation.gold_facts:
        return evaluation.gold_facts
    return extract_facts(evaluation.reference)


def annotate_report(
    report: EvaluationReport, panel: HumanPanel | None = None
) -> EvaluationReport:
    """Fill ``human_score`` on every evaluation in ``report`` (in place)."""
    panel = panel or HumanPanel()
    for evaluation in report.evaluations:
        evaluation.human_score = panel.score(evaluation)
    return report
