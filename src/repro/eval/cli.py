"""Command-line evaluation runner.

Run the full CypherEval evaluation from a shell::

    python -m repro.eval --size medium --per-template 9 --csv results.csv

Prints the Figure 2a/2b tables, both findings and the failure-mode
analysis; optionally writes the per-question CSV.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from ..core.chatiyp import ChatIYP
from ..core.config import ChatIYPConfig
from .analysis import render_failure_table
from .cyphereval import build_cyphereval, dataset_summary
from .harness import EvaluationHarness
from .humansim import annotate_report
from .report import (
    figure_2a_table,
    figure_2b_table,
    finding1_table,
    finding2_table,
    report_to_csv,
    template_table,
)

__all__ = ["main"]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Run the ChatIYP evaluation and print the paper's figures",
    )
    parser.add_argument("--size", default="medium", choices=("small", "medium", "large"))
    parser.add_argument("--seed", type=int, default=0, help="backbone LLM seed")
    parser.add_argument("--dataset-seed", type=int, default=42)
    parser.add_argument("--question-seed", type=int, default=7)
    parser.add_argument("--per-template", type=int, default=9)
    parser.add_argument("--limit", type=int, default=None, help="evaluate only the first N")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="evaluate questions concurrently over N threads (1 = serial; "
             "reports are bit-identical at any worker count)",
    )
    parser.add_argument("--csv", type=Path, default=None, help="write per-question CSV here")
    parser.add_argument("--decompose", action="store_true",
                        help="enable the sub-question decomposition extension")
    parser.add_argument("--no-histograms", action="store_true")
    args = parser.parse_args(argv)

    config = ChatIYPConfig(
        seed=args.seed,
        dataset_size=args.size,
        dataset_seed=args.dataset_seed,
        use_decomposition=args.decompose,
    )
    chatiyp = ChatIYP(config=config)
    questions = build_cyphereval(
        chatiyp.dataset, seed=args.question_seed, per_template=args.per_template
    )
    print(f"Benchmark: {dataset_summary(questions)}")
    print(f"Backbone: {chatiyp.llm.model_name}")
    print()

    harness = EvaluationHarness(chatiyp, questions)
    report = harness.run(limit=args.limit, workers=max(1, args.workers))
    annotate_report(report)

    print(figure_2a_table(report, with_histograms=not args.no_histograms))
    print()
    print(figure_2b_table(report))
    print()
    print(finding1_table(report))
    print()
    print(finding2_table(report))
    print()
    print(render_failure_table(report))
    print()
    print(template_table(report))

    if args.csv is not None:
        args.csv.write_text(report_to_csv(report))
        print(f"\nPer-question scores written to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
