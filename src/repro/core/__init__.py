"""ChatIYP core: the RAG system of the paper (Figure 1)."""

from .chatiyp import ChatIYP, ChatResponse
from .config import ChatIYPConfig
from .session import ChatSession, Turn
from .prompts import (
    IYP_FEW_SHOT_EXAMPLES,
    answer_prompt,
    judge_prompt,
    rerank_prompt,
    text2cypher_prompt,
)
from .transparency import render_response

__all__ = [
    "ChatIYP",
    "ChatResponse",
    "ChatIYPConfig",
    "ChatSession",
    "Turn",
    "render_response",
    "text2cypher_prompt",
    "answer_prompt",
    "rerank_prompt",
    "judge_prompt",
    "IYP_FEW_SHOT_EXAMPLES",
]
