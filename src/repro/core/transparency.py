"""Transparency rendering: show the answer *and* the query behind it.

The paper's interface "returns both the lexical responses and the
underlying query for transparency"; this renders that block for CLIs,
examples and logs.
"""

from __future__ import annotations

from .chatiyp import ChatResponse

__all__ = ["render_response"]


def render_response(response: ChatResponse, show_context: bool = False) -> str:
    """Pretty multi-line rendering of a :class:`ChatResponse`."""
    lines = [
        f"Q: {response.question}",
        f"A: {response.answer}",
    ]
    if response.cypher:
        status = "" if response.retrieval_source == "text2cypher" else " (failed; used semantic fallback)"
        lines.append(f"Cypher{status}: {response.cypher}")
    else:
        lines.append("Cypher: <no translation produced>")
    lines.append(f"Retrieval: {response.retrieval_source}")
    if response.result is not None and response.result.records:
        lines.append("Rows:")
        for row_line in response.result.to_table(max_rows=5).splitlines():
            lines.append(f"  {row_line}")
    if show_context and response.context_snippets:
        lines.append("Context:")
        for snippet in response.context_snippets[:5]:
            lines.append(f"  - {snippet}")
    return "\n".join(lines)
