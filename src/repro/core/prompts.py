"""The ChatIYP prompt chain (paper §2: "a prompt chain fine-tuned on IYP
query patterns").

Prompts carry explicit ``[TASK: ...]`` markers and ``[SECTION]`` blocks that
the backbone routes on.  The text-to-Cypher prompt embeds the live graph
schema and a bank of IYP query-pattern exemplars, mirroring what the
LlamaIndex Neo4j integration injects for real LLMs.
"""

from __future__ import annotations

import re

__all__ = [
    "IYP_FEW_SHOT_EXAMPLES",
    "text2cypher_prompt",
    "answer_prompt",
    "rerank_prompt",
    "judge_prompt",
    "sanitize_user_text",
]

_SECTION_MARKER_RE = re.compile(r"^\s*\[(?:TASK\s*:.*|\w+)\]\s*$", re.MULTILINE)


def sanitize_user_text(text: str) -> str:
    """Neutralise prompt-structure markers inside user-provided text.

    Prompts are routed on ``[TASK: ...]`` / ``[SECTION]`` lines; a question
    that *contains* such a line could hijack the backbone's routing
    (prompt injection).  Any user line that looks like a marker gets its
    brackets defanged before it is embedded in a prompt.
    """
    return _SECTION_MARKER_RE.sub(
        lambda match: match.group(0).replace("[", "(").replace("]", ")"), text
    )

#: (question, cypher) exemplars of canonical IYP query patterns.
IYP_FEW_SHOT_EXAMPLES: list[tuple[str, str]] = [
    (
        "What is the percentage of Japan's population in AS2497?",
        "MATCH (:AS {asn: 2497})-[p:POPULATION]->(:Country {country_code: 'JP'}) "
        "RETURN p.percent AS percent",
    ),
    (
        "Which country is AS15169 registered in?",
        "MATCH (a:AS {asn: 15169})-[:COUNTRY]->(c:Country) RETURN c.name AS country",
    ),
    (
        "How many prefixes does AS13335 originate?",
        "MATCH (:AS {asn: 13335})-[:ORIGINATE]->(p:Prefix) RETURN count(p) AS prefixes",
    ),
    (
        "Which IXPs is AS2914 a member of?",
        "MATCH (:AS {asn: 2914})-[:MEMBER_OF]->(i:IXP) RETURN i.name AS ixp ORDER BY ixp",
    ),
    (
        "Which ASes does AS7922 depend on?",
        "MATCH (:AS {asn: 7922})-[d:DEPENDS_ON]->(t:AS) "
        "RETURN t.asn AS asn, d.hege AS hegemony ORDER BY hegemony DESC",
    ),
]


def text2cypher_prompt(question: str, schema: str) -> str:
    """The IYP text-to-Cypher prompt with schema + few-shot chain."""
    examples = "\n".join(
        f"Q: {q}\nCypher: {c}" for q, c in IYP_FEW_SHOT_EXAMPLES
    )
    return (
        "[TASK: text2cypher]\n"
        "You are an expert on the Internet Yellow Pages (IYP) graph database.\n"
        "Translate the user's question into a single Cypher query.\n"
        "Use only node labels, relationship types and properties from the schema.\n"
        f"[SCHEMA]\n{schema}\n"
        f"[EXAMPLES]\n{examples}\n"
        f"[QUESTION]\n{sanitize_user_text(question)}\n"
    )


def answer_prompt(question: str, result_json: str, context: str) -> str:
    """The generation prompt: question + structured result and/or context."""
    parts = [
        "[TASK: answer]",
        "You are ChatIYP, answering questions about Internet infrastructure "
        "using the IYP knowledge graph. Answer concisely and factually from "
        "the retrieved information only.",
        f"[QUESTION]\n{sanitize_user_text(question)}",
    ]
    if result_json:
        parts.append(f"[RESULT]\n{result_json}")
    if context:
        parts.append(f"[CONTEXT]\n{context}")
    return "\n".join(parts) + "\n"


def rerank_prompt(query: str, passage: str) -> str:
    """The context re-ranking prompt."""
    return (
        "[TASK: rerank]\n"
        "Rate from 0 to 10 how useful the passage is for answering the query "
        "about Internet infrastructure.\n"
        f"[QUERY]\n{sanitize_user_text(query)}\n"
        f"[PASSAGE]\n{sanitize_user_text(passage)}\n"
    )


def judge_prompt(question: str, candidate: str, reference: str, gold_facts_json: str = "") -> str:
    """The G-Eval judging prompt (factuality, relevance, informativeness)."""
    parts = [
        "[TASK: judge]",
        "Evaluate the candidate answer against the reference for factuality, "
        "relevance and informativeness. Think step by step, then output a score.",
        f"[QUESTION]\n{sanitize_user_text(question)}",
        f"[REFERENCE]\n{sanitize_user_text(reference)}",
        f"[CANDIDATE]\n{sanitize_user_text(candidate)}",
    ]
    if gold_facts_json:
        parts.append(f"[GOLD_FACTS]\n{gold_facts_json}")
    return "\n".join(parts) + "\n"
