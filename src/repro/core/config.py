"""ChatIYP configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChatIYPConfig"]


@dataclass
class ChatIYPConfig:
    """Knobs for the ChatIYP pipeline.

    Defaults match the paper's architecture: symbolic retrieval first,
    vector fallback on failure/sparsity, LLM re-ranking before generation.
    """

    seed: int = 0
    dataset_size: str = "medium"
    dataset_seed: int = 42
    vector_top_k: int = 8
    rerank_top_n: int = 6
    use_reranker: bool = True
    use_vector_fallback: bool = True
    # Extension beyond the paper: sub-question decomposition for compound
    # questions (the poster's stated future-work direction). Off by default
    # so the baseline reproduces the published system.
    use_decomposition: bool = False
    sparse_row_threshold: int = 0
    # Routing policy of the staged pipeline: "symbolic-first" (the paper's
    # Figure-1 behaviour), "vector-only", or "hybrid-merge" (run both
    # retrievers and let the reranker arbitrate the merged candidates).
    routing_policy: str = "symbolic-first"
    embedding_dim: int = 256
    # Error-model calibration of the simulated text-to-Cypher backbone.
    error_base: float = 0.28
    error_slope: float = 1.6
    error_power: float = 1.6
    syntax_error_share: float = 0.18
