"""ChatIYP configuration."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

__all__ = ["ChatIYPConfig"]


@dataclass
class ChatIYPConfig:
    """Knobs for the ChatIYP pipeline.

    Defaults match the paper's architecture: symbolic retrieval first,
    vector fallback on failure/sparsity, LLM re-ranking before generation.
    """

    seed: int = 0
    dataset_size: str = "medium"
    dataset_seed: int = 42
    vector_top_k: int = 8
    rerank_top_n: int = 6
    use_reranker: bool = True
    use_vector_fallback: bool = True
    # Extension beyond the paper: sub-question decomposition for compound
    # questions (the poster's stated future-work direction). Off by default
    # so the baseline reproduces the published system.
    use_decomposition: bool = False
    sparse_row_threshold: int = 0
    # Routing policy of the staged pipeline: "symbolic-first" (the paper's
    # Figure-1 behaviour), "vector-only", or "hybrid-merge" (run both
    # retrievers and let the reranker arbitrate the merged candidates).
    routing_policy: str = "symbolic-first"
    embedding_dim: int = 256
    # Error-model calibration of the simulated text-to-Cypher backbone.
    error_base: float = 0.28
    error_slope: float = 1.6
    error_power: float = 1.6
    syntax_error_share: float = 0.18

    # -- serving hardening -------------------------------------------------
    # Default per-request time budget in milliseconds (None = unbounded).
    # When the budget is blown mid-request, stages degrade gracefully
    # (vector-only routing, skipped rerank, partial synthesis) and record
    # the decisions under diagnostics["degraded"].
    deadline_ms: float | None = None
    # Bounded LRU over full answers, keyed by normalized question + config
    # fingerprint + graph statistics version (mutations invalidate). 0
    # disables caching.
    answer_cache_size: int = 256
    # Circuit breaker around the symbolic path: trips open after this many
    # consecutive execution-class failures (0 disables the breaker) and
    # probes recovery after the cooldown. Off by default — the simulated
    # backbone's calibrated error rate is model noise, not engine health,
    # and tripping on it would skew the paper's evaluation. Serving
    # deployments (``python -m repro.server --serve``) switch it on.
    breaker_failure_threshold: int = 0
    breaker_reset_ms: float = 30_000.0
    # Retry-with-jittered-backoff for transient (raised) failures in the
    # LLM-facing stages. Total tries per stage call; 1 = no retry.
    llm_retry_attempts: int = 2
    llm_retry_backoff_ms: float = 25.0
    # Intermediate-row budget for every generated Cypher execution (None =
    # unbounded). A query that blows through the budget is cancelled with
    # a ResourceExhausted error and routes to the vector fallback like any
    # other execution failure — a guard against runaway generated scans.
    cypher_row_budget: int | None = None
    # Run every generated query profiled and surface the executed operator
    # tree (rows + wall-time per operator) under
    # diagnostics["cypher_profile"]. Cheap but chatty; off by default.
    capture_cypher_profile: bool = False
    # Compile Cypher expressions to Python closures (and fuse hot
    # Filter->Project chains) instead of walking the AST per row. Purely a
    # performance knob — results are bit-identical either way; the
    # interpreter remains the semantic reference and the escape hatch.
    compile_expressions: bool = True
    # Traverse read-only Cypher over the store's immutable CSR snapshot
    # (columnar adjacency arrays, rebuilt lazily after mutations) instead
    # of dict-of-set adjacency. Purely a performance knob — row order and
    # results are bit-identical either way; False is the escape hatch.
    csr_snapshot: bool = True
    # Single-flight coalescing of concurrent duplicate questions: when N
    # identical questions are in flight at once, one executes the pipeline
    # and the rest wait on its result (the concurrent counterpart of the
    # answer cache, which only dedupes sequential repeats). Coalescing is
    # an optimisation, never a dependency — followers whose deadline runs
    # out, or whose leader failed, execute independently.
    coalesce_inflight: bool = True

    def fingerprint(self) -> str:
        """Stable digest of every knob — part of the answer-cache key.

        Two instances with any differing field never share cache entries;
        the digest is insensitive to field ordering and process identity.
        """
        parts = [
            f"{spec.name}={getattr(self, spec.name)!r}"
            for spec in sorted(fields(self), key=lambda spec: spec.name)
        ]
        return hashlib.sha256(";".join(parts).encode()).hexdigest()[:16]
