"""ChatIYP — the natural-language interface over the IYP graph.

The facade assembles the whole system of Figure 1: the synthetic IYP graph,
the Cypher engine, the simulated LLM backbone, the three retrieval stages
and the response synthesizer.  ``ask()`` returns both the lexical response
and the underlying Cypher query for transparency, as the paper's UI does.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..cypher.executor import CypherEngine
from ..cypher.result import ResultSet
from ..embed.model import HashingEmbedding
from ..graph.schema import introspect_schema
from ..iyp.generator import IYPDataset
from ..iyp.loader import load_dataset
from ..llm.simulated import SimulatedLLM
from ..llm.text2cypher import ErrorModel
from ..nlp.entities import Gazetteer
from ..rag.observer import MetricsRegistry, PipelineObserver
from ..rag.pipeline import PipelineResponse, RetrieverQueryEngine
from ..rag.reranker import LLMReranker
from ..rag.routing import make_routing_policy
from ..rag.synthesizer import ResponseSynthesizer
from ..rag.text2cypher_retriever import TextToCypherRetriever
from ..rag.vector_retriever import VectorContextRetriever
from ..serving import AnswerCache, CircuitBreaker, Deadline, RetryPolicy
from .config import ChatIYPConfig
from .prompts import answer_prompt, rerank_prompt, text2cypher_prompt

__all__ = ["ChatResponse", "ChatIYP"]


@dataclass
class ChatResponse:
    """One answered question with full provenance."""

    question: str
    answer: str
    cypher: Optional[str]
    retrieval_source: str
    used_fallback: bool
    context_snippets: list[str] = field(default_factory=list)
    result: Optional[ResultSet] = None
    diagnostics: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly rendering (used by the HTTP server)."""
        rows = self.result.to_dicts() if self.result is not None else None
        if rows is not None:
            from ..cypher.result import render_value

            rows = [
                {key: render_value(value) for key, value in row.items()} for row in rows
            ]
        return {
            "question": self.question,
            "answer": self.answer,
            "cypher": self.cypher,
            "retrieval_source": self.retrieval_source,
            "used_fallback": self.used_fallback,
            "context": self.context_snippets,
            "rows": rows,
            # JSON-safe provenance subset: routing decision, error taxonomy
            # and per-stage wall-clock timings from the pipeline kernel.
            "diagnostics": {
                "route": self.diagnostics.get("route"),
                "symbolic_error": self.diagnostics.get("symbolic_error"),
                "error_class": self.diagnostics.get("error_class"),
                "stage_timings": self.diagnostics.get("stage_timings", {}),
                "degraded": list(self.diagnostics.get("degraded", ())),
                "cache_hit": bool(self.diagnostics.get("cache_hit", False)),
            },
        }


class ChatIYP:
    """The ChatIYP system: ``ChatIYP().ask("...")``."""

    def __init__(
        self,
        dataset: Optional[IYPDataset] = None,
        config: Optional[ChatIYPConfig] = None,
        observers: Optional[list[PipelineObserver]] = None,
    ) -> None:
        self.config = config or ChatIYPConfig()
        self.dataset = dataset or load_dataset(
            self.config.dataset_size, self.config.dataset_seed
        )
        self.store = self.dataset.store
        self.engine = CypherEngine(self.store)
        self.schema_text = introspect_schema(self.store).describe()

        gazetteer = Gazetteer.from_dataset(self.dataset)
        error_model = ErrorModel(
            base=self.config.error_base,
            slope=self.config.error_slope,
            power=self.config.error_power,
            syntax_share=self.config.syntax_error_share,
        )
        embedding = HashingEmbedding(dim=self.config.embedding_dim)
        self.llm = SimulatedLLM(
            gazetteer=gazetteer,
            seed=self.config.seed,
            error_model=error_model,
            embedding=embedding,
        )

        text2cypher = TextToCypherRetriever(
            engine=self.engine,
            llm=self.llm,
            schema_text=self.schema_text,
            prompt_builder=text2cypher_prompt,
        )
        vector = None
        # Non-default routing policies consult the vector retriever even
        # when the symbolic-first fallback is switched off.
        if self.config.use_vector_fallback or self.config.routing_policy != "symbolic-first":
            vector = VectorContextRetriever(
                self.store, top_k=self.config.vector_top_k
            )
        reranker = None
        if self.config.use_reranker:
            reranker = LLMReranker(
                self.llm,
                top_n=self.config.rerank_top_n,
                prompt_builder=rerank_prompt,
            )
        synthesizer = ResponseSynthesizer(self.llm, prompt_builder=answer_prompt)
        # The metrics registry rides along on every query (per-stage latency
        # aggregates + routing counters); the HTTP server serves it under
        # /metrics, and callers can attach further observers (tracing, ...).
        self.metrics = MetricsRegistry()
        # Serving hardening: circuit breaker around the symbolic path
        # (state transitions are counted in the metrics registry), retry
        # with seeded jittered backoff for transient LLM-stage failures,
        # and a bounded LRU answer cache keyed so that config changes and
        # graph mutations invalidate automatically.
        self.breaker: Optional[CircuitBreaker] = None
        if self.config.breaker_failure_threshold > 0:
            self.breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                reset_after_ms=self.config.breaker_reset_ms,
                on_transition=lambda old, new: self.metrics.increment(
                    f"breaker.{new.value}"
                ),
            )
        retry_policy = None
        if self.config.llm_retry_attempts > 1:
            retry_policy = RetryPolicy(
                attempts=self.config.llm_retry_attempts,
                backoff_ms=self.config.llm_retry_backoff_ms,
                seed=self.config.seed,
            )
        self.answer_cache: Optional[AnswerCache] = (
            AnswerCache(self.config.answer_cache_size)
            if self.config.answer_cache_size > 0
            else None
        )
        self._config_fingerprint = self.config.fingerprint()
        self.pipeline = RetrieverQueryEngine(
            text2cypher=text2cypher,
            vector=vector,
            reranker=reranker,
            synthesizer=synthesizer,
            vector_fallback=self.config.use_vector_fallback,
            sparse_row_threshold=self.config.sparse_row_threshold,
            routing_policy=make_routing_policy(self.config.routing_policy),
            observers=[self.metrics, *(observers or [])],
            breaker=self.breaker,
            retry_policy=retry_policy,
        )
        if self.config.use_decomposition:
            from ..rag.decompose import DecomposingQueryEngine, QuestionDecomposer

            self.pipeline = DecomposingQueryEngine(
                self.pipeline, QuestionDecomposer(gazetteer)
            )

    # ------------------------------------------------------------------

    def ask(self, question: str, deadline_ms: Optional[float] = None) -> ChatResponse:
        """Answer a natural-language question about the IYP graph.

        ``deadline_ms`` caps this request's wall-clock budget (falling back
        to ``config.deadline_ms``; ``None`` = unbounded).  A blown budget
        degrades the pipeline gracefully — the response then lists what was
        shed under ``diagnostics["degraded"]``.  Answers are served from
        the bounded LRU cache when an identical question was answered under
        the same configuration against the same graph version.
        """
        if not question or not question.strip():
            return ChatResponse(
                question=question,
                answer="Please ask a question about Internet infrastructure.",
                cypher=None,
                retrieval_source="none",
                used_fallback=False,
            )
        text = question.strip()
        self.metrics.increment("ask.requests")

        cache_key = None
        if self.answer_cache is not None:
            cache_key = AnswerCache.key(
                text, self._config_fingerprint, self.store.stats_version
            )
            cached = self.answer_cache.get(cache_key)
            if cached is not None:
                self.metrics.increment("cache.hit")
                # Copy-on-hit: callers may mutate diagnostics/context of
                # their response without corrupting the cached entry.
                return replace(
                    cached,
                    context_snippets=list(cached.context_snippets),
                    diagnostics={
                        **copy.deepcopy(cached.diagnostics),
                        "cache_hit": True,
                    },
                )
            self.metrics.increment("cache.miss")

        budget_ms = deadline_ms if deadline_ms is not None else self.config.deadline_ms
        deadline = Deadline.start(budget_ms) if budget_ms else None
        pipeline_response: PipelineResponse = self.pipeline.query(
            text, deadline=deadline
        )
        degraded = pipeline_response.diagnostics.get("degraded", ())
        for reason in degraded:
            self.metrics.increment(f"degraded.{reason}")
        response = ChatResponse(
            question=text,
            answer=pipeline_response.answer,
            cypher=pipeline_response.cypher,
            retrieval_source=pipeline_response.retrieval_source,
            used_fallback=pipeline_response.used_fallback,
            context_snippets=[item.node.text for item in pipeline_response.context],
            result=pipeline_response.result,
            diagnostics=pipeline_response.diagnostics,
        )
        # Degraded answers are artifacts of load/deadline pressure, not the
        # question — never let them shadow a full answer in the cache.
        if cache_key is not None and not degraded:
            self.answer_cache.put(cache_key, response)
        return response

    def run_cypher(self, query: str, **params: Any) -> ResultSet:
        """Escape hatch: run raw Cypher against the underlying graph."""
        return self.engine.run(query, **params)

    def serving_snapshot(self) -> dict[str, Any]:
        """Live state of the serving-hardening layer (for ``/metrics``)."""
        return {
            "cache": self.answer_cache.stats() if self.answer_cache else None,
            "breaker": self.breaker.snapshot() if self.breaker else None,
        }

    @property
    def schema(self) -> str:
        """The schema text injected into the text-to-Cypher prompt."""
        return self.schema_text
