"""ChatIYP — the natural-language interface over the IYP graph.

The facade assembles the whole system of Figure 1: the synthetic IYP graph,
the Cypher engine, the simulated LLM backbone, the three retrieval stages
and the response synthesizer.  ``ask()`` returns both the lexical response
and the underlying Cypher query for transparency, as the paper's UI does.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Sequence, Union

from ..cypher.executor import CypherEngine
from ..cypher.result import ResultSet
from ..embed.model import HashingEmbedding
from ..faults import active_injector, fault_point
from ..graph.schema import introspect_schema
from ..iyp.generator import IYPDataset
from ..iyp.loader import load_dataset
from ..llm.simulated import SimulatedLLM
from ..llm.text2cypher import ErrorModel
from ..nlp.entities import Gazetteer
from ..parallel import BatchOutcome, ParallelRunner, SingleFlight
from ..parallel import singleflight as _singleflight
from ..rag.observer import MetricsRegistry, PipelineObserver
from ..rag.pipeline import PipelineResponse, RetrieverQueryEngine
from ..rag.reranker import LLMReranker
from ..rag.routing import make_routing_policy
from ..rag.synthesizer import ResponseSynthesizer
from ..rag.text2cypher_retriever import TextToCypherRetriever
from ..rag.vector_retriever import VectorContextRetriever
from ..serving import AnswerCache, CircuitBreaker, Deadline, RetryPolicy
from .config import ChatIYPConfig
from .prompts import answer_prompt, rerank_prompt, text2cypher_prompt

__all__ = ["ChatResponse", "ChatIYP"]


@dataclass
class ChatResponse:
    """One answered question with full provenance."""

    question: str
    answer: str
    cypher: Optional[str]
    retrieval_source: str
    used_fallback: bool
    context_snippets: list[str] = field(default_factory=list)
    result: Optional[ResultSet] = None
    diagnostics: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly rendering (used by the HTTP server)."""
        rows = self.result.to_dicts() if self.result is not None else None
        if rows is not None:
            from ..cypher.result import render_value

            rows = [
                {key: render_value(value) for key, value in row.items()} for row in rows
            ]
        diagnostics = {
            "route": self.diagnostics.get("route"),
            "symbolic_error": self.diagnostics.get("symbolic_error"),
            "error_class": self.diagnostics.get("error_class"),
            "stage_timings": self.diagnostics.get("stage_timings", {}),
            "degraded": list(self.diagnostics.get("degraded", ())),
            "cache_hit": bool(self.diagnostics.get("cache_hit", False)),
            "coalesced": bool(self.diagnostics.get("coalesced", False)),
        }
        # Executed operator tree (already JSON-safe), present only when
        # profiling is on — absent keys keep the payload stable otherwise.
        if "cypher_profile" in self.diagnostics:
            diagnostics["cypher_profile"] = self.diagnostics["cypher_profile"]
        return {
            "question": self.question,
            "answer": self.answer,
            "cypher": self.cypher,
            "retrieval_source": self.retrieval_source,
            "used_fallback": self.used_fallback,
            "context": self.context_snippets,
            "rows": rows,
            # JSON-safe provenance subset: routing decision, error taxonomy
            # and per-stage wall-clock timings from the pipeline kernel.
            "diagnostics": diagnostics,
        }


class ChatIYP:
    """The ChatIYP system: ``ChatIYP().ask("...")``."""

    def __init__(
        self,
        dataset: Optional[IYPDataset] = None,
        config: Optional[ChatIYPConfig] = None,
        observers: Optional[list[PipelineObserver]] = None,
    ) -> None:
        self.config = config or ChatIYPConfig()
        self.dataset = dataset or load_dataset(
            self.config.dataset_size, self.config.dataset_seed
        )
        self.store = self.dataset.store
        self.engine = CypherEngine(
            self.store,
            compile_expressions=self.config.compile_expressions,
            csr_snapshot=self.config.csr_snapshot,
        )
        self.schema_text = introspect_schema(self.store).describe()

        gazetteer = Gazetteer.from_dataset(self.dataset)
        error_model = ErrorModel(
            base=self.config.error_base,
            slope=self.config.error_slope,
            power=self.config.error_power,
            syntax_share=self.config.syntax_error_share,
        )
        embedding = HashingEmbedding(dim=self.config.embedding_dim)
        self.llm = SimulatedLLM(
            gazetteer=gazetteer,
            seed=self.config.seed,
            error_model=error_model,
            embedding=embedding,
        )

        text2cypher = TextToCypherRetriever(
            engine=self.engine,
            llm=self.llm,
            schema_text=self.schema_text,
            prompt_builder=text2cypher_prompt,
            capture_profile=self.config.capture_cypher_profile,
            row_budget=self.config.cypher_row_budget,
        )
        vector = None
        # Non-default routing policies consult the vector retriever even
        # when the symbolic-first fallback is switched off.
        if self.config.use_vector_fallback or self.config.routing_policy != "symbolic-first":
            vector = VectorContextRetriever(
                self.store, top_k=self.config.vector_top_k
            )
        reranker = None
        if self.config.use_reranker:
            reranker = LLMReranker(
                self.llm,
                top_n=self.config.rerank_top_n,
                prompt_builder=rerank_prompt,
            )
        synthesizer = ResponseSynthesizer(self.llm, prompt_builder=answer_prompt)
        # The metrics registry rides along on every query (per-stage latency
        # aggregates + routing counters); the HTTP server serves it under
        # /metrics, and callers can attach further observers (tracing, ...).
        self.metrics = MetricsRegistry()
        # Engine-side compilation counters are cumulative; mirror them into
        # the registry as deltas so /metrics stays monotonic even when the
        # engine is also exercised outside the pipeline (run_cypher, evals).
        self._compile_reported: dict[str, int] = {}
        self._csr_reported: dict[str, int] = {}
        # Serving hardening: circuit breaker around the symbolic path
        # (state transitions are counted in the metrics registry), retry
        # with seeded jittered backoff for transient LLM-stage failures,
        # and a bounded LRU answer cache keyed so that config changes and
        # graph mutations invalidate automatically.
        self.breaker: Optional[CircuitBreaker] = None
        if self.config.breaker_failure_threshold > 0:
            self.breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                reset_after_ms=self.config.breaker_reset_ms,
                on_transition=lambda old, new: self.metrics.increment(
                    f"breaker.{new.value}"
                ),
            )
        self.retry_policy: Optional[RetryPolicy] = None
        if self.config.llm_retry_attempts > 1:
            self.retry_policy = RetryPolicy(
                attempts=self.config.llm_retry_attempts,
                backoff_ms=self.config.llm_retry_backoff_ms,
                seed=self.config.seed,
                on_deadline_capped=lambda: self.metrics.increment(
                    "retry.deadline_capped"
                ),
            )
        retry_policy = self.retry_policy
        self.answer_cache: Optional[AnswerCache] = (
            AnswerCache(self.config.answer_cache_size)
            if self.config.answer_cache_size > 0
            else None
        )
        # Concurrent duplicates of the same question share one pipeline
        # execution (the cache handles sequential repeats).
        self.inflight: Optional[SingleFlight] = (
            SingleFlight() if self.config.coalesce_inflight else None
        )
        self._config_fingerprint = self.config.fingerprint()
        self.pipeline = RetrieverQueryEngine(
            text2cypher=text2cypher,
            vector=vector,
            reranker=reranker,
            synthesizer=synthesizer,
            vector_fallback=self.config.use_vector_fallback,
            sparse_row_threshold=self.config.sparse_row_threshold,
            routing_policy=make_routing_policy(self.config.routing_policy),
            observers=[self.metrics, *(observers or [])],
            breaker=self.breaker,
            retry_policy=retry_policy,
        )
        if self.config.use_decomposition:
            from ..rag.decompose import DecomposingQueryEngine, QuestionDecomposer

            self.pipeline = DecomposingQueryEngine(
                self.pipeline, QuestionDecomposer(gazetteer)
            )

    # ------------------------------------------------------------------

    @staticmethod
    def _copy_response(
        response: ChatResponse, *, cache_hit: bool = False, coalesced: bool = False
    ) -> ChatResponse:
        """Copy-on-share: cache hits and coalesced followers get their own
        mutable diagnostics/context so callers never corrupt the shared
        entry (or each other)."""
        diagnostics = copy.deepcopy(response.diagnostics)
        if cache_hit:
            diagnostics["cache_hit"] = True
        if coalesced:
            diagnostics["coalesced"] = True
        return replace(
            response,
            context_snippets=list(response.context_snippets),
            diagnostics=diagnostics,
        )

    def _sync_compile_metrics(self) -> None:
        """Push engine ``compile.*`` counter deltas into the registry."""
        for key, total in self.engine.compile_metrics().items():
            delta = total - self._compile_reported.get(key, 0)
            if delta > 0:
                self.metrics.increment(key, by=delta)
                self._compile_reported[key] = total
        self._sync_csr_metrics()

    def _sync_csr_metrics(self) -> None:
        """Push engine/store ``csr.*`` counter deltas into the registry."""
        for key, total in self.engine.csr_metrics().items():
            delta = total - self._csr_reported.get(key, 0)
            if delta > 0:
                self.metrics.increment(key, by=delta)
                self._csr_reported[key] = total

    def _request_key(self, text: str) -> tuple:
        """Identity of a request for caching/coalescing purposes."""
        return AnswerCache.key(text, self._config_fingerprint, self.store.stats_version)

    def _execute(
        self, text: str, cache_key: Optional[tuple], deadline: Optional[Deadline]
    ) -> ChatResponse:
        """Run the full pipeline once and (maybe) cache the answer."""
        # Fault-injection site: one full pipeline execution. Injected
        # latency here makes a slow single-flight leader (followers time
        # out against their own deadlines and fall through); an injected
        # error is a leader failure (followers re-execute independently).
        fault_point("serving.execute")
        pipeline_response: PipelineResponse = self.pipeline.query(
            text, deadline=deadline
        )
        degraded = pipeline_response.diagnostics.get("degraded", ())
        for reason in degraded:
            self.metrics.increment(f"degraded.{reason}")
        response = ChatResponse(
            question=text,
            answer=pipeline_response.answer,
            cypher=pipeline_response.cypher,
            retrieval_source=pipeline_response.retrieval_source,
            used_fallback=pipeline_response.used_fallback,
            context_snippets=[item.node.text for item in pipeline_response.context],
            result=pipeline_response.result,
            diagnostics=pipeline_response.diagnostics,
        )
        self._sync_compile_metrics()
        # Degraded answers are artifacts of load/deadline pressure, not the
        # question — never let them shadow a full answer in the cache.
        if self.answer_cache is not None and cache_key is not None and not degraded:
            self.answer_cache.put(cache_key, response)
        return response

    def ask(
        self,
        question: str,
        deadline_ms: Optional[float] = None,
        *,
        deadline: Optional[Deadline] = None,
    ) -> ChatResponse:
        """Answer a natural-language question about the IYP graph.

        ``deadline_ms`` caps this request's wall-clock budget (falling back
        to ``config.deadline_ms``; ``None`` = unbounded).  Batch callers
        may instead pass an already-running ``deadline`` so queueing time
        counts against the budget.  A blown budget degrades the pipeline
        gracefully — the response then lists what was shed under
        ``diagnostics["degraded"]``.  Answers are served from the bounded
        LRU cache when an identical question was answered under the same
        configuration against the same graph version, and concurrent
        duplicates coalesce onto a single pipeline execution
        (``diagnostics["coalesced"]`` marks the followers).
        """
        if not question or not question.strip():
            return ChatResponse(
                question=question,
                answer="Please ask a question about Internet infrastructure.",
                cypher=None,
                retrieval_source="none",
                used_fallback=False,
            )
        text = question.strip()
        self.metrics.increment("ask.requests")

        cache_key = None
        if self.answer_cache is not None or self.inflight is not None:
            cache_key = self._request_key(text)
        if self.answer_cache is not None:
            cached = self.answer_cache.get(cache_key)
            if cached is not None:
                self.metrics.increment("cache.hit")
                return self._copy_response(cached, cache_hit=True)
            self.metrics.increment("cache.miss")

        if deadline is None:
            budget_ms = (
                deadline_ms if deadline_ms is not None else self.config.deadline_ms
            )
            deadline = Deadline.start(budget_ms) if budget_ms else None

        if self.inflight is None:
            return self._execute(text, cache_key, deadline)

        leader, flight = self.inflight.begin(cache_key)
        if not leader:
            # Wait no longer than our own remaining budget; a follower that
            # times out (or whose leader failed) executes independently —
            # coalescing must never make a request less reliable.
            timeout_s = (
                deadline.remaining_ms() / 1000.0 if deadline is not None else None
            )
            status = flight.wait(timeout_s)
            if status == _singleflight.OK:
                self.metrics.increment("singleflight.coalesced")
                return self._copy_response(flight.value, coalesced=True)
            self.metrics.increment("singleflight.fallthrough")
            return self._execute(text, cache_key, deadline)
        try:
            response = self._execute(text, cache_key, deadline)
        except BaseException as exc:
            self.inflight.finish(flight, error=exc)
            raise
        self.inflight.finish(flight, value=response)
        return response

    def ask_batch(
        self,
        questions: Iterable[str],
        deadline_ms: Union[float, Sequence[Optional[float]], None] = None,
        workers: int = 4,
    ) -> list[BatchOutcome]:
        """Answer many questions concurrently through the batch runner.

        ``deadline_ms`` is either one budget applied to every question or a
        sequence aligned with ``questions`` (``None`` entries fall back to
        ``config.deadline_ms``).  Every deadline starts **now** — time an
        item spends queued behind earlier items counts against its budget,
        exactly as it would for a request waiting in an admission queue.

        Returns one :class:`~repro.parallel.BatchOutcome` per question, in
        input order; a failed item carries its exception instead of taking
        the whole batch down.  Identical concurrent questions coalesce
        through the single-flight layer like any other concurrent asks.
        """
        question_list = list(questions)
        self.metrics.increment("ask.batch_requests")
        if not question_list:
            return []
        self.metrics.increment("ask.batch_questions", by=len(question_list))
        if deadline_ms is None or isinstance(deadline_ms, (int, float)):
            budgets: list[Optional[float]] = [deadline_ms] * len(question_list)
        else:
            budgets = list(deadline_ms)
            if len(budgets) != len(question_list):
                raise ValueError(
                    f"deadline_ms sequence length {len(budgets)} != "
                    f"question count {len(question_list)}"
                )
        deadlines: list[Optional[Deadline]] = []
        for budget in budgets:
            ms = budget if budget is not None else self.config.deadline_ms
            deadlines.append(Deadline.start(ms) if ms else None)
        runner = ParallelRunner(workers=max(1, workers), thread_name_prefix="ask-batch")
        return runner.map_outcomes(
            lambda index: self.ask(question_list[index], deadline=deadlines[index]),
            range(len(question_list)),
        )

    def run_cypher(self, query: str, **params: Any) -> ResultSet:
        """Escape hatch: run raw Cypher against the underlying graph."""
        return self.engine.run(query, **params)

    def serving_snapshot(self) -> dict[str, Any]:
        """Live state of the serving-hardening layer (for ``/metrics``)."""
        injector = active_injector()
        self._sync_compile_metrics()
        return {
            # Cumulative expression-compilation counters straight from the
            # engine (cache hits, fused operators, fast-path executions).
            "compile": self.engine.compile_metrics(),
            # CSR snapshot lifecycle (builds, hits, invalidations) plus how
            # often executions actually traversed the columnar arrays.
            "csr": self.engine.csr_metrics(),
            "cache": self.answer_cache.stats() if self.answer_cache else None,
            "breaker": self.breaker.snapshot() if self.breaker else None,
            "inflight": self.inflight.snapshot() if self.inflight else None,
            "retry": (
                {
                    "retries": self.retry_policy.retries,
                    "deadline_capped": self.retry_policy.deadline_capped,
                }
                if self.retry_policy
                else None
            ),
            # Process-global fault injector (None outside chaos/staging runs).
            "faults": injector.snapshot() if injector else None,
        }

    @property
    def schema(self) -> str:
        """The schema text injected into the text-to-Cypher prompt."""
        return self.schema_text
