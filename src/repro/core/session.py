"""Multi-turn chat sessions with follow-up resolution.

The public ChatIYP web application is conversational; users ask follow-ups
like "what about AS15169?" or "which IXPs is it a member of?".  The
stateless pipeline cannot resolve those, so :class:`ChatSession` keeps a
small dialogue state (the entities and phrasing of recent turns) and
rewrites follow-ups into self-contained questions before asking:

* **pronoun injection** — "it" / "its" / "this AS" resolve to the most
  recently discussed AS;
* **elliptical swap** — "and AS15169?" / "what about Japan?" re-instantiate
  the previous question with the new entity.

The rewritten question is recorded in the response diagnostics, keeping the
transparency contract: users can always see what was actually asked.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ..nlp.entities import EntityExtractor, ExtractedEntities
from .chatiyp import ChatIYP, ChatResponse

__all__ = ["ChatSession", "Turn"]

_FOLLOWUP_LEAD_RE = re.compile(
    r"^\s*(?:and|what about|how about|what of|same for|also)\b[\s:,]*", re.IGNORECASE
)
_PRONOUN_RES = [
    (re.compile(r"\bits\b", re.IGNORECASE), "{asn}'s"),
    (re.compile(r"\bit\b", re.IGNORECASE), "{asn}"),
    (re.compile(r"\b(?:this|that)\s+(?:as|network|operator)\b", re.IGNORECASE), "{asn}"),
    (re.compile(r"\bthey\b", re.IGNORECASE), "{asn}"),
]
_ASN_RE = re.compile(r"\bAS\s?\d{1,7}\b", re.IGNORECASE)


@dataclass
class Turn:
    """One dialogue turn: what the user typed, what was asked, the answer."""

    user_question: str
    resolved_question: str
    response: ChatResponse


@dataclass
class _DialogueState:
    last_question: Optional[str] = None
    last_asn: Optional[int] = None
    last_country: Optional[str] = None  # full name as used in text
    last_domain: Optional[str] = None
    last_ixp: Optional[str] = None


class ChatSession:
    """A stateful conversation over one :class:`ChatIYP` instance."""

    def __init__(self, chatiyp: ChatIYP, max_history: int = 50) -> None:
        self.chatiyp = chatiyp
        self.max_history = max_history
        self.history: list[Turn] = []
        self._state = _DialogueState()
        self._extractor = EntityExtractor(chatiyp.llm.text2cypher.extractor.gazetteer)

    # ------------------------------------------------------------------

    def ask(self, question: str) -> ChatResponse:
        """Resolve follow-up references, ask, and record the turn."""
        resolved = self.resolve(question)
        response = self.chatiyp.ask(resolved)
        if resolved != question:
            response.diagnostics["resolved_question"] = resolved
        self._remember(resolved)
        self.history.append(
            Turn(user_question=question, resolved_question=resolved, response=response)
        )
        if len(self.history) > self.max_history:
            del self.history[: len(self.history) - self.max_history]
        return response

    def resolve(self, question: str) -> str:
        """Rewrite a follow-up into a self-contained question (idempotent
        for questions that are already self-contained)."""
        stripped = question.strip()
        entities = self._extractor.extract(stripped)

        swapped = self._try_elliptical_swap(stripped, entities)
        if swapped is not None:
            return swapped

        if not entities.asns and self._state.last_asn is not None:
            injected = self._inject_pronouns(stripped, self._state.last_asn)
            if injected != stripped:
                return injected
        return stripped

    def reset(self) -> None:
        """Forget all dialogue state and history."""
        self.history.clear()
        self._state = _DialogueState()

    # ------------------------------------------------------------------

    def _try_elliptical_swap(
        self, question: str, entities: ExtractedEntities
    ) -> Optional[str]:
        """Handle "what about X?" by re-instantiating the previous question."""
        match = _FOLLOWUP_LEAD_RE.match(question)
        if match is None or self._state.last_question is None:
            return None
        remainder = question[match.end():].strip(" ?.!")
        # The remainder must be essentially just the new entity mention.
        if len(remainder.split()) > 4:
            return None
        previous = self._state.last_question
        if entities.asns:
            return _ASN_RE.sub(f"AS{entities.asns[0]}", previous, count=1)
        if entities.countries and self._state.last_country:
            new_name = self._country_name(entities.countries[0]) or remainder
            return re.sub(
                re.escape(self._state.last_country), new_name, previous,
                count=1, flags=re.IGNORECASE,
            )
        if entities.domains and self._state.last_domain:
            return previous.replace(self._state.last_domain, entities.domains[0])
        if entities.ixps and self._state.last_ixp:
            return previous.replace(self._state.last_ixp, entities.ixps[0])
        return None

    def _inject_pronouns(self, question: str, asn: int) -> str:
        rewritten = question
        for pattern, replacement in _PRONOUN_RES:
            new_text = pattern.sub(replacement.format(asn=f"AS{asn}"), rewritten, count=1)
            if new_text != rewritten:
                return new_text
        return rewritten

    def _remember(self, resolved: str) -> None:
        entities = self._extractor.extract(resolved)
        if entities.asns:
            self._state.last_asn = entities.asns[0]
        if entities.countries:
            name = self._country_name(entities.countries[0])
            if name and name.lower() in resolved.lower():
                self._state.last_country = name
        if entities.domains:
            self._state.last_domain = entities.domains[0]
        if entities.ixps:
            self._state.last_ixp = entities.ixps[0]
        if entities.asns or entities.countries or entities.domains or entities.ixps:
            self._state.last_question = resolved

    def _country_name(self, code: str) -> Optional[str]:
        gazetteer = self._extractor.gazetteer
        for name, mapped in gazetteer.countries.items():
            if mapped == code and len(name) > 3:
                return name.title()
        return None
