"""SingleFlight — coalesce concurrent duplicate work onto one execution.

The answer cache dedupes *sequential* repeats of a question; it does
nothing for the serving-killer case where N identical requests arrive
while the first is still executing — each of them misses the cache and
runs the full pipeline.  :class:`SingleFlight` closes that window: the
first caller to :meth:`begin` a key becomes the **leader** and executes;
every later caller for the same key becomes a **follower** and waits on
the leader's :class:`Flight` instead of executing.

Contract details that matter in practice:

* Followers wait with a timeout (their own remaining deadline); a
  follower that times out — or whose leader failed — falls through and
  executes independently rather than erroring.  Coalescing is an
  optimisation, never a correctness dependency.
* The flight is unregistered *before* its event is set, so a caller
  arriving after completion starts a fresh flight instead of receiving a
  stale result — freshness is the cache's business, not the coalescer's.
* Waiter counts are tracked per flight and exposed via
  :meth:`SingleFlight.snapshot` so servers can report live coalescing
  depth and tests can deterministically wait for followers to park.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Optional

from ..faults import fault_point

__all__ = ["Flight", "SingleFlight"]

#: wait() outcome markers
_PENDING = "pending"
OK = "ok"
FAILED = "failed"
TIMEOUT = "timeout"


class Flight:
    """One in-flight execution: a result slot followers can wait on."""

    __slots__ = ("key", "_event", "value", "error", "waiters", "_lock")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self._event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.waiters = 0
        self._lock = threading.Lock()

    def wait(self, timeout_s: Optional[float] = None) -> str:
        """Block until the leader finishes; returns OK/FAILED/TIMEOUT."""
        with self._lock:
            self.waiters += 1
        try:
            finished = self._event.wait(timeout_s)
        finally:
            with self._lock:
                self.waiters -= 1
        if not finished:
            return TIMEOUT
        return FAILED if self.error is not None else OK

    def _settle(self, value: Any, error: Optional[BaseException]) -> None:
        self.value = value
        self.error = error
        self._event.set()


class SingleFlight:
    """Registry of in-flight executions keyed by request identity."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, Flight] = {}
        self._led = 0
        self._coalesced = 0

    def begin(self, key: Hashable) -> tuple[bool, Flight]:
        """Join the flight for ``key``; returns ``(is_leader, flight)``.

        The first caller for a key leads (and MUST later call
        :meth:`finish` exactly once, even on failure — ``try/finally``);
        everyone else should :meth:`Flight.wait` on the returned flight.
        """
        # Fault-injection site: registry contention / slow leader handoff.
        # Fires before the lock; an injected sleep here widens the window
        # in which concurrent duplicates pile onto one flight.
        fault_point("singleflight.begin")
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                self._coalesced += 1
                return False, flight
            flight = Flight(key)
            self._flights[key] = flight
            self._led += 1
            return True, flight

    def finish(
        self,
        flight: Flight,
        value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Publish the leader's result (or failure) and retire the flight.

        Unregisters before waking waiters so late arrivals never observe
        a completed flight as joinable.
        """
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
        flight._settle(value, error)

    # -- introspection -----------------------------------------------------

    def waiters(self, key: Hashable) -> int:
        """Live follower count parked on ``key`` (0 when not in flight)."""
        with self._lock:
            flight = self._flights.get(key)
        return flight.waiters if flight is not None else 0

    def snapshot(self) -> dict:
        """JSON-friendly state dump for ``/metrics``."""
        with self._lock:
            return {
                "in_flight": len(self._flights),
                "waiting": sum(flight.waiters for flight in self._flights.values()),
                "led": self._led,
                "coalesced": self._coalesced,
            }
