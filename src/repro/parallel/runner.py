"""ParallelRunner — ordered fan-out over a bounded thread pool.

The runner is deliberately small: it maps a function over a list of items
with at most ``workers`` concurrent executions and returns outcomes in
**input order**, never completion order.  Two properties make it safe to
drop into previously-serial code paths:

* ``workers=1`` executes inline on the calling thread — no pool, no
  queues, no thread-identity changes — so the serial path through the
  runner is byte-for-byte the old behaviour, and parallel-vs-serial
  equivalence is a testable property rather than a hope;
* exceptions are captured per item (:class:`BatchOutcome`), so one bad
  question cannot take down a whole batch; callers that want
  fail-on-first-error semantics use :meth:`ParallelRunner.map`, which
  re-raises the earliest (by input index) failure.

Deadline inheritance: ``map``/``map_outcomes`` accept one shared
:class:`~repro.serving.deadline.Deadline`.  Deadlines are absolute
monotonic expiry points, so handing the same object to every worker means
they all expire together; additionally the runner checks it *before*
starting each item and fails the remainder fast once the budget is gone —
under a blown deadline a 100-item batch does not queue 100 doomed
executions.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..serving.deadline import Deadline

__all__ = ["BatchDeadlineExceeded", "BatchOutcome", "ParallelRunner"]


class BatchDeadlineExceeded(TimeoutError):
    """The shared batch deadline expired before this item could start."""


@dataclass
class BatchOutcome:
    """Result of one item in a batch: either a value or a captured error."""

    index: int
    value: Any = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class ParallelRunner:
    """Map a function over items with bounded, order-preserving concurrency."""

    def __init__(self, workers: int = 1, thread_name_prefix: str = "repro-batch") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers
        self.thread_name_prefix = thread_name_prefix
        self._lock = threading.Lock()
        self._tasks_run = 0
        self._tasks_failed = 0

    # -- introspection -----------------------------------------------------

    @property
    def tasks_run(self) -> int:
        """Total items executed (including failures) across all maps."""
        return self._tasks_run

    @property
    def tasks_failed(self) -> int:
        """Total items whose function raised, across all maps."""
        return self._tasks_failed

    def snapshot(self) -> dict:
        """JSON-friendly stats (for ``/metrics``-style reporting)."""
        with self._lock:
            return {
                "workers": self.workers,
                "tasks_run": self._tasks_run,
                "tasks_failed": self._tasks_failed,
            }

    # -- execution ---------------------------------------------------------

    def _run_one(
        self,
        fn: Callable[[Any], Any],
        index: int,
        item: Any,
        deadline: Optional["Deadline"],
    ) -> BatchOutcome:
        if deadline is not None and deadline.expired:
            error: BaseException = BatchDeadlineExceeded(
                f"batch deadline exhausted before item {index} started"
            )
            with self._lock:
                self._tasks_failed += 1
            return BatchOutcome(index=index, error=error)
        try:
            value = fn(item)
        except BaseException as exc:  # noqa: BLE001 - captured per item by design
            with self._lock:
                self._tasks_run += 1
                self._tasks_failed += 1
            return BatchOutcome(index=index, error=exc)
        with self._lock:
            self._tasks_run += 1
        return BatchOutcome(index=index, value=value)

    def map_outcomes(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        deadline: Optional["Deadline"] = None,
    ) -> list[BatchOutcome]:
        """Run ``fn`` over every item; outcomes come back in input order.

        At most ``self.workers`` items execute concurrently.  ``deadline``
        (optional) is shared by all workers: tasks already running consult
        it through whatever ``fn`` does with the ambient budget, and tasks
        not yet started fail fast with :class:`BatchDeadlineExceeded` once
        it expires.
        """
        sequence: Sequence[Any] = list(items)
        if not sequence:
            return []
        effective = min(self.workers, len(sequence))
        if effective == 1:
            # Inline serial path: identical call pattern to pre-batch code.
            return [
                self._run_one(fn, index, item, deadline)
                for index, item in enumerate(sequence)
            ]
        with ThreadPoolExecutor(
            max_workers=effective, thread_name_prefix=self.thread_name_prefix
        ) as pool:
            futures = [
                pool.submit(self._run_one, fn, index, item, deadline)
                for index, item in enumerate(sequence)
            ]
            # submit() order == input order, and _run_one never raises, so
            # gathering futures in submit order restores input order exactly.
            return [future.result() for future in futures]

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        deadline: Optional["Deadline"] = None,
    ) -> list[Any]:
        """Like :meth:`map_outcomes` but unwraps values, re-raising the
        first (by input index) captured failure after the batch settles."""
        outcomes = self.map_outcomes(fn, items, deadline=deadline)
        for outcome in outcomes:
            if not outcome.ok:
                raise outcome.error
        return [outcome.value for outcome in outcomes]
