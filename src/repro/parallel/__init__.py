"""Batch execution layer: concurrent fan-out over the staged pipeline.

The :mod:`repro.parallel` package is the serial→concurrent seam of the
system.  Everything above the Cypher engine used to process exactly one
question at a time; this layer lets the evaluation harness, the HTTP
server's ``POST /ask_batch`` endpoint, and any caller with a list of
questions fan out through the same code paths with bounded concurrency:

* :class:`ParallelRunner` — a bounded thread pool that maps a function
  over items, collecting results **in input order** regardless of
  completion order.  ``workers=1`` runs inline on the calling thread
  (zero threading machinery), which is what makes parallel-vs-serial
  equivalence testable: the same runner API drives both paths.
  An optional shared :class:`~repro.serving.deadline.Deadline` is
  inherited by every task — items that would start after the budget is
  exhausted fail fast instead of executing.
* :class:`SingleFlight` — an in-flight request coalescer.  When many
  concurrent callers ask for the same key, one becomes the **leader**
  and executes; the rest wait on the leader's result and never touch
  the pipeline.  The concurrent-duplicate analogue of the answer cache
  (which only dedupes *sequential* repeats).

Everything here is stdlib-only and transport-agnostic: the runner knows
nothing about HTTP or evaluation, and the coalescer knows nothing about
what a "result" is.
"""

from .runner import BatchDeadlineExceeded, BatchOutcome, ParallelRunner
from .singleflight import Flight, SingleFlight

__all__ = [
    "BatchDeadlineExceeded",
    "BatchOutcome",
    "Flight",
    "ParallelRunner",
    "SingleFlight",
]
