"""Serving-hardening tests for the HTTP layer.

Covers the error paths the API contract promises (413 oversized body,
400 malformed JSON / bad deadline, 403 write query), the admission
controller's 503 + ``Retry-After`` shedding, the ``/metrics`` serving
section, and the headline 32-thread stress test: concurrent ``/ask``
traffic with a deadline configured must produce no exceptions, no
lost or duplicated metrics, cache hits on repeated questions, and
well-formed shed responses.
"""

from __future__ import annotations

import concurrent.futures
import json
import urllib.error
import urllib.request

import pytest

from repro.core import ChatIYP, ChatIYPConfig
from repro.rag.types import RetrievalResult
from repro.server import start_background


def _get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
        return resp.status, json.loads(resp.read()), dict(resp.headers)


def _post(port, path, payload=None, raw=None, timeout=30):
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture(scope="module")
def hardened_bot(small_dataset):
    return ChatIYP(
        dataset=small_dataset,
        config=ChatIYPConfig(
            dataset_size="small",
            answer_cache_size=128,
            breaker_failure_threshold=4,
        ),
    )


@pytest.fixture(scope="module")
def hardened_port(hardened_bot):
    server, port = start_background(
        hardened_bot,
        max_concurrency=8,
        max_queue_depth=8,
        queue_timeout_s=30.0,
        retry_after_s=2.0,
        deadline_ms=30_000.0,
    )
    yield port
    server.shutdown()


class TestErrorPaths:
    def test_oversized_body_is_413(self, hardened_port):
        huge = json.dumps({"question": "x" * (70 * 1024)}).encode()
        status, payload, _ = _post(hardened_port, "/ask", raw=huge)
        assert status == 413
        assert "error" in payload

    def test_malformed_json_is_400(self, hardened_port):
        status, payload, _ = _post(hardened_port, "/ask", raw=b"{nope")
        assert status == 400
        assert "error" in payload

    def test_non_object_json_is_400(self, hardened_port):
        status, _, _ = _post(hardened_port, "/ask", raw=b'["a", "b"]')
        assert status == 400

    def test_write_cypher_is_403(self, hardened_port):
        status, payload, _ = _post(
            hardened_port, "/cypher", {"query": "CREATE (n:AS {asn: 1}) RETURN n"}
        )
        assert status == 403
        assert "not allowed" in payload["error"]

    def test_bad_deadline_is_400(self, hardened_port):
        for bad in (-5, 0, "fast", True):
            status, payload, _ = _post(
                hardened_port, "/ask", {"question": "Who is AS2497?", "deadline_ms": bad}
            )
            assert status == 400, bad
            assert "deadline_ms" in payload["error"]


class TestMetricsServingSection:
    def test_serving_state_is_exposed(self, hardened_port):
        _post(hardened_port, "/ask", {"question": "Which country is AS2497 registered in?"})
        status, payload, _ = _get(hardened_port, "/metrics")
        assert status == 200
        serving = payload["serving"]
        assert serving["cache"]["capacity"] == 128
        assert serving["breaker"]["state"] in ("closed", "open", "half_open")
        assert serving["admission"]["max_concurrency"] == 8
        assert serving["admission"]["accepted"] >= 1

    def test_ask_response_carries_hardening_diagnostics(self, hardened_port):
        question = "Which country is AS15169 registered in?"
        _post(hardened_port, "/ask", {"question": question})
        status, payload, _ = _post(hardened_port, "/ask", {"question": question})
        assert status == 200
        assert payload["diagnostics"]["cache_hit"] is True
        assert payload["diagnostics"]["degraded"] == []


class TestLoadShedding:
    def test_overload_sheds_503_with_retry_after(self, small_dataset):
        bot = ChatIYP(
            dataset=small_dataset,
            config=ChatIYPConfig(dataset_size="small", answer_cache_size=0),
        )
        server, port = start_background(
            bot,
            max_concurrency=1,
            max_queue_depth=0,
            queue_timeout_s=0.0,
            retry_after_s=3.0,
        )
        try:
            def ask(i):
                return _post(
                    port, "/ask",
                    {"question": f"Which country is AS{2497 + i} registered in?"},
                )

            with concurrent.futures.ThreadPoolExecutor(max_workers=12) as pool:
                outcomes = list(pool.map(ask, range(12)))
        finally:
            server.shutdown()
        statuses = [status for status, _, _ in outcomes]
        assert set(statuses) <= {200, 503}
        shed = [(p, h) for status, p, h in outcomes if status == 503]
        assert shed, "expected at least one shed request under 1-slot concurrency"
        for payload, headers in shed:
            assert headers.get("Retry-After") == "3"
            assert "overloaded" in payload["error"]
        counters = bot.metrics.snapshot()["counters"]
        assert counters.get("server.shed", 0) == len(shed)


class TestConcurrentStress:
    """The acceptance stress test: 32 threads, deadline configured."""

    QUESTIONS = [
        "Which country is AS2497 registered in?",
        "Which country is AS15169 registered in?",
        "How many prefixes does AS2497 originate?",
        "What organization manages AS13335?",
    ]

    def test_32_thread_ask_stress(self, small_dataset):
        bot = ChatIYP(
            dataset=small_dataset,
            config=ChatIYPConfig(
                dataset_size="small",
                answer_cache_size=64,
                breaker_failure_threshold=4,
            ),
        )
        server, port = start_background(
            bot,
            max_concurrency=4,
            max_queue_depth=8,
            queue_timeout_s=0.25,
            retry_after_s=1.0,
            deadline_ms=30_000.0,
        )
        requests_per_thread = 4
        exceptions = []
        outcomes = []

        def worker(tid):
            for i in range(requests_per_thread):
                question = self.QUESTIONS[(tid + i) % len(self.QUESTIONS)]
                try:
                    outcomes.append(_post(port, "/ask", {"question": question}))
                except Exception as exc:  # pragma: no cover - the assertion target
                    exceptions.append(exc)

        try:
            with concurrent.futures.ThreadPoolExecutor(max_workers=32) as pool:
                list(pool.map(worker, range(32)))
        finally:
            server.shutdown()

        assert not exceptions, exceptions
        assert len(outcomes) == 32 * requests_per_thread
        ok = [payload for status, payload, _ in outcomes if status == 200]
        shed = [(payload, headers) for status, payload, headers in outcomes
                if status == 503]
        assert len(ok) + len(shed) == len(outcomes)
        assert ok, "no request survived admission control"

        # Shed responses are well-formed 503s with Retry-After.
        for payload, headers in shed:
            assert "Retry-After" in headers
            assert int(headers["Retry-After"]) >= 1

        # Same question -> same answer, regardless of interleaving/caching.
        by_question = {}
        for payload in ok:
            by_question.setdefault(payload["question"], set()).add(payload["answer"])
        assert all(len(answers) == 1 for answers in by_question.values())

        counters = bot.metrics.snapshot()["counters"]
        cache_stats = bot.answer_cache.stats()
        # Cache hit-rate > 0 on repeated questions.
        assert counters.get("cache.hit", 0) > 0
        assert cache_stats["hit_rate"] > 0.0
        # No lost or duplicated metrics: every 200 is exactly one pipeline
        # ask (counted once), every 503 is exactly one shed, and every ask
        # was either a cache hit or a cache miss.
        assert counters["ask.requests"] == len(ok)
        assert counters.get("server.shed", 0) == len(shed)
        assert (
            counters.get("cache.hit", 0) + counters.get("cache.miss", 0)
            == counters["ask.requests"]
        )
        # Stage calls line up with cache misses (each miss ran the full
        # pipeline exactly once; hits skipped it, and misses coalesced onto
        # a concurrent identical in-flight request rode its execution).
        stages = bot.metrics.snapshot()["stages"]
        assert stages["synthesis"]["calls"] == (
            counters["cache.miss"] - counters.get("singleflight.coalesced", 0)
        )


class TestBreakerOverHttp:
    def test_tripped_breaker_reroutes_to_vector(self, small_dataset, monkeypatch):
        bot = ChatIYP(
            dataset=small_dataset,
            config=ChatIYPConfig(
                dataset_size="small",
                answer_cache_size=0,
                breaker_failure_threshold=2,
            ),
        )
        retriever = bot.pipeline.text2cypher

        def failing_retrieve(question):
            return RetrievalResult(
                source="text2cypher",
                cypher="MATCH (broken",
                error="CypherRuntimeError: engine exploded",
            )

        monkeypatch.setattr(retriever, "retrieve", failing_retrieve)
        server, port = start_background(bot)
        try:
            statuses = []
            for asn in (2497, 15169, 13335):
                status, payload, _ = _post(
                    port, "/ask",
                    {"question": f"Which country is AS{asn} registered in?"},
                )
                statuses.append(status)
            assert statuses == [200, 200, 200]
            # Third request hit the open breaker: rerouted to vector-only.
            assert "symbolic_skipped_breaker_open" in payload["diagnostics"]["degraded"]
            assert payload["retrieval_source"] == "vector"
            _, metrics, _ = _get(port, "/metrics")
        finally:
            server.shutdown()
        assert metrics["serving"]["breaker"]["state"] == "open"
        assert metrics["counters"].get("breaker.open", 0) >= 1
        assert metrics["counters"].get("degraded.symbolic_skipped_breaker_open", 0) >= 1
