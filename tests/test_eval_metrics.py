"""Tests for BLEU, ROUGE, BERTScore and G-Eval."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    BertScorer,
    GEvalMetric,
    corpus_bleu,
    rouge_all,
    rouge_l,
    rouge_n,
    sentence_bleu,
)

texts = st.lists(
    st.sampled_from("the a cat dog sat mat on ran big 42 5.3 as2497".split()),
    min_size=1, max_size=15,
).map(" ".join)


class TestBleu:
    def test_identity_is_one(self):
        assert sentence_bleu("the cat sat on the mat", "the cat sat on the mat") == pytest.approx(1.0)

    def test_disjoint_is_zero_without_smoothing(self):
        assert corpus_bleu(["aa bb cc dd"], ["xx yy zz ww"]) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        score = sentence_bleu("the cat sat on the mat", "the dog sat on the mat")
        assert 0.0 < score < 1.0

    def test_brevity_penalty(self):
        short = sentence_bleu("the cat", "the cat sat on the mat today")
        full = sentence_bleu("the cat sat on the mat today", "the cat sat on the mat today")
        assert short < full

    def test_multiple_references_max_matching(self):
        score = sentence_bleu(
            "the cat sat down", ["a dog ran off", "the cat sat down"]
        )
        assert score == pytest.approx(1.0)

    def test_empty_candidate(self):
        assert sentence_bleu("", "anything here") == 0.0

    def test_candidate_shorter_than_ngram_order(self):
        assert sentence_bleu("one two", "one two") == 0.0  # no 3/4-grams at all

    def test_smoothing_rescues_rephrasings(self):
        # Same facts, different wording: BLEU is harsh but non-zero.
        score = sentence_bleu(
            "The percent is 5.3.",
            "According to the IYP graph, the share is 5.3%.",
        )
        assert 0.0 < score < 0.4

    def test_corpus_bleu_requires_alignment(self):
        with pytest.raises(ValueError):
            corpus_bleu(["a"], ["a", "b"])

    @given(texts)
    @settings(max_examples=30, deadline=None)
    def test_identity_property(self, text):
        if len(text.split()) >= 4:
            assert sentence_bleu(text, text) == pytest.approx(1.0)

    @given(texts, texts)
    @settings(max_examples=30, deadline=None)
    def test_range_property(self, left, right):
        assert 0.0 <= sentence_bleu(left, right) <= 1.0


class TestRouge:
    def test_identity(self):
        score = rouge_n("the cat sat", "the cat sat", 1)
        assert score.f1 == pytest.approx(1.0)

    def test_disjoint(self):
        assert rouge_n("aa bb", "cc dd", 1).f1 == 0.0

    def test_precision_recall_distinction(self):
        # candidate ⊂ reference: precision 1, recall < 1
        score = rouge_n("the cat", "the cat sat on the mat", 1)
        assert score.precision == pytest.approx(1.0)
        assert score.recall < 1.0

    def test_rouge2(self):
        score = rouge_n("the cat sat", "the cat ran", 2)
        assert score.f1 == pytest.approx(0.5)

    def test_rouge_l_subsequence(self):
        # LCS of "a b c d" and "a x c y" is "a c" (2 of 4).
        score = rouge_l("a b c d", "a x c y")
        assert score.f1 == pytest.approx(0.5)

    def test_rouge_l_order_sensitivity(self):
        in_order = rouge_l("one two three", "one two three")
        shuffled = rouge_l("three two one", "one two three")
        assert shuffled.f1 < in_order.f1

    def test_empty_strings(self):
        assert rouge_n("", "", 1).f1 == 0.0
        assert rouge_l("", "x").f1 == 0.0

    def test_rouge_all_keys(self):
        scores = rouge_all("a b", "a b")
        assert set(scores) == {"rouge1", "rouge2", "rougeL"}

    @given(texts, texts)
    @settings(max_examples=30, deadline=None)
    def test_f1_bounded(self, left, right):
        for score in rouge_all(left, right).values():
            assert 0.0 <= score.f1 <= 1.0


class TestBertScore:
    @pytest.fixture(scope="class")
    def scorer(self):
        return BertScorer()

    def test_identity(self, scorer):
        assert scorer.score("the cat sat", "the cat sat").f1 == pytest.approx(1.0)

    def test_empty_both(self, scorer):
        assert scorer.score("", "").f1 == 1.0

    def test_empty_one_side(self, scorer):
        assert scorer.score("", "x").f1 == 0.0

    def test_paraphrase_scores_higher_than_unrelated(self, scorer):
        reference = "The organization managing AS2497 is IIJ."
        paraphrase = "AS2497 is managed by the organization IIJ."
        unrelated = "Bake the cake at 180 degrees for an hour."
        assert scorer.score(paraphrase, reference).f1 > scorer.score(unrelated, reference).f1

    def test_ceiling_effect(self, scorer):
        # Even unrelated fluent sentences score fairly high (anisotropy).
        score = scorer.score(
            "The rank of the domain is 120.",
            "The country is Germany.",
        )
        assert score.f1 > 0.5

    def test_rescaling_spreads_scores(self):
        raw = BertScorer(rescale_with_baseline=False)
        rescaled = BertScorer(rescale_with_baseline=True, baseline=0.6)
        candidate = "The rank is 120."
        reference = "The country is Germany."
        assert rescaled.score(candidate, reference).f1 < raw.score(candidate, reference).f1

    def test_measure_baseline(self, scorer):
        texts_list = ["the cat sat", "a dog ran", "rain in spain", "routing is fun"]
        baseline = scorer.measure_baseline(texts_list, pairs=10)
        assert 0.0 <= baseline <= 1.0

    @given(texts, texts)
    @settings(max_examples=20, deadline=None)
    def test_symmetric_f1_range(self, left, right):
        scorer = BertScorer()
        assert 0.0 <= scorer.score(left, right).f1 <= 1.0 + 1e-9


class TestGEvalMetric:
    @pytest.fixture(scope="class")
    def metric(self, chatiyp_small):
        return GEvalMetric(chatiyp_small.llm)

    def test_correct_answer_high(self, metric):
        score = metric.score(
            "What is the percentage of Japan's population in AS2497?",
            "The percent is 5.3.",
            "The share is 5.3%.",
            {"5.3"},
        )
        assert score.score > 0.75
        assert score.rating >= 4

    def test_wrong_answer_low(self, metric):
        score = metric.score(
            "What is the percentage of Japan's population in AS2497?",
            "The percent is 99.9.",
            "The share is 5.3%.",
            {"5.3"},
        )
        assert score.score < 0.3

    def test_breakdown_present(self, metric):
        score = metric.score("q", "The value is 5.", "The value is 5.", {"5"})
        assert 0 <= score.factuality <= 1
        assert 0 <= score.relevance <= 1
        assert 0 <= score.informativeness <= 1
