"""Tests for schema introspection and CSV import/export."""

import io

import pytest

from repro.graph import GraphStore, introspect_schema
from repro.graph.csv_io import (
    export_graph,
    export_to_directory,
    import_from_directory,
    import_graph,
)


@pytest.fixture()
def store():
    store = GraphStore()
    iij = store.create_node(["AS"], {"asn": 2497, "name": "IIJ"})
    jp = store.create_node(["Country"], {"country_code": "JP"})
    store.create_relationship(iij.node_id, "COUNTRY", jp.node_id)
    store.create_relationship(iij.node_id, "POPULATION", jp.node_id, {"percent": 5.3})
    return store


class TestSchemaIntrospection:
    def test_node_labels_and_counts(self, store):
        schema = introspect_schema(store)
        assert schema.node_labels == {"AS": 1, "Country": 1}

    def test_node_properties_sorted(self, store):
        schema = introspect_schema(store)
        assert schema.node_properties["AS"] == ("asn", "name")

    def test_relationship_patterns(self, store):
        schema = introspect_schema(store)
        patterns = {rel.pattern() for rel in schema.relationships}
        assert "(:AS)-[:COUNTRY]->(:Country)" in patterns
        assert "(:AS)-[:POPULATION]->(:Country)" in patterns

    def test_relationship_property_keys(self, store):
        schema = introspect_schema(store)
        population = next(r for r in schema.relationships if r.rel_type == "POPULATION")
        assert population.property_keys == ("percent",)

    def test_describe_renders_prompt_text(self, store):
        text = introspect_schema(store).describe()
        assert "(:AS {asn, name})" in text
        assert "(:AS)-[:POPULATION]->(:Country) {percent}" in text

    def test_describe_respects_max_relationships(self, store):
        text = introspect_schema(store).describe(max_relationships=1)
        assert text.count("->") == 1

    def test_has_label_and_types(self, store):
        schema = introspect_schema(store)
        assert schema.has_label("AS")
        assert not schema.has_label("Prefix")
        assert schema.relationship_types() == ["COUNTRY", "POPULATION"]

    def test_multilabel_node_counts_once_per_label(self):
        store = GraphStore()
        store.create_node(["AS", "Legacy"], {"asn": 1})
        schema = introspect_schema(store)
        assert schema.node_labels == {"AS": 1, "Legacy": 1}


class TestCsvRoundtrip:
    def test_stream_roundtrip(self, store):
        nodes_file, rels_file = io.StringIO(), io.StringIO()
        export_graph(store, nodes_file, rels_file)
        nodes_file.seek(0)
        rels_file.seek(0)
        loaded = import_graph(nodes_file, rels_file)
        assert loaded.node_count == store.node_count
        assert loaded.relationship_count == store.relationship_count
        iij = next(loaded.nodes_by_property("AS", "asn", 2497))
        assert iij["name"] == "IIJ"

    def test_directory_roundtrip(self, store, tmp_path):
        export_to_directory(store, tmp_path / "dump")
        loaded = import_from_directory(tmp_path / "dump")
        assert loaded.node_count == 2
        rels = list(loaded.all_relationships())
        assert {rel.rel_type for rel in rels} == {"COUNTRY", "POPULATION"}
        population = next(r for r in rels if r.rel_type == "POPULATION")
        assert population["percent"] == 5.3

    def test_roundtrip_preserves_list_properties(self, tmp_path):
        store = GraphStore()
        store.create_node(["AS"], {"asn": 1, "tags": ["a", "b"]})
        export_to_directory(store, tmp_path)
        loaded = import_from_directory(tmp_path)
        node = next(loaded.nodes_by_label("AS"))
        assert node["tags"] == ["a", "b"]

    def test_roundtrip_preserves_multi_labels(self, tmp_path):
        store = GraphStore()
        store.create_node(["AS", "Legacy"], {"asn": 1})
        export_to_directory(store, tmp_path)
        loaded = import_from_directory(tmp_path)
        node = next(loaded.nodes_by_label("Legacy"))
        assert node.labels == frozenset({"AS", "Legacy"})

    def test_import_rejects_bad_header(self):
        nodes = io.StringIO("wrong,header,here\n")
        rels = io.StringIO("start_id,type,end_id,properties\n")
        with pytest.raises(ValueError):
            import_graph(nodes, rels)

    def test_import_remaps_ids(self, store, tmp_path):
        # Delete and recreate so original ids are non-contiguous.
        extra = store.create_node(["Tag"], {"label": "x"})
        store.delete_node(extra.node_id)
        export_to_directory(store, tmp_path)
        loaded = import_from_directory(tmp_path)
        assert sorted(n.node_id for n in loaded.all_nodes()) == [0, 1]
