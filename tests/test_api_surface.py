"""Guards the public API surface documented in docs/api.md."""

import importlib

import pytest

#: module -> symbols that must stay importable
PUBLIC_API = {
    "repro": ["ChatIYP", "ChatResponse", "ChatIYPConfig", "__version__"],
    "repro.graph": [
        "GraphStore", "Node", "Relationship", "Path", "introspect_schema",
        "GraphSchema", "GraphError", "EntityNotFound",
    ],
    "repro.graph.csv_io": ["export_to_directory", "import_from_directory"],
    "repro.cypher": [
        "CypherEngine", "execute", "parse", "parse_expression", "Record",
        "ResultSet", "render_value", "is_read_only", "CypherError",
        "CypherSyntaxError", "CypherTypeError", "CypherRuntimeError",
    ],
    "repro.iyp": [
        "generate_iyp", "IYPConfig", "IYPDataset", "load_dataset",
        "NodeLabel", "RelType", "EDGE_PATTERNS", "schema_summary",
        "AS2497_JP_PERCENT",
    ],
    "repro.iyp.queries": ["COOKBOOK", "run_cookbook_query", "cookbook_names"],
    "repro.embed": [
        "HashingEmbedding", "ContextualEmbedding", "cosine_similarity",
        "VectorStore", "SearchHit",
    ],
    "repro.nlp": [
        "word_tokenize", "ngrams", "token_f1", "levenshtein",
        "EntityExtractor", "Gazetteer", "ExtractedEntities",
    ],
    "repro.llm": [
        "SimulatedLLM", "TextToCypherModel", "CypherGeneration", "ErrorModel",
        "ResultVerbalizer", "AnswerJudge", "JudgeVerdict", "extract_facts",
        "RelevanceScorer",
    ],
    "repro.rag": [
        "RetrieverQueryEngine", "PipelineResponse", "TextToCypherRetriever",
        "VectorContextRetriever", "LLMReranker", "ResponseSynthesizer",
        "QuestionDecomposer", "DecomposingQueryEngine", "describe_node",
        "build_description_corpus",
        # stage-execution kernel
        "Stage", "QueryContext", "StagePipeline", "SymbolicRetrievalStage",
        "FallbackRoutingStage", "RerankStage", "SynthesisStage",
        # routing + observability + error taxonomy
        "RoutingPolicy", "SymbolicFirstPolicy", "VectorOnlyPolicy",
        "HybridMergePolicy", "make_routing_policy", "PipelineObserver",
        "TracingObserver", "MetricsRegistry", "PipelineError",
        "SymbolicTranslationError", "ExecutionError", "EmptyResult",
        "DeadlineExceeded", "CircuitOpen",
    ],
    "repro.core": [
        "ChatIYP", "ChatIYPConfig", "ChatSession", "Turn", "render_response",
        "text2cypher_prompt", "answer_prompt", "rerank_prompt", "judge_prompt",
    ],
    "repro.core.prompts": ["sanitize_user_text", "IYP_FEW_SHOT_EXAMPLES"],
    "repro.eval": [
        "build_cyphereval", "EvalQuestion", "TEMPLATES", "EvaluationHarness",
        "EvaluationReport", "ValidationModel", "gold_facts", "HumanPanel",
        "annotate_report", "figure_2a_table", "figure_2b_table",
        "finding1_table", "finding2_table", "template_table", "report_to_csv",
        "failure_breakdown", "render_failure_table", "improvement_headroom",
        "paraphrase_penalty", "pearson", "spearman", "summary", "histogram",
        "bimodality_coefficient", "bootstrap_ci", "METRIC_KEYS",
    ],
    "repro.eval.metrics": [
        "sentence_bleu", "corpus_bleu", "rouge_all", "BertScorer", "GEvalMetric",
    ],
    "repro.eval.svg": ["figure_2a_svg", "figure_2b_svg", "histogram_svg", "bar_chart_svg"],
    "repro.baselines": ["PythiaBaseline", "VectorOnlyBaseline"],
    "repro.server": ["make_server", "start_background", "serve", "chat_loop"],
    "repro.serving": [
        "Deadline", "AnswerCache", "normalize_question", "CircuitBreaker",
        "BreakerState", "AdmissionController", "RetryPolicy",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for symbol in PUBLIC_API[module_name]:
        assert hasattr(module, symbol), f"{module_name}.{symbol} missing"


def test_api_doc_mentions_every_module():
    from pathlib import Path

    doc = (Path(__file__).resolve().parent.parent / "docs" / "api.md").read_text()
    for module_name in PUBLIC_API:
        root = module_name.split(".")[0] + "." + module_name.split(".")[1] \
            if "." in module_name else module_name
        assert root.split(".")[0] in doc
