"""Pattern matching semantics: labels, directions, uniqueness, paths."""

import pytest

from repro.cypher import CypherTypeError, execute
from repro.graph import GraphStore


class TestBasicMatching:
    def test_label_scan(self, tiny_store):
        result = execute(tiny_store, "MATCH (a:AS) RETURN a.asn ORDER BY a.asn")
        assert result.values("a.asn") == [2497, 15169]

    def test_property_filter_in_pattern(self, tiny_store):
        result = execute(tiny_store, "MATCH (a:AS {asn: 2497}) RETURN a.name")
        assert result.single()["a.name"] == "IIJ"

    def test_unlabeled_scan(self, tiny_store):
        result = execute(tiny_store, "MATCH (n) RETURN count(*) AS c")
        assert result.single()["c"] == 5

    def test_no_match_returns_empty(self, tiny_store):
        result = execute(tiny_store, "MATCH (a:AS {asn: 99}) RETURN a")
        assert len(result) == 0

    def test_missing_label_is_empty_not_error(self, tiny_store):
        assert len(execute(tiny_store, "MATCH (x:Nothing) RETURN x")) == 0

    def test_property_value_from_parameter(self, tiny_store):
        result = execute(tiny_store, "MATCH (a:AS {asn: $a}) RETURN a.name", a=15169)
        assert result.single()[0] == "GOOGLE"


class TestDirections:
    def test_outgoing(self, tiny_store):
        result = execute(
            tiny_store, "MATCH (:AS {asn: 2497})-[:COUNTRY]->(c:Country) RETURN c.country_code"
        )
        assert result.values() == ["JP"]

    def test_incoming(self, tiny_store):
        result = execute(
            tiny_store, "MATCH (c:Country)<-[:COUNTRY]-(:AS {asn: 2497}) RETURN c.country_code"
        )
        assert result.values() == ["JP"]

    def test_wrong_direction_no_match(self, tiny_store):
        result = execute(
            tiny_store, "MATCH (:AS {asn: 2497})<-[:COUNTRY]-(c:Country) RETURN c"
        )
        assert len(result) == 0

    def test_undirected(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (:AS {asn: 15169})-[:PEERS_WITH]-(b:AS) RETURN b.asn",
        )
        assert result.values() == [2497]

    def test_rel_property_filter(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (:AS)-[p:POPULATION {percent: 5.3}]->(c:Country) RETURN c.country_code",
        )
        assert result.values() == ["JP"]

    def test_rel_type_alternatives(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (:AS {asn: 2497})-[r:COUNTRY|POPULATION]->(:Country) "
            "RETURN type(r) ORDER BY type(r)",
        )
        assert result.values() == ["COUNTRY", "POPULATION"]

    def test_anchor_reversal_matches_from_selective_end(self, tiny_store):
        # First node unconstrained; engine should still find the match fast
        # and, more importantly, correctly.
        result = execute(
            tiny_store, "MATCH (a)-[:ORIGINATE]->(p:Prefix {prefix: '203.0.113.0/24'}) RETURN a.asn"
        )
        assert result.values() == [2497]


class TestMultiHopAndChaining:
    def test_two_hops(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (:AS {asn: 15169})-[:PEERS_WITH]-(b:AS)-[:COUNTRY]->(c:Country) "
            "RETURN b.asn, c.country_code",
        )
        assert result.single().values() == [2497, "JP"]

    def test_multiple_match_clauses_join(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (a:AS {asn: 2497}) MATCH (a)-[:ORIGINATE]->(p:Prefix) RETURN p.prefix",
        )
        assert result.values() == ["203.0.113.0/24"]

    def test_cartesian_product_of_parts(self, tiny_store):
        result = execute(tiny_store, "MATCH (a:AS), (c:Country) RETURN count(*) AS c")
        assert result.single()["c"] == 4

    def test_rebound_variable_must_be_consistent(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (a:AS {asn: 2497}) MATCH (a {asn: 15169}) RETURN a",
        )
        assert len(result) == 0

    def test_bound_variable_not_a_node_rejected(self, tiny_store):
        with pytest.raises(CypherTypeError):
            execute(tiny_store, "WITH 1 AS a MATCH (a)-[:X]->(b) RETURN b")


class TestRelationshipUniqueness:
    def test_same_relationship_not_reused_within_pattern(self):
        store = GraphStore()
        a = store.create_node(["N"], {"name": "a"})
        b = store.create_node(["N"], {"name": "b"})
        store.create_relationship(a.node_id, "X", b.node_id)
        # a-X->b exists once: the pattern (x)-[:X]-(y)-[:X]-(z) needs two
        # distinct X relationships, so it cannot match.
        result = execute(store, "MATCH (x)-[:X]-(y)-[:X]-(z) RETURN x, z")
        assert len(result) == 0

    def test_distinct_relationships_allow_back_and_forth(self):
        store = GraphStore()
        a = store.create_node(["N"], {"name": "a"})
        b = store.create_node(["N"], {"name": "b"})
        store.create_relationship(a.node_id, "X", b.node_id)
        store.create_relationship(b.node_id, "X", a.node_id)
        result = execute(store, "MATCH (x)-[:X]->(y)-[:X]->(z) RETURN count(*) AS c")
        assert result.single()["c"] == 2  # a->b->a and b->a->b

    def test_uniqueness_resets_across_match_clauses(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (a:AS {asn: 2497})-[r:PEERS_WITH]-(b) "
            "MATCH (a)-[r2:PEERS_WITH]-(c) RETURN b.asn, c.asn",
        )
        assert len(result) == 1  # same rel is usable in the second MATCH


class TestVariableLength:
    @pytest.fixture()
    def chain(self):
        store = GraphStore()
        nodes = [store.create_node(["N"], {"i": i}) for i in range(4)]
        for left, right in zip(nodes, nodes[1:]):
            store.create_relationship(left.node_id, "X", right.node_id)
        return store

    def test_fixed_range(self, chain):
        result = execute(
            chain, "MATCH (a {i: 0})-[:X*1..2]->(b) RETURN b.i ORDER BY b.i"
        )
        assert result.values() == [1, 2]

    def test_exact_hops(self, chain):
        result = execute(chain, "MATCH (a {i: 0})-[:X*3]->(b) RETURN b.i")
        assert result.values() == [3]

    def test_unbounded(self, chain):
        result = execute(chain, "MATCH (a {i: 0})-[:X*]->(b) RETURN b.i ORDER BY b.i")
        assert result.values() == [1, 2, 3]

    def test_zero_min_includes_self(self, chain):
        result = execute(chain, "MATCH (a {i: 0})-[:X*0..1]->(b) RETURN b.i ORDER BY b.i")
        assert result.values() == [0, 1]

    def test_var_length_binds_relationship_list(self, chain):
        result = execute(chain, "MATCH (a {i: 0})-[r:X*2]->(b) RETURN size(r) AS n")
        assert result.single()["n"] == 2

    def test_cycle_terminates(self):
        store = GraphStore()
        a = store.create_node(["N"], {"i": 0})
        b = store.create_node(["N"], {"i": 1})
        store.create_relationship(a.node_id, "X", b.node_id)
        store.create_relationship(b.node_id, "X", a.node_id)
        result = execute(store, "MATCH (s {i: 0})-[:X*]->(t) RETURN t.i ORDER BY t.i")
        # Paths: a->b (1 hop), a->b->a (2 hops, distinct rels). Then stuck.
        assert result.values() == [0, 1]

    def test_undirected_var_length(self, chain):
        result = execute(chain, "MATCH (a {i: 2})-[:X*1..1]-(b) RETURN b.i ORDER BY b.i")
        assert result.values() == [1, 3]


class TestPaths:
    def test_path_length_and_functions(self, tiny_store):
        record = execute(
            tiny_store,
            "MATCH p = (:AS {asn: 15169})-[:PEERS_WITH]-(:AS)-[:COUNTRY]->(:Country) "
            "RETURN length(p) AS len, size(nodes(p)) AS n, size(relationships(p)) AS r",
        ).single()
        assert (record["len"], record["n"], record["r"]) == (2, 3, 2)

    def test_path_over_var_length_includes_intermediates(self):
        store = GraphStore()
        nodes = [store.create_node(["N"], {"i": i}) for i in range(3)]
        for left, right in zip(nodes, nodes[1:]):
            store.create_relationship(left.node_id, "X", right.node_id)
        record = execute(
            store,
            "MATCH p = (a {i: 0})-[:X*2]->(b) RETURN [n IN nodes(p) | n.i] AS seq",
        ).single()
        assert record["seq"] == [0, 1, 2]


class TestOptionalMatch:
    def test_optional_pads_with_null(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (c:Country) OPTIONAL MATCH (c)<-[p:POPULATION]-(a:AS) "
            "RETURN c.country_code AS cc, a.asn AS asn ORDER BY cc",
        )
        rows = [record.to_dict() for record in result]
        assert rows == [{"cc": "JP", "asn": 2497}, {"cc": "US", "asn": None}]

    def test_optional_where_is_part_of_match(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (c:Country) OPTIONAL MATCH (c)<-[:COUNTRY]-(a:AS) "
            "WHERE a.asn > 10000 RETURN c.country_code AS cc, a.asn AS asn ORDER BY cc",
        )
        rows = [record.to_dict() for record in result]
        assert rows == [{"cc": "JP", "asn": None}, {"cc": "US", "asn": 15169}]

    def test_optional_path_variable_padded(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (c:Country {country_code: 'US'}) "
            "OPTIONAL MATCH p = (c)<-[:POPULATION]-(:AS) RETURN p",
        )
        assert result.single()["p"] is None


class TestWhereOnMatch:
    def test_where_filters(self, tiny_store):
        result = execute(
            tiny_store, "MATCH (a:AS) WHERE a.asn > 10000 RETURN a.asn"
        )
        assert result.values() == [15169]

    def test_where_null_is_dropped(self, tiny_store):
        result = execute(
            tiny_store, "MATCH (a:AS) WHERE a.missing > 1 RETURN a.asn"
        )
        assert len(result) == 0

    def test_pattern_predicate_in_where(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (a:AS) WHERE (a)-[:ORIGINATE]->(:Prefix) RETURN a.asn",
        )
        assert result.values() == [2497]

    def test_not_pattern_predicate(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (a:AS) WHERE NOT (a)-[:ORIGINATE]->(:Prefix) RETURN a.asn",
        )
        assert result.values() == [15169]

    def test_exists_pattern(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (a:AS) WHERE exists((a)-[:POPULATION]->()) RETURN a.asn",
        )
        assert result.values() == [2497]
