"""Tests for embeddings and the vector store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embed import (
    ContextualEmbedding,
    HashingEmbedding,
    VectorStore,
    cosine_similarity,
)


class TestHashingEmbedding:
    def test_deterministic(self):
        model = HashingEmbedding()
        first = model.embed("the internet yellow pages")
        second = model.embed("the internet yellow pages")
        assert np.array_equal(first, second)

    def test_unit_norm(self):
        model = HashingEmbedding()
        vector = model.embed("AS2497 originates prefixes in Japan")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_is_zero_vector(self):
        model = HashingEmbedding()
        assert np.linalg.norm(model.embed("")) == 0.0

    def test_self_similarity_is_one(self):
        model = HashingEmbedding()
        assert model.similarity("hello world", "hello world") == pytest.approx(1.0)

    def test_overlap_monotonicity(self):
        model = HashingEmbedding()
        query = "AS2497 japan population percentage"
        close = "AS2497 serves a percentage of the japan population"
        far = "chocolate cake recipe with vanilla frosting"
        assert model.similarity(query, close) > model.similarity(query, far)

    def test_dimension_respected(self):
        assert HashingEmbedding(dim=64).embed("x").shape == (64,)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            HashingEmbedding(dim=0)

    def test_embed_batch_shape(self):
        model = HashingEmbedding(dim=32)
        matrix = model.embed_batch(["a", "b", "c"])
        assert matrix.shape == (3, 32)
        assert model.embed_batch([]).shape == (0, 32)

    @settings(max_examples=25, deadline=None)
    @given(st.text(max_size=40), st.text(max_size=40))
    def test_similarity_symmetric_and_bounded(self, left, right):
        model = HashingEmbedding(dim=64)
        forward = model.similarity(left, right)
        backward = model.similarity(right, left)
        assert forward == pytest.approx(backward)
        assert -1.0001 <= forward <= 1.0001


class TestCosine:
    def test_zero_vector_gives_zero(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_identical(self):
        vector = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)


class TestContextualEmbedding:
    def test_shapes(self):
        model = ContextualEmbedding(dim=48)
        tokens, matrix = model.token_embeddings("one two three")
        assert tokens == ["one", "two", "three"]
        assert matrix.shape == (3, 48)

    def test_rows_unit_norm(self):
        model = ContextualEmbedding()
        _, matrix = model.token_embeddings("alpha beta gamma delta")
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms, 1.0)

    def test_empty_text(self):
        tokens, matrix = ContextualEmbedding(dim=16).token_embeddings("")
        assert tokens == []
        assert matrix.shape == (0, 16)

    def test_context_changes_token_vector(self):
        model = ContextualEmbedding()
        _, in_a = model.token_embeddings("bank of the river")
        _, in_b = model.token_embeddings("bank holds the money")
        # 'bank' is token 0 in both; context blending must differentiate them.
        assert not np.allclose(in_a[0], in_b[0])

    def test_anisotropy_floor(self):
        # Unrelated tokens still have clearly positive similarity (the
        # common "language" component that yields BERTScore's ceiling).
        model = ContextualEmbedding()
        _, left = model.token_embeddings("pelican")
        _, right = model.token_embeddings("asphalt")
        assert float(left[0] @ right[0]) > 0.3


class TestVectorStore:
    @pytest.fixture()
    def store(self):
        store = VectorStore(HashingEmbedding(dim=128))
        store.add("a", "AS2497 is a Japanese network operator", {"kind": "as"})
        store.add("b", "AMS-IX is an internet exchange in Amsterdam", {"kind": "ixp"})
        store.add("c", "chocolate cake with strawberries", {"kind": "food"})
        return store

    def test_top1_is_most_relevant(self, store):
        hits = store.search("japanese network AS2497", top_k=1)
        assert hits[0].entry_id == "a"

    def test_top_k_bounded(self, store):
        assert len(store.search("internet", top_k=2)) <= 2

    def test_filter_fn(self, store):
        hits = store.search(
            "internet exchange", top_k=5, filter_fn=lambda e: e.metadata["kind"] == "ixp"
        )
        assert [hit.entry_id for hit in hits] == ["b"]

    def test_min_score_cuts_noise(self, store):
        hits = store.search("AS2497 network operator", top_k=5, min_score=0.3)
        assert all(hit.score > 0.3 for hit in hits)

    def test_duplicate_id_rejected(self, store):
        with pytest.raises(ValueError):
            store.add("a", "again")

    def test_get(self, store):
        assert store.get("b").text.startswith("AMS-IX")
        assert store.get("zz") is None

    def test_len(self, store):
        assert len(store) == 3

    def test_empty_store_search(self):
        assert VectorStore().search("anything") == []

    def test_add_batch(self):
        store = VectorStore()
        store.add_batch([("x", "one", {}), ("y", "two", {})])
        assert len(store) == 2

    def test_incremental_add_after_search(self, store):
        store.search("warmup", top_k=1)
        store.add("d", "a brand new AS2497 description", {})
        hits = store.search("AS2497", top_k=4)
        assert any(hit.entry_id == "d" for hit in hits)

    def test_scores_sorted_descending(self, store):
        hits = store.search("internet network exchange", top_k=3)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)
