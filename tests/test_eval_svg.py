"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.eval import EvaluationHarness, build_cyphereval
from repro.eval.svg import bar_chart_svg, figure_2a_svg, figure_2b_svg, histogram_svg


@pytest.fixture(scope="module")
def report(chatiyp_small):
    questions = build_cyphereval(chatiyp_small.dataset, per_template=1)
    return EvaluationHarness(chatiyp_small, questions).run()


def parse_svg(text):
    return ElementTree.fromstring(text)


SVG = "{http://www.w3.org/2000/svg}"


class TestHistogramSvg:
    def test_valid_xml(self):
        root = parse_svg(histogram_svg([0.1, 0.9, 0.95], "demo"))
        assert root.tag == f"{SVG}svg"

    def test_bar_per_bin(self):
        root = parse_svg(histogram_svg([0.05] * 3 + [0.95], "demo", bins=5))
        bars = [r for r in root.iter(f"{SVG}rect")]
        assert len(bars) == 1 + 5  # background + one bar per bin

    def test_title_present(self):
        svg = histogram_svg([0.5], "my metric title")
        assert "my metric title" in svg

    def test_empty_values_ok(self):
        parse_svg(histogram_svg([], "empty"))


class TestBarChartSvg:
    def test_valid_with_series(self):
        svg = bar_chart_svg(
            ["easy", "hard"],
            {"a": [0.9, 0.2], "b": [0.8, 0.3]},
            "demo", y_label="score",
        )
        root = parse_svg(svg)
        texts = [t.text for t in root.iter(f"{SVG}text")]
        assert "easy" in texts and "hard" in texts
        assert "a" in texts and "b" in texts

    def test_values_clamped(self):
        parse_svg(bar_chart_svg(["g"], {"s": [7.0]}, "clamped"))  # must not raise


class TestFigureRenderers:
    def test_figure_2a_contains_all_metrics(self, report):
        svg = figure_2a_svg(report)
        parse_svg(svg)
        for metric in ("bleu", "rouge1", "bertscore", "geval"):
            assert metric in svg

    def test_figure_2b_contains_difficulties(self, report):
        svg = figure_2b_svg(report)
        parse_svg(svg)
        for difficulty in ("easy", "medium", "hard"):
            assert difficulty in svg

    def test_deterministic(self, report):
        assert figure_2a_svg(report) == figure_2a_svg(report)

    def test_example_script(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        script = Path(__file__).resolve().parent.parent / "examples" / "make_figures.py"
        proc = subprocess.run(
            [sys.executable, str(script), str(tmp_path)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "fig2a.svg").exists()
        assert (tmp_path / "fig2b.svg").exists()
        parse_svg((tmp_path / "fig2a.svg").read_text())
        parse_svg((tmp_path / "fig2b.svg").read_text())
