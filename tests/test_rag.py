"""Tests for the RAG framework: retrievers, reranker, synthesizer, pipeline."""

import pytest

from repro.cypher import CypherEngine
from repro.graph import introspect_schema
from repro.llm import ErrorModel, SimulatedLLM
from repro.nlp import Gazetteer
from repro.rag import (
    LLMReranker,
    NodeWithScore,
    ResponseSynthesizer,
    RetrievalResult,
    RetrieverQueryEngine,
    TextNode,
    TextToCypherRetriever,
    VectorContextRetriever,
    build_description_corpus,
    describe_node,
)
from repro.core.prompts import answer_prompt, rerank_prompt, text2cypher_prompt


@pytest.fixture(scope="module")
def reliable_llm(small_dataset):
    return SimulatedLLM(
        Gazetteer.from_dataset(small_dataset),
        seed=0,
        error_model=ErrorModel(base=0.0, slope=0.0),
    )


@pytest.fixture(scope="module")
def schema_text(small_store):
    return introspect_schema(small_store).describe()


@pytest.fixture(scope="module")
def symbolic(small_store, reliable_llm, schema_text):
    return TextToCypherRetriever(
        CypherEngine(small_store), reliable_llm, schema_text, text2cypher_prompt
    )


@pytest.fixture(scope="module")
def vector(small_store):
    return VectorContextRetriever(small_store, top_k=5)


class TestDescribe:
    def test_describe_as_node(self, small_dataset):
        node = small_dataset.as_nodes[2497]
        text = describe_node(small_dataset.store, node)
        assert "AS2497" in text
        assert "registered in" in text

    def test_describe_country_node(self, small_dataset):
        node = small_dataset.country_nodes["JP"]
        text = describe_node(small_dataset.store, node)
        assert "Japan" in text

    def test_corpus_covers_interesting_labels(self, small_store):
        corpus = build_description_corpus(small_store)
        labels = {metadata["label"] for _, _, metadata in corpus}
        assert {"AS", "IXP", "Country", "Prefix", "DomainName"} <= labels

    def test_corpus_ids_unique(self, small_store):
        corpus = build_description_corpus(small_store)
        ids = [entry_id for entry_id, _, _ in corpus]
        assert len(ids) == len(set(ids))

    def test_neighbour_overflow_summarised(self, small_dataset):
        # Some node has >4 neighbours of a kind -> "and N more" phrasing.
        texts = [
            describe_node(small_dataset.store, node)
            for node in small_dataset.store.nodes_by_label("AS")
        ]
        assert any("and" in text and "more" in text for text in texts)


class TestTextToCypherRetriever:
    def test_success_path(self, symbolic):
        result = symbolic.retrieve("Which country is AS2497 registered in?")
        assert result.succeeded
        assert result.cypher is not None
        assert result.result.single()["country"] == "Japan"
        assert result.nodes and result.nodes[0].score == 1.0

    def test_translation_failure_reported(self, symbolic):
        result = symbolic.retrieve("please sing a sea shanty")
        assert result.error == "translation_failed"
        assert result.is_sparse

    def test_execution_failure_reported(self, small_store, small_dataset, schema_text):
        broken_llm = SimulatedLLM(
            Gazetteer.from_dataset(small_dataset),
            seed=0,
            error_model=ErrorModel(base=1.0, slope=0.0, syntax_share=1.0),
        )
        retriever = TextToCypherRetriever(
            CypherEngine(small_store), broken_llm, schema_text, text2cypher_prompt
        )
        result = retriever.retrieve("Which country is AS2497 registered in?")
        assert result.error is not None
        assert "CypherSyntaxError" in result.error
        assert result.cypher is not None  # surfaced for transparency

    def test_generation_metadata_passthrough(self, symbolic):
        result = symbolic.retrieve("Which country is AS2497 registered in?")
        assert result.metadata["intent"] == "as_country"

    def test_rows_capped(self, symbolic):
        result = symbolic.retrieve("Which ASes are registered in the US?")
        assert len(result.nodes) <= 25

    def test_capture_plan_surfaces_explain_text(
        self, small_store, reliable_llm, schema_text
    ):
        retriever = TextToCypherRetriever(
            CypherEngine(small_store),
            reliable_llm,
            schema_text,
            text2cypher_prompt,
            capture_plan=True,
        )
        result = retriever.retrieve("Which country is AS2497 registered in?")
        assert result.succeeded
        assert "anchor=" in result.metadata["plan"]

    def test_plan_not_captured_by_default(self, symbolic):
        result = symbolic.retrieve("Which country is AS2497 registered in?")
        assert "plan" not in result.metadata


class TestVectorRetriever:
    def test_retrieves_relevant_nodes(self, vector):
        result = vector.retrieve("Tell me about AS2497 the Japanese network")
        assert result.succeeded
        texts = " ".join(item.node.text for item in result.nodes)
        assert "AS2497" in texts

    def test_respects_top_k(self, small_store):
        retriever = VectorContextRetriever(small_store, top_k=3)
        result = retriever.retrieve("internet exchange in Japan")
        assert len(result.nodes) <= 3

    def test_scores_descending(self, vector):
        result = vector.retrieve("internet exchange points in Germany")
        scores = [item.score for item in result.nodes]
        assert scores == sorted(scores, reverse=True)

    def test_shared_vector_store_reused(self, small_store, vector):
        other = VectorContextRetriever(small_store, vector_store=vector.vector_store)
        assert other.vector_store is vector.vector_store


class TestReranker:
    def _candidates(self, texts):
        return [
            NodeWithScore(TextNode(f"n{i}", text), 0.5) for i, text in enumerate(texts)
        ]

    def test_relevant_candidate_rises(self, reliable_llm):
        reranker = LLMReranker(reliable_llm, top_n=2, prompt_builder=rerank_prompt)
        candidates = self._candidates(
            ["bananas are yellow", "AS2497 is a member of JPNAP Tokyo", "rain tomorrow"]
        )
        reranked = reranker.rerank("Which IXPs is AS2497 a member of?", candidates)
        assert reranked[0].node.node_id == "n1"

    def test_top_n_enforced(self, reliable_llm):
        reranker = LLMReranker(reliable_llm, top_n=2, prompt_builder=rerank_prompt)
        reranked = reranker.rerank("q", self._candidates(["a", "b", "c", "d"]))
        assert len(reranked) == 2

    def test_duplicates_removed(self, reliable_llm):
        reranker = LLMReranker(reliable_llm, top_n=5, prompt_builder=rerank_prompt)
        node = TextNode("same", "text")
        reranked = reranker.rerank("q", [NodeWithScore(node, 1.0), NodeWithScore(node, 0.4)])
        assert len(reranked) == 1

    def test_max_candidates_cap(self, reliable_llm):
        reranker = LLMReranker(reliable_llm, top_n=50, max_candidates=3)
        reranked = reranker.rerank("q", self._candidates([f"t{i}" for i in range(10)]))
        assert len(reranked) == 3


class TestSynthesizer:
    def test_structured_result_drives_answer(self, reliable_llm, symbolic):
        synthesizer = ResponseSynthesizer(reliable_llm, answer_prompt)
        retrieval = symbolic.retrieve("What is the percentage of Japan's population in AS2497?")
        answer = synthesizer.synthesize(
            "What is the percentage of Japan's population in AS2497?", retrieval
        )
        assert "5.3" in answer

    def test_context_fallback_answer(self, reliable_llm):
        synthesizer = ResponseSynthesizer(reliable_llm, answer_prompt)
        retrieval = RetrievalResult(
            nodes=[NodeWithScore(TextNode("x", "AS2497 is a Japanese ISP"), 0.9)],
            source="vector",
        )
        answer = synthesizer.synthesize("tell me about AS2497", retrieval)
        assert "AS2497" in answer

    def test_non_scalar_values_serialised(self, reliable_llm, symbolic):
        synthesizer = ResponseSynthesizer(reliable_llm, answer_prompt)
        retrieval = symbolic.retrieve("Which tags is AS2497 categorized with?")
        answer = synthesizer.synthesize("Which tags is AS2497 categorized with?", retrieval)
        assert isinstance(answer, str) and answer


class TestPipeline:
    @pytest.fixture()
    def pipeline(self, symbolic, vector, reliable_llm):
        return RetrieverQueryEngine(
            text2cypher=symbolic,
            vector=vector,
            reranker=LLMReranker(reliable_llm, top_n=4, prompt_builder=rerank_prompt),
            synthesizer=ResponseSynthesizer(reliable_llm, answer_prompt),
        )

    def test_symbolic_path(self, pipeline):
        response = pipeline.query("Which country is AS2497 registered in?")
        assert response.retrieval_source == "text2cypher"
        assert not response.used_fallback
        assert "Japan" in response.answer

    def test_fallback_on_translation_failure(self, pipeline):
        response = pipeline.query("what is interesting around here?")
        assert response.retrieval_source == "vector"
        assert response.used_fallback
        assert response.diagnostics["fallback_used"]

    def test_fallback_on_sparse_result(self, pipeline, small_dataset):
        # Ask about an AS with no IXP memberships -> empty rows -> fallback.
        member_counts = {
            asn: small_dataset.store.degree(node.node_id, "out", ["MEMBER_OF"])
            for asn, node in small_dataset.as_nodes.items()
        }
        lonely = next(asn for asn, count in member_counts.items() if count == 0)
        response = pipeline.query(f"Which IXPs is AS{lonely} a member of?")
        assert response.used_fallback
        assert response.diagnostics["sparse"] is True
        assert response.cypher is not None  # failed query still shown

    def test_no_fallback_configuration(self, symbolic, reliable_llm):
        engine = RetrieverQueryEngine(
            text2cypher=symbolic,
            vector=None,
            reranker=None,
            synthesizer=ResponseSynthesizer(reliable_llm, answer_prompt),
            vector_fallback=False,
        )
        response = engine.query("what is interesting around here?")
        assert response.retrieval_source == "text2cypher"
        assert "could not" in response.answer.lower()

    def test_requires_synthesizer(self, symbolic):
        with pytest.raises(ValueError):
            RetrieverQueryEngine(text2cypher=symbolic, synthesizer=None)

    def test_result_attached_on_success(self, pipeline):
        response = pipeline.query("How many prefixes does AS2497 originate?")
        assert response.result is not None
        assert response.result.keys == ["prefixes"]
