"""Tests for the paraphrase-penalty experiment."""

import pytest

from repro.eval import METRIC_KEYS, build_cyphereval, paraphrase_penalty


@pytest.fixture(scope="module")
def questions(chatiyp_small):
    return build_cyphereval(chatiyp_small.dataset, per_template=2)


@pytest.fixture(scope="module")
def penalty(chatiyp_small, questions):
    return paraphrase_penalty(
        chatiyp_small.store, questions, chatiyp_small.llm, limit=60
    )


class TestParaphrasePenalty:
    def test_all_metrics_measured(self, penalty):
        assert set(penalty.mean_scores) == set(METRIC_KEYS)
        assert penalty.pairs == 60

    def test_scores_in_unit_range(self, penalty):
        for value in penalty.mean_scores.values():
            assert 0.0 <= value <= 1.0

    def test_finding1_ordering(self, penalty):
        assert penalty.penalty("bleu") > penalty.penalty("rouge1")
        assert penalty.penalty("rouge1") > penalty.penalty("bertscore")
        assert penalty.penalty("geval") < 0.15

    def test_same_seeds_rejected(self, chatiyp_small, questions):
        with pytest.raises(ValueError):
            paraphrase_penalty(
                chatiyp_small.store, questions, chatiyp_small.llm,
                reference_seed=5, paraphrase_seed=5,
            )

    def test_no_usable_questions_rejected(self, chatiyp_small, questions):
        empty_only = [q for q in questions if q.template == "never-matches"]
        with pytest.raises(ValueError):
            paraphrase_penalty(chatiyp_small.store, empty_only, chatiyp_small.llm)

    def test_deterministic(self, chatiyp_small, questions, penalty):
        again = paraphrase_penalty(
            chatiyp_small.store, questions, chatiyp_small.llm, limit=60
        )
        assert again.mean_scores == penalty.mean_scores
