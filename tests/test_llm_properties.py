"""Property-based tests on the simulated LLM components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import AnswerJudge, ErrorModel, RelevanceScorer, ResultVerbalizer
from repro.llm.judge import extract_facts
from repro.cypher.result import Record, ResultSet

answers = st.lists(
    st.sampled_from(
        "the answer is 5.3 percent AS2497 Japan organization IIJ rank 42 "
        "prefixes no matching data found".split()
    ),
    min_size=1, max_size=20,
).map(" ".join)


class TestJudgeProperties:
    @given(answers, answers)
    @settings(max_examples=40, deadline=None)
    def test_score_bounded_and_deterministic(self, candidate, reference):
        judge = AnswerJudge()
        first = judge.judge("a question about AS2497", candidate, reference, {"5.3"})
        second = judge.judge("a question about AS2497", candidate, reference, {"5.3"})
        assert 0.0 <= first.score <= 1.0
        assert first.score == second.score
        assert 1 <= first.rating <= 5

    @given(answers)
    @settings(max_examples=30, deadline=None)
    def test_exact_reference_never_loses_to_garbage(self, reference):
        judge = AnswerJudge()
        gold = extract_facts(reference)
        exact = judge.judge("q", reference, reference, gold)
        garbage = judge.judge("q", "flying spaghetti 999999 nonsense", reference, gold)
        assert exact.score >= garbage.score

    @given(st.text(max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_extract_facts_total(self, text):
        facts = extract_facts(text)
        assert isinstance(facts, set)
        for fact in facts:
            assert isinstance(fact, str)


class TestErrorModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_probability_always_valid(self, coverage, base, slope, power):
        model = ErrorModel(base=base, slope=slope, power=power)
        probability = model.probability(coverage)
        assert 0.0 <= probability <= 0.97

    @given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_coverage(self, cov_a, cov_b):
        model = ErrorModel()
        lo, hi = sorted((cov_a, cov_b))
        assert model.probability(lo) >= model.probability(hi)


class TestScorerProperties:
    @given(answers, answers)
    @settings(max_examples=40, deadline=None)
    def test_score_range(self, query, passage):
        scorer = RelevanceScorer()
        assert 0.0 <= scorer.score(query, passage) <= 10.0

    @given(answers)
    @settings(max_examples=30, deadline=None)
    def test_self_relevance_not_less_than_empty(self, text):
        scorer = RelevanceScorer()
        assert scorer.score(text, text) >= scorer.score(text, "")


class TestVerbalizerProperties:
    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=-1000, max_value=10**6),
                st.floats(allow_nan=False, allow_infinity=False, width=16),
                st.text(min_size=1, max_size=10),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_single_column_always_produces_text(self, values):
        verbalizer = ResultVerbalizer(seed=3)
        result = ResultSet(["v"], [Record(["v"], [value]) for value in values])
        text = verbalizer.verbalize("some question", result)
        assert isinstance(text, str) and text.strip()

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_multi_column_always_produces_text(self, rows, cols):
        verbalizer = ResultVerbalizer(seed=3)
        keys = [f"c{i}" for i in range(cols)]
        records = [Record(keys, [f"v{r}_{c}" for c in range(cols)]) for r in range(rows)]
        text = verbalizer.verbalize("q", ResultSet(keys, records))
        assert isinstance(text, str) and text.strip()
