"""End-to-end tests for the ChatIYP facade."""

import pytest

from repro.core import ChatIYP, ChatIYPConfig, render_response
from repro.core.prompts import (
    IYP_FEW_SHOT_EXAMPLES,
    answer_prompt,
    judge_prompt,
    rerank_prompt,
    text2cypher_prompt,
)
from repro.cypher import parse
from repro.iyp import AS2497_JP_PERCENT


@pytest.fixture(scope="module")
def reliable_bot(small_dataset):
    """ChatIYP with a perfectly reliable backbone (for deterministic asks)."""
    config = ChatIYPConfig(dataset_size="small", error_base=0.0, error_slope=0.0)
    return ChatIYP(dataset=small_dataset, config=config)


class TestPaperExample:
    def test_japan_population_example(self, reliable_bot):
        response = reliable_bot.ask(
            "What is the percentage of Japan's population in AS2497?"
        )
        assert str(AS2497_JP_PERCENT) in response.answer
        assert "POPULATION" in response.cypher
        assert response.retrieval_source == "text2cypher"
        assert not response.used_fallback

    def test_answer_and_cypher_both_returned(self, reliable_bot):
        response = reliable_bot.ask("Which country is AS15169 registered in?")
        assert response.answer
        assert response.cypher.startswith("MATCH")
        parse(response.cypher)


class TestAskBehaviour:
    def test_empty_question(self, reliable_bot):
        response = reliable_bot.ask("   ")
        assert response.retrieval_source == "none"
        assert "question" in response.answer.lower()

    def test_whitespace_stripped(self, reliable_bot):
        response = reliable_bot.ask("  Which country is AS2497 registered in?  ")
        assert response.question == "Which country is AS2497 registered in?"

    def test_vague_question_uses_fallback(self, reliable_bot):
        response = reliable_bot.ask("tell me something cool about the internet")
        assert response.used_fallback
        assert response.retrieval_source == "vector"
        assert response.context_snippets

    def test_determinism(self, reliable_bot):
        first = reliable_bot.ask("How many prefixes does AS2497 originate?")
        second = reliable_bot.ask("How many prefixes does AS2497 originate?")
        assert first.answer == second.answer
        assert first.cypher == second.cypher

    def test_diagnostics_include_generation_metadata(self, reliable_bot):
        response = reliable_bot.ask("Which country is AS2497 registered in?")
        assert response.diagnostics["generation"]["intent"] == "as_country"

    def test_to_dict_is_json_friendly(self, reliable_bot):
        import json

        response = reliable_bot.ask("Which tags is AS2497 categorized with?")
        payload = response.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["question"]
        assert payload["rows"] is not None

    def test_run_cypher_escape_hatch(self, reliable_bot):
        result = reliable_bot.run_cypher(
            "MATCH (a:AS {asn: $asn}) RETURN a.name", asn=2497
        )
        assert "IIJ" in result.single()[0]

    def test_schema_property(self, reliable_bot):
        assert "(:AS" in reliable_bot.schema
        assert "POPULATION" in reliable_bot.schema


class TestConfigurationVariants:
    def test_no_reranker(self, small_dataset):
        config = ChatIYPConfig(
            dataset_size="small", use_reranker=False, error_base=0.0, error_slope=0.0
        )
        bot = ChatIYP(dataset=small_dataset, config=config)
        response = bot.ask("Which country is AS2497 registered in?")
        assert "Japan" in response.answer

    def test_no_vector_fallback(self, small_dataset):
        config = ChatIYPConfig(
            dataset_size="small", use_vector_fallback=False,
            error_base=0.0, error_slope=0.0,
        )
        bot = ChatIYP(dataset=small_dataset, config=config)
        response = bot.ask("what a lovely day for routing")
        assert not response.used_fallback
        assert response.retrieval_source == "text2cypher"

    def test_dataset_auto_loaded_from_config(self):
        bot = ChatIYP(config=ChatIYPConfig(dataset_size="small"))
        assert bot.store.node_count > 0


class TestTransparency:
    def test_render_success(self, reliable_bot):
        response = reliable_bot.ask("Which country is AS2497 registered in?")
        text = render_response(response)
        assert "Q:" in text and "A:" in text
        assert "Cypher:" in text
        assert "Rows:" in text

    def test_render_fallback_marks_failure(self, reliable_bot):
        response = reliable_bot.ask("any news from the backbone?")
        text = render_response(response, show_context=True)
        assert "Retrieval: vector" in text

    def test_render_without_cypher(self, reliable_bot):
        response = reliable_bot.ask("sing")
        text = render_response(response)
        assert "no translation" in text


class TestPrompts:
    def test_text2cypher_prompt_contains_chain(self):
        prompt = text2cypher_prompt("a question", "SCHEMA HERE")
        assert "[TASK: text2cypher]" in prompt
        assert "SCHEMA HERE" in prompt
        for question, cypher in IYP_FEW_SHOT_EXAMPLES:
            assert question in prompt
            assert cypher in prompt

    def test_few_shot_examples_are_valid_cypher(self):
        for _, cypher in IYP_FEW_SHOT_EXAMPLES:
            parse(cypher)

    def test_answer_prompt_sections(self):
        prompt = answer_prompt("q", '{"keys": [], "rows": []}', "- ctx")
        assert "[RESULT]" in prompt and "[CONTEXT]" in prompt

    def test_rerank_prompt_sections(self):
        prompt = rerank_prompt("q", "p")
        assert "[QUERY]" in prompt and "[PASSAGE]" in prompt

    def test_judge_prompt_sections(self):
        prompt = judge_prompt("q", "c", "r", "[\"5.3\"]")
        assert "[REFERENCE]" in prompt and "[CANDIDATE]" in prompt
        assert "[GOLD_FACTS]" in prompt
