"""Expression evaluation semantics (ternary logic, arithmetic, functions)."""

import math

import pytest

from repro.cypher import CypherRuntimeError, CypherTypeError, execute
from repro.cypher.errors import UnknownFunctionError
from repro.graph import GraphStore


@pytest.fixture()
def store():
    return GraphStore()


def value_of(store, expression, **params):
    return execute(store, f"RETURN {expression} AS v", **params).single()["v"]


class TestLiteralsAndArithmetic:
    def test_literals(self, store):
        assert value_of(store, "42") == 42
        assert value_of(store, "3.5") == 3.5
        assert value_of(store, "'hi'") == "hi"
        assert value_of(store, "true") is True
        assert value_of(store, "null") is None

    def test_arithmetic(self, store):
        assert value_of(store, "1 + 2 * 3") == 7
        assert value_of(store, "(1 + 2) * 3") == 9
        assert value_of(store, "7 % 3") == 1
        assert value_of(store, "2 ^ 10") == 1024.0

    def test_integer_division_truncates_toward_zero(self, store):
        assert value_of(store, "7 / 2") == 3
        assert value_of(store, "-7 / 2") == -3

    def test_float_division(self, store):
        assert value_of(store, "7.0 / 2") == 3.5

    def test_division_by_zero_integer_raises(self, store):
        with pytest.raises(CypherRuntimeError):
            value_of(store, "1 / 0")

    def test_modulo_by_zero_raises(self, store):
        with pytest.raises(CypherRuntimeError):
            value_of(store, "1 % 0")

    def test_unary_minus(self, store):
        assert value_of(store, "-(1 + 2)") == -3

    def test_string_concatenation(self, store):
        assert value_of(store, "'a' + 'b'") == "ab"
        assert value_of(store, "'a' + 1") == "a1"

    def test_list_concatenation(self, store):
        assert value_of(store, "[1] + [2, 3]") == [1, 2, 3]
        assert value_of(store, "[1] + 2") == [1, 2]

    def test_arithmetic_with_null_is_null(self, store):
        assert value_of(store, "1 + null") is None
        assert value_of(store, "null * 3") is None

    def test_boolean_arithmetic_rejected(self, store):
        with pytest.raises(CypherTypeError):
            value_of(store, "true + 1")


class TestTernaryLogic:
    def test_and(self, store):
        assert value_of(store, "true AND true") is True
        assert value_of(store, "true AND false") is False
        assert value_of(store, "false AND null") is False
        assert value_of(store, "true AND null") is None

    def test_or(self, store):
        assert value_of(store, "false OR true") is True
        assert value_of(store, "false OR null") is None
        assert value_of(store, "true OR null") is True

    def test_xor(self, store):
        assert value_of(store, "true XOR false") is True
        assert value_of(store, "true XOR true") is False
        assert value_of(store, "true XOR null") is None

    def test_not(self, store):
        assert value_of(store, "NOT false") is True
        assert value_of(store, "NOT null") is None

    def test_comparisons_with_null(self, store):
        assert value_of(store, "1 = null") is None
        assert value_of(store, "null <> null") is None
        assert value_of(store, "1 < null") is None

    def test_is_null(self, store):
        assert value_of(store, "null IS NULL") is True
        assert value_of(store, "1 IS NULL") is False
        assert value_of(store, "1 IS NOT NULL") is True

    def test_chained_comparison(self, store):
        assert value_of(store, "1 < 2 < 3") is True
        assert value_of(store, "1 < 3 < 2") is False

    def test_cross_type_equality_false(self, store):
        assert value_of(store, "1 = 'one'") is False
        assert value_of(store, "true = 1") is False

    def test_numeric_equality_across_int_float(self, store):
        assert value_of(store, "1 = 1.0") is True

    def test_list_equality(self, store):
        assert value_of(store, "[1, 2] = [1, 2]") is True
        assert value_of(store, "[1, 2] = [2, 1]") is False
        assert value_of(store, "[1, null] = [1, 2]") is None


class TestPredicates:
    def test_string_predicates(self, store):
        assert value_of(store, "'hello' STARTS WITH 'he'") is True
        assert value_of(store, "'hello' ENDS WITH 'lo'") is True
        assert value_of(store, "'hello' CONTAINS 'ell'") is True
        assert value_of(store, "'hello' CONTAINS 'xyz'") is False

    def test_string_predicate_null(self, store):
        assert value_of(store, "null STARTS WITH 'a'") is None

    def test_regex(self, store):
        assert value_of(store, "'AS2497' =~ 'AS[0-9]+'") is True
        assert value_of(store, "'AS2497' =~ '[0-9]+'") is False  # full match

    def test_in_semantics(self, store):
        assert value_of(store, "2 IN [1, 2, 3]") is True
        assert value_of(store, "5 IN [1, 2, 3]") is False
        assert value_of(store, "5 IN [1, null]") is None
        assert value_of(store, "1 IN [1, null]") is True
        assert value_of(store, "1 IN null") is None


class TestCollectionsAndCase:
    def test_subscript(self, store):
        assert value_of(store, "[10, 20, 30][1]") == 20
        assert value_of(store, "[10, 20, 30][-1]") == 30
        assert value_of(store, "[10][5]") is None

    def test_slice(self, store):
        assert value_of(store, "[1,2,3,4][1..3]") == [2, 3]
        assert value_of(store, "[1,2,3,4][..2]") == [1, 2]
        assert value_of(store, "[1,2,3,4][2..]") == [3, 4]

    def test_map_literal_access(self, store):
        assert value_of(store, "{a: 1}.a") == 1
        assert value_of(store, "{a: 1}['a']") == 1

    def test_case_generic(self, store):
        assert value_of(store, "CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END") == "b"
        assert value_of(store, "CASE WHEN false THEN 'a' END") is None

    def test_case_simple(self, store):
        assert value_of(store, "CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "two"

    def test_list_comprehension(self, store):
        assert value_of(store, "[x IN [1,2,3,4] WHERE x % 2 = 0 | x * 10]") == [20, 40]
        assert value_of(store, "[x IN [1,2] | x + 1]") == [2, 3]
        assert value_of(store, "[x IN [1,2,3] WHERE x > 1]") == [2, 3]


class TestScalarFunctions:
    def test_string_functions(self, store):
        assert value_of(store, "toUpper('abc')") == "ABC"
        assert value_of(store, "toLower('ABC')") == "abc"
        assert value_of(store, "trim('  x  ')") == "x"
        assert value_of(store, "replace('a-b', '-', '+')") == "a+b"
        assert value_of(store, "split('a,b,c', ',')") == ["a", "b", "c"]
        assert value_of(store, "substring('hello', 1, 3)") == "ell"
        assert value_of(store, "left('hello', 2)") == "he"
        assert value_of(store, "right('hello', 2)") == "lo"
        assert value_of(store, "reverse('abc')") == "cba"

    def test_conversion_functions(self, store):
        assert value_of(store, "toString(42)") == "42"
        assert value_of(store, "toString(2.0)") == "2.0"
        assert value_of(store, "toInteger('42')") == 42
        assert value_of(store, "toInteger('x')") is None
        assert value_of(store, "toFloat('2.5')") == 2.5
        assert value_of(store, "toBoolean('true')") is True

    def test_math_functions(self, store):
        assert value_of(store, "abs(-3)") == 3
        assert value_of(store, "sign(-3)") == -1
        assert value_of(store, "ceil(1.2)") == 2
        assert value_of(store, "floor(1.8)") == 1
        assert value_of(store, "sqrt(16)") == 4.0
        assert value_of(store, "round(2.5)") == 3.0
        assert value_of(store, "round(-2.5)") == -3.0
        assert value_of(store, "round(3.14159, 2)") == 3.14
        assert abs(value_of(store, "exp(1)") - math.e) < 1e-9
        assert abs(value_of(store, "pi()") - math.pi) < 1e-12

    def test_list_functions(self, store):
        assert value_of(store, "size([1,2,3])") == 3
        assert value_of(store, "size('abcd')") == 4
        assert value_of(store, "head([1,2])") == 1
        assert value_of(store, "last([1,2])") == 2
        assert value_of(store, "tail([1,2,3])") == [2, 3]
        assert value_of(store, "head([])") is None
        assert value_of(store, "range(1, 5)") == [1, 2, 3, 4, 5]
        assert value_of(store, "range(0, 10, 5)") == [0, 5, 10]
        assert value_of(store, "range(3, 1, -1)") == [3, 2, 1]

    def test_coalesce(self, store):
        assert value_of(store, "coalesce(null, null, 3)") == 3
        assert value_of(store, "coalesce(null, null)") is None

    def test_null_propagation_in_functions(self, store):
        assert value_of(store, "toUpper(null)") is None
        assert value_of(store, "size(null)") is None

    def test_case_insensitive_function_names(self, store):
        assert value_of(store, "TOUPPER('a')") == "A"

    def test_unknown_function(self, store):
        with pytest.raises(UnknownFunctionError):
            value_of(store, "shazam(1)")

    def test_range_zero_step_rejected(self, store):
        with pytest.raises(CypherRuntimeError):
            value_of(store, "range(1, 3, 0)")


class TestGraphFunctions:
    def test_id_labels_type(self, tiny_store):
        result = execute(
            tiny_store,
            "MATCH (a:AS {asn: 2497})-[r:COUNTRY]->(c) "
            "RETURN id(a) AS ida, labels(a) AS la, type(r) AS tr",
        ).single()
        assert result["ida"] == 0
        assert result["la"] == ["AS"]
        assert result["tr"] == "COUNTRY"

    def test_properties_and_keys(self, tiny_store):
        record = execute(
            tiny_store,
            "MATCH (a:AS {asn: 2497}) RETURN properties(a) AS p, keys(a) AS k",
        ).single()
        assert record["p"] == {"asn": 2497, "name": "IIJ"}
        assert record["k"] == ["asn", "name"]

    def test_start_end_node(self, tiny_store):
        record = execute(
            tiny_store,
            "MATCH (:AS {asn: 2497})-[r:PEERS_WITH]-(:AS) "
            "RETURN startNode(r).asn AS s, endNode(r).asn AS e",
        ).single()
        assert (record["s"], record["e"]) == (2497, 15169)

    def test_degree(self, tiny_store):
        record = execute(
            tiny_store, "MATCH (a:AS {asn: 2497}) RETURN degree(a) AS d"
        ).single()
        assert record["d"] == 4

    def test_haslabel_via_predicate(self, tiny_store):
        result = execute(tiny_store, "MATCH (n) WHERE n:AS RETURN count(*) AS c")
        assert result.single()["c"] == 2


class TestParameters:
    def test_parameter_substitution(self, tiny_store):
        result = execute(
            tiny_store, "MATCH (a:AS {asn: $asn}) RETURN a.name AS name", asn=2497
        )
        assert result.single()["name"] == "IIJ"

    def test_missing_parameter(self, store):
        with pytest.raises(CypherRuntimeError):
            value_of(store, "$nope")

    def test_parameter_in_expression(self, store):
        assert value_of(store, "$x * 2", x=21) == 42
