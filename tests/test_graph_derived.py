"""Tests for subgraph extraction, neighbourhoods and EXPLAIN."""

import pytest

from repro.cypher import CypherEngine, execute
from repro.graph import GraphStore


class TestSubgraph:
    def test_induced_subgraph(self, tiny_store):
        iij = next(tiny_store.nodes_by_property("AS", "asn", 2497))
        jp = next(tiny_store.nodes_by_property("Country", "country_code", "JP"))
        sub = tiny_store.subgraph([iij.node_id, jp.node_id])
        assert sub.node_count == 2
        # COUNTRY + POPULATION edges both survive; PEERS_WITH (to GOOGLE) doesn't.
        assert sub.relationship_count == 2
        assert set(sub.relationship_types()) == {"COUNTRY", "POPULATION"}

    def test_ids_remapped_from_zero(self, tiny_store):
        iij = next(tiny_store.nodes_by_property("AS", "asn", 2497))
        sub = tiny_store.subgraph([iij.node_id])
        assert [n.node_id for n in sub.all_nodes()] == [0]

    def test_properties_copied_not_shared(self, tiny_store):
        iij = next(tiny_store.nodes_by_property("AS", "asn", 2497))
        sub = tiny_store.subgraph([iij.node_id])
        sub.set_node_property(0, "name", "changed")
        assert tiny_store.node(iij.node_id)["name"] == "IIJ"

    def test_subgraph_queryable(self, tiny_store):
        ids = [n.node_id for n in tiny_store.all_nodes()]
        sub = tiny_store.subgraph(ids)
        result = execute(sub, "MATCH (a:AS {asn: 2497})-[p:POPULATION]->(c) RETURN p.percent")
        assert result.single()[0] == 5.3

    def test_empty_subgraph(self, tiny_store):
        sub = tiny_store.subgraph([])
        assert sub.node_count == 0
        assert sub.relationship_count == 0


class TestNeighbourhood:
    def test_zero_hops_is_self(self, tiny_store):
        iij = next(tiny_store.nodes_by_property("AS", "asn", 2497))
        assert tiny_store.neighbourhood(iij.node_id, 0) == {iij.node_id}

    def test_one_hop(self, tiny_store):
        iij = next(tiny_store.nodes_by_property("AS", "asn", 2497))
        hood = tiny_store.neighbourhood(iij.node_id, 1)
        # IIJ connects to JP (twice), GOOGLE and its prefix.
        assert len(hood) == 4

    def test_two_hops_reaches_us(self, tiny_store):
        iij = next(tiny_store.nodes_by_property("AS", "asn", 2497))
        hood = tiny_store.neighbourhood(iij.node_id, 2)
        us = next(tiny_store.nodes_by_property("Country", "country_code", "US"))
        assert us.node_id in hood

    def test_negative_hops_rejected(self, tiny_store):
        with pytest.raises(ValueError):
            tiny_store.neighbourhood(0, -1)

    def test_neighbourhood_plus_subgraph_roundtrip(self, small_dataset):
        store = small_dataset.store
        iij = small_dataset.as_nodes[2497]
        sub = store.subgraph(store.neighbourhood(iij.node_id, 1))
        result = execute(sub, "MATCH (:AS {asn: 2497})-[p:POPULATION]->(c:Country) RETURN c.country_code")
        assert "JP" in result.values()


class TestExplain:
    @pytest.fixture()
    def engine(self, tiny_store):
        return CypherEngine(tiny_store)

    def test_simple_match_plan(self, engine):
        plan = engine.explain("MATCH (a:AS {asn: 2497}) RETURN a.name")
        assert "PropertyLookup(:AS.asn)" in plan
        assert "Return" in plan

    def test_label_scan_plan(self, engine):
        plan = engine.explain("MATCH (a:AS) RETURN a")
        assert "LabelScan(:AS)" in plan

    def test_all_nodes_scan_plan(self, engine):
        plan = engine.explain("MATCH (n) RETURN n")
        assert "AllNodesScan" in plan

    def test_anchor_reversal_visible(self, engine):
        plan = engine.explain(
            "MATCH (a)-[:ORIGINATE]->(p:Prefix {prefix: 'x'}) RETURN a"
        )
        assert "right-to-left" in plan
        assert "PropertyLookup(:Prefix.prefix)" in plan

    def test_where_and_projection_detail(self, engine):
        plan = engine.explain(
            "MATCH (a:AS) WHERE a.asn > 1 "
            "RETURN DISTINCT a.name ORDER BY a.name LIMIT 3"
        )
        assert "Filter (WHERE)" in plan
        assert "distinct" in plan
        assert "sort" in plan
        assert "limit" in plan

    def test_aggregate_flag(self, engine):
        plan = engine.explain("MATCH (a:AS) RETURN count(*)")
        assert "aggregate+group" in plan

    def test_shortest_path_plan(self, engine):
        plan = engine.explain(
            "MATCH (a:AS {asn: 1}), (b:AS {asn: 2}) "
            "MATCH p = shortestPath((a)-[:PEERS_WITH*]-(b)) RETURN p"
        )
        assert "shortestPath BFS" in plan

    def test_union_branches(self, engine):
        plan = engine.explain("RETURN 1 AS x UNION RETURN 2 AS x")
        assert "UNION branch 1" in plan
        assert "UNION branch 2" in plan

    def test_optional_match_label(self, engine):
        plan = engine.explain("MATCH (a:AS) OPTIONAL MATCH (a)-[:X]->(b) RETURN b")
        assert "OptionalMatch" in plan
